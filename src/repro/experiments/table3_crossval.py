"""Table 3 — cross-validation of DPR/BRPR on explicit tunnels.

Rebuilds the synthetic Internet with ``ttl-propagate`` everywhere (all
tunnels explicit), collects the campaign traces, extracts fully
revealed Ingress–Egress LSPs, and re-runs the revelation techniques
against them.  The paper's headline: the techniques recover the tunnel
in ~86–92% of re-discovered pairs, DPR far ahead of BRPR, with a large
single-LSR ambiguous class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.campaign.crossval import cross_validate, extract_explicit_tunnels
from repro.experiments.common import (
    ContextConfig,
    campaign_context,
    format_table,
)

__all__ = ["Table3Result", "run"]

#: Paper values for reference (Table 3).
PAPER_SHARES = {
    "fail": 0.08,
    "dpr-successful": 0.57,
    "brpr-successful": 0.03,
    "hybrid-dpr-brpr": 0.05,
    "dpr-or-brpr": 0.26,
}


@dataclass
class Table3Result:
    """Cross-validation shares over re-discovered LER pairs."""

    tunnels_found: int = 0
    shares: Dict[str, float] = field(default_factory=dict)

    @property
    def success_rate(self) -> float:
        """Share of pairs where the tunnel was fully recovered."""
        return 1.0 - self.shares.get("fail", 0.0)

    @property
    def text(self) -> str:
        """Text rendering in the paper's table/figure layout."""
        rows = []
        for label in (
            "fail",
            "dpr-successful",
            "brpr-successful",
            "hybrid-dpr-brpr",
            "dpr-or-brpr",
        ):
            rows.append(
                (
                    label,
                    f"{self.shares.get(label, 0.0):.0%}",
                    f"{PAPER_SHARES[label]:.0%}",
                )
            )
        return format_table(
            ["Outcome", "Measured", "Paper"],
            rows,
            title=(
                "Table 3: cross-validation on "
                f"{self.tunnels_found} explicit tunnels"
            ),
        )


def run(config: Optional[ContextConfig] = None) -> Table3Result:
    """Run the Table 3 cross-validation campaign."""
    base = config or ContextConfig()
    context = campaign_context(
        ContextConfig(
            scale=base.scale,
            seed=base.seed,
            vantage_points=base.vantage_points,
            stubs_per_transit=base.stubs_per_transit,
            ttl_propagate_everywhere=True,
        )
    )
    tunnels = extract_explicit_tunnels(
        context.result.traces, context.asn_of
    )
    vp_by_name = {vp.name: vp for vp in context.internet.vps}
    outcome = cross_validate(
        context.internet.prober, vp_by_name, tunnels
    )
    result = Table3Result(tunnels_found=len(tunnels))
    result.shares = outcome.table3_shares()
    return result
