"""CSV export of figure data series.

The experiment modules return structured results; this module writes
the plottable series (PDFs, curves) as CSV so any external tool —
gnuplot, matplotlib, a spreadsheet — can redraw the paper's figures
from a reproduction run.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.experiments.common import ContextConfig
from repro.stats.distributions import Distribution

__all__ = [
    "write_series",
    "export_distribution",
    "export_all_figures",
]

PathLike = Union[str, Path]


def write_series(
    path: PathLike,
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> None:
    """Write one CSV file with ``header`` and ``rows``."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_distribution(
    path: PathLike, distribution: Distribution, label: str = "value"
) -> None:
    """Write a distribution's PDF as ``(value, pdf, cdf)`` rows."""
    cdf = dict(distribution.cdf_points())
    rows = [
        (value, probability, cdf[value])
        for value, probability in distribution.pdf_points()
    ]
    write_series(path, [label, "pdf", "cdf"], rows)


def export_all_figures(
    directory: PathLike, config: Optional[ContextConfig] = None
) -> List[Path]:
    """Export every figure's data series under ``directory``.

    Returns the files written.  Figures whose data is empty on this
    run are skipped.
    """
    from repro.experiments import (
        fig01_degree,
        fig05_ftl,
        fig06_rtt,
        fig07_rfa,
        fig08_te_er,
        fig09_rtla,
        fig10_degree,
        fig11_pathlen,
    )

    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    def emit(name: str, header, rows) -> None:
        if not rows:
            return
        path = base / name
        write_series(path, header, rows)
        written.append(path)

    fig1 = fig01_degree.run(config)
    emit("fig01_degree_pdf.csv", ["degree", "pdf"], fig1.pdf)

    fig5 = fig05_ftl.run(config)
    rows = []
    for method, distribution in fig5.by_method.items():
        for value, probability in distribution.pdf_points():
            rows.append((method, int(value), probability))
    emit("fig05_ftl_pdf.csv", ["method", "hops", "pdf"], rows)

    fig6 = fig06_rtt.run(config)
    emit(
        "fig06_rtt_curves.csv",
        ["curve", "hop", "rtt_ms", "revealed"],
        [
            ("invisible", p.hop, p.rtt_ms, 0)
            for p in fig6.invisible
        ]
        + [
            ("visible", p.hop, p.rtt_ms, int(p.revealed))
            for p in fig6.visible
        ],
    )

    fig7 = fig07_rfa.run(config)
    rows = []
    for curve, distribution in (
        ("others", fig7.others),
        ("ingress", fig7.ingress),
        ("egress_pr", fig7.egress_pr),
        ("egress_npr", fig7.egress_npr),
        ("corrected", fig7.corrected),
    ):
        for value, probability in distribution.pdf_points():
            rows.append((curve, value, probability))
    emit("fig07_rfa_pdf.csv", ["curve", "rfa", "pdf"], rows)

    fig8 = fig08_te_er.run(config)
    rows = [
        ("time_exceeded", value, probability)
        for value, probability in fig8.time_exceeded.pdf_points()
    ] + [
        ("echo_reply", value, probability)
        for value, probability in fig8.echo_reply.pdf_points()
    ]
    emit("fig08_rfa_pdf.csv", ["message", "rfa", "pdf"], rows)

    fig9 = fig09_rtla.run(config)
    rows = [
        ("return_tunnel_length", value, probability)
        for value, probability in
        fig9.return_tunnel_lengths.pdf_points()
    ] + [
        ("tunnel_asymmetry", value, probability)
        for value, probability in fig9.tunnel_asymmetry.pdf_points()
    ]
    emit("fig09_rtla_pdf.csv", ["series", "value", "pdf"], rows)

    fig10 = fig10_degree.run(config)
    rows = []
    for curve, distribution in (
        ("all_invisible", fig10.invisible_all),
        ("all_visible", fig10.visible_all),
        ("focus_invisible", fig10.invisible_focus),
        ("focus_visible", fig10.visible_focus),
    ):
        for value, probability in distribution.pdf_points():
            rows.append((curve, int(value), probability))
    emit("fig10_degree_pdf.csv", ["curve", "degree", "pdf"], rows)

    fig11 = fig11_pathlen.run(config)
    rows = [
        ("invisible", int(value), probability)
        for value, probability in fig11.invisible.pdf_points()
    ] + [
        ("visible", int(value), probability)
        for value, probability in fig11.visible.pdf_points()
    ]
    emit("fig11_pathlen_pdf.csv", ["curve", "length", "pdf"], rows)

    return written
