"""Fig. 7 — Return vs Forward Asymmetry (RFA) distributions.

Fig. 7a splits RFA samples by the responding address's campaign role:
"Others" (no LER role), "Ingress", and "Egress PR" (egress LERs whose
forward tunnel was revealed).  Fig. 7b adds "Egress NPR" (no path
revelation) and the *corrected* egress distribution, where the
revealed hop count is added back to the forward length.

Shape targets: Others/Ingress centred at ~0; Egress PR shifted to
positive values; the corrected Egress curve re-centred at ~0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.frpla import rfa_of_hop
from repro.experiments.common import (
    ContextConfig,
    campaign_context,
    format_table,
)
from repro.stats.distributions import Distribution

__all__ = ["Fig7Result", "run"]


@dataclass
class Fig7Result:
    """RFA distributions per role, plus the corrected egress curve."""

    others: Distribution = field(default_factory=Distribution)
    ingress: Distribution = field(default_factory=Distribution)
    egress_pr: Distribution = field(default_factory=Distribution)
    egress_npr: Distribution = field(default_factory=Distribution)
    corrected: Distribution = field(default_factory=Distribution)

    def medians(self) -> Dict[str, Optional[float]]:
        """Median RFA per curve (None when empty)."""
        return {
            name: (dist.median if len(dist) else None)
            for name, dist in (
                ("others", self.others),
                ("ingress", self.ingress),
                ("egress_pr", self.egress_pr),
                ("egress_npr", self.egress_npr),
                ("corrected", self.corrected),
            )
        }

    @property
    def text(self) -> str:
        """Text rendering in the paper's table/figure layout."""
        rows = []
        for name, dist in (
            ("Others", self.others),
            ("Ingress", self.ingress),
            ("Egress PR", self.egress_pr),
            ("Egress NPR", self.egress_npr),
            ("Correction", self.corrected),
        ):
            if len(dist):
                rows.append(
                    (
                        name,
                        len(dist),
                        f"{dist.median:g}",
                        f"{dist.mean:.2f}",
                        f"{dist.fraction(lambda v: v > 0):.0%}",
                    )
                )
            else:
                rows.append((name, 0, "-", "-", "-"))
        return format_table(
            ["Curve", "Samples", "Median", "Mean", ">0"],
            rows,
            title="Fig. 7: Return vs Forward Asymmetry by role",
        )


def run(config: Optional[ContextConfig] = None) -> Fig7Result:
    """Compute the Fig. 7 distributions over the campaign traces."""
    context = campaign_context(config)
    aggregator = context.aggregator
    revealed_by_egress: Dict[int, int] = {}
    for (_, egress), revelation in context.result.revelations.items():
        if revelation.success:
            revealed_by_egress[egress] = revelation.tunnel_length
    result = Fig7Result()
    for trace in context.result.traces:
        for hop in trace.hops:
            sample = rfa_of_hop(hop)
            if sample is None:
                continue
            role = aggregator.role_of(sample.address)
            if role == "other":
                result.others.add(sample.rfa)
            elif role == "ingress":
                result.ingress.add(sample.rfa)
            else:
                hidden = revealed_by_egress.get(sample.address)
                if hidden is None:
                    result.egress_npr.add(sample.rfa)
                else:
                    result.egress_pr.add(sample.rfa)
                    # Fig. 7b: add revealed hops to the forward length.
                    result.corrected.add(sample.rfa - hidden)
    return result
