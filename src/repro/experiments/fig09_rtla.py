"""Fig. 9 — RTLA: return tunnel lengths and tunnel asymmetry.

Fig. 9a: distribution of return-tunnel lengths inferred by RTLA over
``<255, 64>`` LERs.  Fig. 9b: RTLA's return length minus the revealed
forward tunnel length, for egresses covered by both — the accuracy
check.  Shape targets: 9a resembles the forward tunnel distribution
(short, decreasing); 9b is centred at 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.common import (
    ContextConfig,
    campaign_context,
    format_table,
)
from repro.stats.distributions import Distribution

__all__ = ["Fig9Result", "run"]


@dataclass
class Fig9Result:
    """RTLA distributions."""

    return_tunnel_lengths: Distribution = field(
        default_factory=Distribution
    )
    tunnel_asymmetry: Distribution = field(default_factory=Distribution)

    @property
    def text(self) -> str:
        """Text rendering in the paper's table/figure layout."""
        rows = []
        for name, dist in (
            ("Return tunnel length (9a)", self.return_tunnel_lengths),
            ("RTLA - FTL asymmetry (9b)", self.tunnel_asymmetry),
        ):
            if len(dist):
                rows.append(
                    (
                        name,
                        len(dist),
                        f"{dist.median:g}",
                        f"{dist.mean:.2f}",
                        f"{dist.min:g}",
                        f"{dist.max:g}",
                    )
                )
            else:
                rows.append((name, 0, "-", "-", "-", "-"))
        return format_table(
            ["Distribution", "Samples", "Median", "Mean", "Min", "Max"],
            rows,
            title="Fig. 9: RTLA with Juniper egress LERs",
        )


def run(config: Optional[ContextConfig] = None) -> Fig9Result:
    """Compute the Fig. 9 distributions."""
    context = campaign_context(config)
    result = Fig9Result()
    egresses = context.aggregator.egress_addresses()
    for estimate in context.result.rtla.estimates():
        if estimate.address in egresses:
            result.return_tunnel_lengths.add(estimate.tunnel_length)
    result.tunnel_asymmetry = context.aggregator.tunnel_asymmetry()
    return result
