"""Table 5 — MPLS deployment characteristics per AS.

Per suspicious AS: TTL-signature shares of its observed addresses,
shares of the hidden-hop discovery techniques over its revealed
tunnels, and the three tunnel-length estimators side by side (FRPLA
median shift, RTLA median, revealed forward tunnel length).  Shape
targets: Cisco-heavy ASes lean BRPR, Juniper-heavy ones lean DPR, and
FRPLA/RTLA medians track the revealed length within a hop or two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.campaign.postprocess import AsDeploymentRow
from repro.experiments.common import (
    ContextConfig,
    campaign_context,
    format_table,
)

__all__ = ["Table5Result", "run"]

_SIGNATURES = ("<255,255>", "<255,64>", "<64,64>")
_TECHNIQUES = ("dpr", "brpr", "dpr-or-brpr", "hybrid")


@dataclass
class Table5Result:
    """Table 5 rows keyed by ASN."""

    rows: Dict[int, AsDeploymentRow] = field(default_factory=dict)

    @property
    def text(self) -> str:
        """Text rendering in the paper's table/figure layout."""
        table_rows = []
        ordered = sorted(
            self.rows.items(),
            key=lambda item: -item[1].signature_shares.get("<255,255>", 0.0),
        )
        for asn, row in ordered:
            cells = [asn]
            for signature in _SIGNATURES:
                cells.append(
                    f"{row.signature_shares.get(signature, 0.0):.0%}"
                )
            for technique in _TECHNIQUES:
                cells.append(
                    f"{row.technique_shares.get(technique, 0.0):.0%}"
                )
            for value in (
                row.frpla_median, row.rtla_median, row.ftl_median
            ):
                cells.append("-" if value is None else f"{value:g}")
            table_rows.append(tuple(cells))
        return format_table(
            [
                "ASN", "<255,255>", "<255,64>", "<64,64>",
                "DPR", "BRPR", "DPRorBRPR", "Hybrid",
                "FRPLA", "RTLA", "FTL",
            ],
            table_rows,
            title="Table 5: MPLS deployment per AS",
        )


def run(config: Optional[ContextConfig] = None) -> Table5Result:
    """Compute Table 5 over the standard campaign."""
    context = campaign_context(config)
    result = Table5Result()
    for asn in context.internet.transit_asns:
        result.rows[asn] = context.aggregator.deployment_row(
            asn, frpla=context.frpla
        )
    return result
