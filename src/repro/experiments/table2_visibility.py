"""Table 2 — visibility effects of basic MPLS configurations.

Sweeps the full grid (LDP policy × target kind × TTL policy × Egress
signature) on the Fig. 2 testbed and classifies what traceroute
observes, then checks every cell against the paper's prediction
(:func:`repro.core.classify.expected_visibility`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.classify import (
    LspVisibility,
    VisibilityExpectation,
    expected_visibility,
)
from repro.core.frpla import rfa_of_hop
from repro.core.rtla import RtlaAnalyzer
from repro.experiments.common import format_table
from repro.mpls.config import MplsConfig
from repro.net.vendors import CISCO, JUNIPER, LdpPolicy, VendorProfile
from repro.synth.gns3 import Gns3Testbed, build_gns3

__all__ = ["Table2Cell", "Table2Result", "run"]


@dataclass(frozen=True)
class Table2Cell:
    """One grid point: configuration, observation, prediction."""

    ldp_policy: LdpPolicy
    target_internal: bool
    ttl_propagate: bool
    signature: Tuple[int, int]
    observed_visibility: LspVisibility
    observed_shift: bool
    observed_gap: bool
    expected: VisibilityExpectation

    @property
    def matches(self) -> bool:
        """Observation equals the paper's prediction."""
        return (
            self.observed_visibility is self.expected.visibility
            and self.observed_shift == self.expected.frpla_shift
            and self.observed_gap == self.expected.rtla_gap
        )


@dataclass
class Table2Result:
    """The full grid."""

    cells: List[Table2Cell] = field(default_factory=list)

    @property
    def all_match(self) -> bool:
        """Every observation matches its predicted cell."""
        return all(cell.matches for cell in self.cells)

    @property
    def text(self) -> str:
        """Text rendering in the paper's table/figure layout."""
        rows = []
        for cell in self.cells:
            rows.append(
                (
                    cell.ldp_policy.value,
                    "internal" if cell.target_internal else "external",
                    "propagate" if cell.ttl_propagate else "no-propagate",
                    f"<{cell.signature[0]},{cell.signature[1]}>",
                    cell.observed_visibility.value,
                    "shift" if cell.observed_shift else "-",
                    "gap" if cell.observed_gap else "-",
                    "ok" if cell.matches else "MISMATCH",
                )
            )
        return format_table(
            [
                "LDP policy", "target", "TTL policy", "LER sig",
                "observed", "FRPLA", "RTLA", "check",
            ],
            rows,
            title="Table 2: visibility effects (emulated grid sweep)",
        )


def _observe_visibility(
    testbed: Gns3Testbed, target_internal: bool
) -> LspVisibility:
    """Classify what traceroute shows for the chosen target."""
    target = "PE2.left" if target_internal else "CE2.left"
    trace = testbed.traceroute(target)
    addresses = trace.addresses
    pe1 = testbed.address("PE1.left")
    if pe1 not in addresses:
        return LspVisibility.INVISIBLE
    start = addresses.index(pe1)
    endpoint = testbed.address(
        "PE2.left" if target_internal else "CE2.left"
    )
    if endpoint not in addresses:
        return LspVisibility.INVISIBLE
    end = addresses.index(endpoint)
    between = trace.responsive_hops[start + 1 : end]
    # Drop the egress itself from the "between" hops (it is the
    # target when probing internally).
    core = [
        hop
        for hop in between
        if hop.address != testbed.address("PE2.left")
    ]
    if not core:
        return LspVisibility.INVISIBLE
    labelled = [hop for hop in core if hop.has_labels]
    unlabelled = [hop for hop in core if not hop.has_labels]
    if target_internal:
        # All three LSRs visible without labels = a plain IGP route;
        # only the penultimate one = the PHP last-hop phenomenon.
        if len(unlabelled) >= 3:
            return LspVisibility.ROUTE_NO_LABEL
        return LspVisibility.LAST_HOP_NO_LABEL
    if labelled:
        return LspVisibility.EXPLICIT
    return LspVisibility.ROUTE_NO_LABEL


def _observe_shift_and_gap(testbed: Gns3Testbed) -> Tuple[bool, bool]:
    """Measure the FRPLA shift and RTLA gap at the forward egress."""
    trace = testbed.traceroute("CE2.left")
    egress_hop = trace.hop_of(testbed.address("PE2.left"))
    shift = False
    if egress_hop is not None:
        sample = rfa_of_hop(egress_hop)
        shift = sample is not None and sample.rfa > 0
    analyzer = RtlaAnalyzer()
    analyzer.add_trace(trace)
    analyzer.add_ping(
        testbed.prober.ping(
            testbed.vantage_point, testbed.address("PE2.left")
        )
    )
    estimate = analyzer.estimate(testbed.address("PE2.left"))
    gap = estimate is not None and estimate.tunnel_length > 0
    return shift, gap


def run() -> Table2Result:
    """Sweep the Table 2 grid on the emulated testbed."""
    result = Table2Result()
    vendors: List[VendorProfile] = [CISCO, JUNIPER]
    for ldp_policy in (LdpPolicy.ALL_PREFIXES, LdpPolicy.LOOPBACK_ONLY):
        for ttl_propagate in (True, False):
            for vendor in vendors:
                config = MplsConfig.from_vendor(
                    vendor, ttl_propagate=ttl_propagate
                ).with_overrides(ldp_policy=ldp_policy)
                testbed = build_gns3(vendor=vendor, config=config)
                shift, gap = _observe_shift_and_gap(testbed)
                for target_internal in (False, True):
                    observed = _observe_visibility(
                        testbed, target_internal
                    )
                    expected = expected_visibility(
                        ldp_policy,
                        target_internal,
                        ttl_propagate,
                        vendor.signature,
                    )
                    result.cells.append(
                        Table2Cell(
                            ldp_policy=ldp_policy,
                            target_internal=target_internal,
                            ttl_propagate=ttl_propagate,
                            signature=vendor.signature,
                            observed_visibility=observed,
                            observed_shift=shift,
                            observed_gap=gap,
                            expected=expected,
                        )
                    )
    return result
