"""TNT cross-validation — per-class recall/precision vs ground truth.

The TNT follow-up ("TNT, Watch Me Explode") gates DPR/BRPR-style
revelation behind FRPLA/RTLA-style triggers.  This experiment
validates the registry's ``tnt`` technique exactly as Table 3
validates the classic stack: render an internet where *both* tunnel
classes are explicit (LDP via ``ttl-propagate`` everywhere, RSVP-TE
via TE tunnels with TTL propagation), extract the fully revealed
LSPs, classify each against the installed-tunnel ground truth, and
re-run the TNT revelation against every one.

The headline asymmetry is structural, not statistical: revelation
traces target *internal* addresses, which ride the IGP/LDP — never an
RSVP-TE explicit path (Sec. 3.4) — so RSVP-TE recall collapses
wherever the pinned path detours off the IGP shortest path, while LDP
recall matches Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.campaign.crossval import extract_explicit_tunnels
from repro.core.revelation import RevelationMethod
from repro.core.technique import default_techniques
from repro.experiments.common import (
    ContextConfig,
    campaign_context,
    format_table,
)

__all__ = ["ClassValidation", "TntCrossvalResult", "run"]

#: Rendering order of the tunnel classes.
CLASS_ORDER = ("ldp", "rsvp-te")

#: TE tunnels per transit AS when the caller did not ask for any —
#: the experiment needs a mixed internet to say anything per-class.
DEFAULT_TE_TUNNELS = 2


@dataclass
class ClassValidation:
    """Cross-validation tallies for one tunnel class."""

    tunnels: int = 0  #: ground-truth tunnels of this class
    claimed: int = 0  #: TNT claimed a complete revelation
    correct: int = 0  #: claim matches the ground-truth LSR count

    @property
    def recall(self) -> float:
        """Ground-truth tunnels fully recovered (0.0 when none exist)."""
        return self.correct / self.tunnels if self.tunnels else 0.0

    @property
    def precision(self) -> float:
        """Correct claims over all claims (1.0 when nothing claimed)."""
        return self.correct / self.claimed if self.claimed else 1.0


@dataclass
class TntCrossvalResult:
    """Per-class TNT cross-validation against installed ground truth."""

    tunnels_found: int = 0
    per_class: Dict[str, ClassValidation] = field(default_factory=dict)

    @property
    def document(self) -> Dict[str, object]:
        """JSON-ready rendering (the CI crossval artifact)."""
        return {
            "experiment": "tnt-crossval",
            "tunnels_found": self.tunnels_found,
            "classes": {
                label: {
                    "tunnels": stats.tunnels,
                    "claimed": stats.claimed,
                    "correct": stats.correct,
                    "recall": round(stats.recall, 4),
                    "precision": round(stats.precision, 4),
                }
                for label, stats in self.per_class.items()
            },
        }

    @property
    def text(self) -> str:
        """Text rendering in the Table 3 layout, one row per class."""
        rows = []
        for label in CLASS_ORDER:
            stats = self.per_class.get(label, ClassValidation())
            rows.append(
                (
                    label,
                    stats.tunnels,
                    stats.claimed,
                    stats.correct,
                    f"{stats.recall:.0%}",
                    f"{stats.precision:.0%}",
                )
            )
        return format_table(
            ["Class", "Tunnels", "Claimed", "Correct",
             "Recall", "Precision"],
            rows,
            title=(
                "TNT cross-validation on "
                f"{self.tunnels_found} explicit tunnels"
            ),
        )


def run(config: Optional[ContextConfig] = None) -> TntCrossvalResult:
    """Cross-validate the TNT technique on a mixed LDP+TE internet."""
    base = config or ContextConfig()
    context = campaign_context(
        ContextConfig(
            scale=base.scale,
            seed=base.seed,
            vantage_points=base.vantage_points,
            stubs_per_transit=base.stubs_per_transit,
            ttl_propagate_everywhere=True,
            te_tunnels_per_transit=(
                base.te_tunnels_per_transit or DEFAULT_TE_TUNNELS
            ),
            te_ttl_propagate=True,
        )
    )
    internet = context.internet
    # UHP-null extraction: TE tails quote explicit null, so their runs
    # end inside the label stack instead of at a same-AS bare hop.
    tunnels = extract_explicit_tunnels(
        context.result.traces, context.asn_of, include_uhp_null=True
    )
    te_endpoints = {
        (tunnel.head, tunnel.tail) for tunnel in internet.te_tunnels
    }

    def router_name(address: int) -> Optional[str]:
        router = internet.router_of_address(address)
        return None if router is None else router.name

    tnt = default_techniques().get("tnt")
    vp_by_name = {vp.name: vp for vp in internet.vps}
    result = TntCrossvalResult(tunnels_found=len(tunnels))
    for label in CLASS_ORDER:
        result.per_class[label] = ClassValidation()
    for tunnel in tunnels:
        endpoints = (
            router_name(tunnel.ingress), router_name(tunnel.egress)
        )
        label = "rsvp-te" if endpoints in te_endpoints else "ldp"
        revelation = tnt.reveal(
            internet.prober,
            vp_by_name[tunnel.vp],
            ingress=tunnel.ingress,
            egress=tunnel.egress,
            max_steps=12,
            start_ttl=1,
        )
        claimed = (
            revelation.method is not RevelationMethod.NONE
            and revelation.complete
            and revelation.success
        )
        correct = claimed and (
            len(revelation.revealed) == len(tunnel.lsrs)
        )
        stats = result.per_class[label]
        stats.tunnels += 1
        stats.claimed += int(claimed)
        stats.correct += int(correct)
    return result
