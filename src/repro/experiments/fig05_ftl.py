"""Fig. 5 — forward tunnel length distribution (DPR vs BRPR).

Histogram of revealed-tunnel lengths, split by revelation technique.
Shape targets: a strongly decreasing function with a short tail, a
prominent single-LSR class (where DPR and BRPR are indistinguishable),
and BRPR skewing shorter than DPR (each extra hop costs the recursion
another trace that can fail).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.revelation import RevelationMethod
from repro.experiments.common import (
    ContextConfig,
    campaign_context,
    format_table,
)
from repro.stats.distributions import Distribution

__all__ = ["Fig5Result", "run"]


@dataclass
class Fig5Result:
    """Per-method tunnel-length histograms.

    Lengths are *hop distances to the egress* like the figure's X axis
    (a tunnel hiding one LSR has length 2).
    """

    by_method: Dict[str, Distribution] = field(default_factory=dict)

    def counts(self, method: str) -> Dict[int, int]:
        """length -> occurrence count for one method label."""
        distribution = self.by_method.get(method)
        if distribution is None:
            return {}
        return {
            int(value): count
            for value, count in distribution.counts().items()
        }

    @property
    def total_revealed(self) -> int:
        """Number of revealed tunnels across all methods."""
        return sum(len(d) for d in self.by_method.values())

    @property
    def text(self) -> str:
        """Text rendering in the paper's table/figure layout."""
        lengths = sorted(
            {
                int(value)
                for distribution in self.by_method.values()
                for value in distribution
            }
        )
        rows = []
        for length in lengths:
            rows.append(
                (
                    length,
                    self.counts("dpr").get(length, 0),
                    self.counts("brpr").get(length, 0),
                    self.counts("dpr-or-brpr").get(length, 0),
                )
            )
        return format_table(
            ["Nb. hops", "DPR", "BRPR", "DPR or BRPR"],
            rows,
            title=(
                "Fig. 5: forward tunnel length "
                f"({self.total_revealed} revealed tunnels)"
            ),
        )


def run(config: Optional[ContextConfig] = None) -> Fig5Result:
    """Compute Fig. 5 over the standard campaign."""
    context = campaign_context(config)
    result = Fig5Result()
    for label, methods in (
        ("dpr", {RevelationMethod.DPR, RevelationMethod.HYBRID}),
        ("brpr", {RevelationMethod.BRPR}),
        ("dpr-or-brpr", {RevelationMethod.DPR_OR_BRPR}),
    ):
        lengths = context.aggregator.ftl_distribution(methods)
        # X axis of the figure counts hops to the exit point: the
        # revealed LSR count plus the final hop to the egress.
        result.by_method[label] = Distribution(
            value + 1 for value in lengths
        )
    return result
