"""Fig. 8 — RFA via time-exceeded vs echo-reply (Juniper LERs).

For egress LERs with the ``<255, 64>`` signature, the RFA computed
from ``time-exceeded`` replies (initial 255 — return tunnels counted
by the min rule) is compared with the RFA computed from ``echo-reply``
(initial 64 — return tunnels invisible).  Shape targets: the
time-exceeded curve shifts positive; the echo-reply curve stays near
zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.frpla import rfa_of_hop
from repro.core.signatures import return_path_length
from repro.experiments.common import (
    ContextConfig,
    campaign_context,
    format_table,
)
from repro.stats.distributions import Distribution

__all__ = ["Fig8Result", "run"]


@dataclass
class Fig8Result:
    """The two RFA distributions."""

    time_exceeded: Distribution = field(default_factory=Distribution)
    echo_reply: Distribution = field(default_factory=Distribution)

    @property
    def text(self) -> str:
        """Text rendering in the paper's table/figure layout."""
        rows = []
        for name, dist in (
            ("Time Exceeded", self.time_exceeded),
            ("Echo-Reply", self.echo_reply),
        ):
            if len(dist):
                rows.append(
                    (name, len(dist), f"{dist.median:g}", f"{dist.mean:.2f}")
                )
            else:
                rows.append((name, 0, "-", "-"))
        return format_table(
            ["Message", "Samples", "Median RFA", "Mean RFA"],
            rows,
            title="Fig. 8: RFA from time-exceeded vs echo-reply",
        )


def run(config: Optional[ContextConfig] = None) -> Fig8Result:
    """Compute the Fig. 8 distributions over Juniper-edge targets."""
    context = campaign_context(config)
    inventory = context.result.inventory
    pings = context.result.pings
    result = Fig8Result()
    for trace in context.result.traces:
        for hop in trace.hops:
            sample = rfa_of_hop(hop)
            if sample is None:
                continue
            if not inventory.signature(sample.address).rtla_capable:
                continue
            if context.aggregator.role_of(sample.address) != "egress":
                continue
            result.time_exceeded.add(sample.rfa)
            ping = pings.get(sample.address)
            if ping is None or not ping.responded:
                continue
            er_return = return_path_length(ping.reply_ttl)
            if er_return is None:
                continue
            result.echo_reply.add(er_return - sample.forward_length)
    return result
