"""Fig. 10 — effect of invisible tunnels on the degree distribution.

Compares the router-level degree distribution built from raw traces
("Invisible") with the one after revealed LSR chains replace the false
Ingress–Egress edges ("Visible"), for all ASes together (Fig. 10a) and
for the densest single AS (Fig. 10b — Deutsche Telekom in the paper).

Shape targets: the invisible curve carries extra mass at high degrees
(full-mesh peaks); revelation removes the peaks and restores a
standard decreasing shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.correction import degree_distributions
from repro.analysis.itdk import TraceGraph
from repro.experiments.common import (
    ContextConfig,
    campaign_context,
    format_table,
)
from repro.stats.distributions import Distribution

__all__ = ["Fig10Result", "run"]


@dataclass
class Fig10Result:
    """Degree distributions before/after correction."""

    invisible_all: Distribution = field(default_factory=Distribution)
    visible_all: Distribution = field(default_factory=Distribution)
    focus_asn: Optional[int] = None
    invisible_focus: Distribution = field(default_factory=Distribution)
    visible_focus: Distribution = field(default_factory=Distribution)

    @property
    def text(self) -> str:
        """Text rendering in the paper's table/figure layout."""
        rows = []
        for name, dist in (
            ("All ASes, invisible", self.invisible_all),
            ("All ASes, visible", self.visible_all),
            (f"AS{self.focus_asn}, invisible", self.invisible_focus),
            (f"AS{self.focus_asn}, visible", self.visible_focus),
        ):
            if len(dist):
                rows.append(
                    (
                        name,
                        len(dist),
                        f"{dist.mean:.2f}",
                        f"{dist.percentile(90):g}",
                        f"{dist.max:g}",
                    )
                )
            else:
                rows.append((name, 0, "-", "-", "-"))
        return format_table(
            ["Curve", "Nodes", "Mean deg", "P90", "Max"],
            rows,
            title="Fig. 10: degree distribution, invisible vs visible",
        )


def run(
    config: Optional[ContextConfig] = None,
    focus_asn: Optional[int] = None,
) -> Fig10Result:
    """Compute the Fig. 10 distributions.

    ``focus_asn`` defaults to the transit AS with the most revealed
    tunnels (the paper uses AS3320).
    """
    context = campaign_context(config)
    graph = TraceGraph(context.alias_of, context.asn_of)
    graph.add_traces(context.result.traces)
    revelations = list(context.result.revelations.values())
    result = Fig10Result()
    result.invisible_all, result.visible_all = degree_distributions(
        graph, revelations
    )
    if focus_asn is None:
        revealed_per_as: Dict[int, int] = {}
        for pair in context.result.pairs:
            revelation = context.result.revelations.get(
                (pair.ingress, pair.egress)
            )
            if revelation is not None and revelation.success:
                revealed_per_as[pair.asn] = (
                    revealed_per_as.get(pair.asn, 0) + 1
                )
        focus_asn = (
            max(revealed_per_as, key=revealed_per_as.get)
            if revealed_per_as
            else None
        )
    result.focus_asn = focus_asn
    if focus_asn is not None:
        (
            result.invisible_focus,
            result.visible_focus,
        ) = degree_distributions(graph, revelations, asn=focus_asn)
    return result
