"""Fig. 11 — effect of invisible tunnels on the path-length distribution.

Compares the distribution of trace lengths as observed ("Invisible")
with the corrected one, where every revealed tunnel's hidden hops are
re-counted ("Visible").  Shape targets: both are bell-shaped, with the
visible curve shifted toward longer routes (the paper reports a mean
going from ~10 to ~12; the shift remains an underestimate because only
the last tunnel of a trace is revealed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.correction import path_length_distributions
from repro.experiments.common import (
    ContextConfig,
    campaign_context,
    format_table,
)
from repro.stats.distributions import Distribution

__all__ = ["Fig11Result", "run"]


@dataclass
class Fig11Result:
    """Path-length distributions before/after correction."""

    invisible: Distribution = field(default_factory=Distribution)
    visible: Distribution = field(default_factory=Distribution)

    @property
    def mean_shift(self) -> float:
        """Mean path-length increase after revelation."""
        if not len(self.invisible) or not len(self.visible):
            return 0.0
        return self.visible.mean - self.invisible.mean

    @property
    def text(self) -> str:
        """Text rendering in the paper's table/figure layout."""
        rows = []
        for name, dist in (
            ("Invisible", self.invisible),
            ("Visible", self.visible),
        ):
            if len(dist):
                rows.append(
                    (
                        name,
                        len(dist),
                        f"{dist.mean:.2f}",
                        f"{dist.median:g}",
                        f"{dist.max:g}",
                    )
                )
            else:
                rows.append((name, 0, "-", "-", "-"))
        rows.append(("Mean shift", "", f"+{self.mean_shift:.2f}", "", ""))
        return format_table(
            ["Curve", "Traces", "Mean", "Median", "Max"],
            rows,
            title="Fig. 11: path length distribution, invisible vs visible",
        )


def run(config: Optional[ContextConfig] = None) -> Fig11Result:
    """Compute the Fig. 11 distributions."""
    context = campaign_context(config)
    invisible, visible = path_length_distributions(
        context.result.traces, context.result.revelations
    )
    return Fig11Result(invisible=invisible, visible=visible)
