"""Fig. 1 — node degree distribution of the ITDK-like dataset.

Builds the router-level graph from the raw campaign traces (invisible
tunnels left in) and reports the degree PDF.  Shape target: a heavy
right tail — a visible population of nodes whose degree far exceeds a
typical router's interface count, caused by ingress LERs that appear
adjacent to every egress.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis.itdk import TraceGraph
from repro.experiments.common import (
    ContextConfig,
    campaign_context,
    format_table,
)

__all__ = ["Fig1Result", "run"]


@dataclass
class Fig1Result:
    """Degree PDF of the uncorrected trace graph."""

    node_count: int = 0
    edge_count: int = 0
    pdf: List[Tuple[float, float]] = field(default_factory=list)
    max_degree: int = 0
    hdn_threshold: int = 0
    hdn_count: int = 0
    #: Pseudo-nodes for unresponsive hops dropped during the paper's
    #: dataset cleanup step.
    pruned_pseudo_nodes: int = 0

    @property
    def text(self) -> str:
        """Text rendering in the paper's table/figure layout."""
        rows = [(int(deg), f"{p:.4f}") for deg, p in self.pdf]
        header = format_table(
            ["Degree", "PDF"],
            rows,
            title=(
                f"Fig. 1: degree distribution — {self.node_count} nodes, "
                f"{self.edge_count} edges, {self.hdn_count} HDNs "
                f"(threshold {self.hdn_threshold})"
            ),
        )
        return header


def run(
    config: Optional[ContextConfig] = None, hdn_threshold: int = 8
) -> Fig1Result:
    """Compute the Fig. 1 distribution from campaign traces."""
    context = campaign_context(config)
    # Build with ITDK-style pseudo-nodes for stars, then apply the
    # paper's cleanup: "removing ... pseudo-addresses allocated to
    # non-responsive routers".
    graph = TraceGraph(
        context.alias_of, context.asn_of, star_nodes=True
    )
    graph.add_traces(context.result.traces)
    pruned = graph.prune_pseudo_nodes()
    distribution = graph.degree_distribution()
    result = Fig1Result(
        node_count=len(graph),
        edge_count=graph.edge_count(),
        pdf=distribution.pdf_points(),
        max_degree=int(distribution.max) if len(distribution) else 0,
        hdn_threshold=hdn_threshold,
        hdn_count=len(graph.high_degree_nodes(hdn_threshold)),
        pruned_pseudo_nodes=pruned,
    )
    return result
