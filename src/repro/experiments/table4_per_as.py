"""Table 4 — per-AS invisible-tunnel discovery statistics.

For every suspicious transit AS: candidate LERs and Ingress–Egress
pairs, the share of pairs whose content was revealed, the raw LSP and
LSR counts, and the Ingress–Egress graph density before/after the
correction.  Shape targets from the paper: densities drop (by up to an
order of magnitude), and UHP-style operators (AS2856-like) show
near-zero revelation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.campaign.postprocess import AsRevelationSummary
from repro.experiments.common import (
    ContextConfig,
    campaign_context,
    format_table,
)

__all__ = ["Table4Result", "run"]


@dataclass
class Table4Result:
    """Table 4 rows keyed by ASN."""

    rows: Dict[int, AsRevelationSummary] = field(default_factory=dict)
    names: Dict[int, str] = field(default_factory=dict)

    @property
    def text(self) -> str:
        """Text rendering in the paper's table/figure layout."""
        table_rows = []
        for asn, summary in sorted(
            self.rows.items(),
            key=lambda item: -item[1].ie_pairs,
        ):
            table_rows.append(
                (
                    f"{self.names.get(asn, '?')} ({asn})",
                    summary.candidate_lers,
                    summary.ie_pairs,
                    f"{summary.pct_revealed:.0%}",
                    summary.raw_lsps,
                    summary.lsr_ips,
                    f"{summary.pct_ips_also_lers:.0%}",
                    f"{summary.density_before:.3f}",
                    f"{summary.density_after:.3f}",
                )
            )
        return format_table(
            [
                "ISP (ASN)", "LERs", "I-E pairs", "%Rev.",
                "Raw LSPs", "#IPs LSRs", "%IPs LERs",
                "Dens.before", "Dens.after",
            ],
            table_rows,
            title="Table 4: invisible MPLS tunnel discovery per AS",
        )


def run(config: Optional[ContextConfig] = None) -> Table4Result:
    """Compute Table 4 over the standard campaign."""
    context = campaign_context(config)
    result = Table4Result()
    for asn in context.internet.transit_asns:
        result.rows[asn] = context.aggregator.revelation_summary(asn)
        result.names[asn] = context.internet.profiles[asn].name
    return result
