"""Fig. 2 / Fig. 4 — the GNS3 emulation outputs, rendered.

Reproduces the four traceroute transcripts of Fig. 4 on the Fig. 2
testbed, returning the rendered text for each scenario.  The golden
unit tests assert hop/TTL equality; this experiment produces the
human-readable transcripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.synth.gns3 import SCENARIOS, build_gns3

__all__ = ["Fig4Result", "run"]

#: Targets traced per scenario, mirroring the figure's sub-panels.
_TARGETS: Dict[str, List[str]] = {
    "default": ["CE2.left"],
    "backward-recursive": [
        "CE2.left", "PE2.left", "P3.left", "P2.left", "P1.left",
    ],
    "explicit-route": ["CE2.left", "PE2.left"],
    "totally-invisible": ["CE2.left", "PE2.left"],
}


@dataclass
class Fig4Result:
    """Rendered transcripts per scenario."""

    transcripts: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def text(self) -> str:
        """Text rendering in the paper's table/figure layout."""
        blocks = []
        for scenario in SCENARIOS:
            blocks.append(f"--- {scenario} ---")
            blocks.extend(self.transcripts.get(scenario, []))
        return "\n\n".join(blocks)


def run() -> Fig4Result:
    """Emulate all four scenarios and render their traces."""
    result = Fig4Result()
    for scenario in SCENARIOS:
        testbed = build_gns3(scenario)
        transcripts = []
        for target in _TARGETS[scenario]:
            trace = testbed.traceroute(target)
            transcripts.append(testbed.render(trace))
        result.transcripts[scenario] = transcripts
    return result
