"""Experiment modules: one per table/figure of the paper."""
