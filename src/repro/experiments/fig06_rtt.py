"""Fig. 6 — RTT correction with hop revelation.

Picks the revealed tunnel with the largest hidden hop count, plots the
per-hop RTT of the original trace (the "Invisible" curve, showing one
big jump between the LERs) and the enriched curve after revelation
(the "Visible" curve, where the jump decomposes over the tunnel's real
hops).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis.delays import (
    RttPoint,
    corrected_rtt_profile,
    rtt_jump,
    rtt_profile,
)
from repro.experiments.common import (
    ContextConfig,
    campaign_context,
    format_table,
)

__all__ = ["Fig6Result", "run"]


@dataclass
class Fig6Result:
    """The two RTT-vs-hop curves."""

    asn: Optional[int] = None
    tunnel_length: int = 0
    invisible: List[RttPoint] = field(default_factory=list)
    visible: List[RttPoint] = field(default_factory=list)

    @property
    def invisible_jump_ms(self) -> float:
        """Largest single-hop RTT step before revelation."""
        return rtt_jump(self.invisible)[1]

    @property
    def visible_jump_ms(self) -> float:
        """Largest single-hop RTT step after revelation."""
        return rtt_jump(self.visible)[1]

    @property
    def text(self) -> str:
        """Text rendering in the paper's table/figure layout."""
        rows: List[Tuple[object, object, object]] = []
        for index in range(max(len(self.invisible), len(self.visible))):
            inv = (
                f"{self.invisible[index].rtt_ms:.1f}"
                if index < len(self.invisible)
                else ""
            )
            vis = (
                f"{self.visible[index].rtt_ms:.1f}"
                + ("*" if self.visible[index].revealed else "")
                if index < len(self.visible)
                else ""
            )
            rows.append((index + 1, inv, vis))
        return format_table(
            ["Hop", "Invisible RTT (ms)", "Visible RTT (ms)"],
            rows,
            title=(
                f"Fig. 6: RTT correction (AS{self.asn}, tunnel of "
                f"{self.tunnel_length} hidden hops; * = revealed hop)"
            ),
        )


def run(config: Optional[ContextConfig] = None) -> Fig6Result:
    """Compute Fig. 6 from the longest revealed tunnel."""
    context = campaign_context(config)
    best = None
    best_pair = None
    for pair in context.result.pairs:
        revelation = context.result.revelations.get(
            (pair.ingress, pair.egress)
        )
        if revelation is None or not revelation.success:
            continue
        if best is None or revelation.tunnel_length > best.tunnel_length:
            best = revelation
            best_pair = pair
    result = Fig6Result()
    if best is None or best_pair is None:
        return result
    result.asn = best_pair.asn
    result.tunnel_length = best.tunnel_length
    vp = next(
        vp for vp in context.internet.vps if vp.name == best_pair.vp
    )
    result.invisible = rtt_profile(best_pair.trace)
    result.visible = corrected_rtt_profile(
        best_pair.trace, best, context.internet.prober, vp
    )
    return result
