"""Extension experiment: full graph-metric table, before vs after.

Sec. 7 illustrates two metrics (degree distribution, path length);
this extension tabulates the complete set the paper lists as biased —
density, mean/max degree, average path length, diameter, clustering —
on the campaign's trace graph before and after tunnel revelation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.correction import corrected_graph
from repro.analysis.graphs import GraphSummary, summarize_graph
from repro.analysis.itdk import TraceGraph
from repro.experiments.common import (
    ContextConfig,
    campaign_context,
    format_table,
)

__all__ = ["GraphSummaryResult", "run"]

_COLUMNS = (
    "Graph", "Nodes", "Edges", "Density", "MeanDeg", "MaxDeg",
    "MeanPath", "Diameter", "Clustering", "Components",
)


@dataclass
class GraphSummaryResult:
    """Before/after summaries."""

    invisible: GraphSummary
    visible: GraphSummary

    @property
    def text(self) -> str:
        """Text rendering in the paper's table/figure layout."""
        rows = [
            ("invisible", *self.invisible.as_row()),
            ("visible", *self.visible.as_row()),
        ]
        return format_table(
            _COLUMNS,
            rows,
            title="Graph metrics before/after tunnel revelation",
        )


def run(config: Optional[ContextConfig] = None) -> GraphSummaryResult:
    """Summarize the campaign graph with and without revelations."""
    context = campaign_context(config)
    graph = TraceGraph(context.alias_of, context.asn_of)
    graph.add_traces(context.result.traces)
    fixed = corrected_graph(
        graph, context.result.revelations.values()
    )
    return GraphSummaryResult(
        invisible=summarize_graph(graph),
        visible=summarize_graph(fixed),
    )
