"""Shared infrastructure for the experiment (table/figure) modules.

Most experiments consume the same expensive artefact — a full
measurement campaign over the synthetic Internet — so it is built once
per parameter set and memoised.  Each experiment module exposes a
``run(...)`` returning a result object with structured data plus a
``text`` rendering that mirrors the paper's table/figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence

from repro.campaign.orchestrator import Campaign, CampaignConfig, CampaignResult
from repro.campaign.postprocess import Aggregator
from repro.core.frpla import FrplaAnalyzer
from repro.measure import RecordingBackend, ReplayBackend, SimBackend
from repro.probing.prober import Prober
from repro.serve.registry import TopologySpec, default_registry
from repro.synth.internet import InternetConfig, build_internet
from repro.synth.profiles import scaled_profiles

__all__ = [
    "ContextConfig",
    "CampaignContext",
    "campaign_context",
    "format_table",
]


@dataclass(frozen=True)
class ContextConfig:
    """Parameters for a reusable campaign context."""

    scale: float = 1.0  #: AS size multiplier (see ``paper_profiles``)
    seed: int = 2017
    vantage_points: int = 10
    stubs_per_transit: int = 6
    ttl_propagate_everywhere: bool = False  #: True = visible tunnels
    workers: int = 1  #: campaign prewarm worker processes
    #: Global probe budget; None = unlimited (partial results when hit).
    probe_budget: Optional[int] = None
    max_retries: int = 0  #: per-probe retries on timeout
    #: Record every probe exchange to this JSONL probe log.
    record_path: Optional[str] = None
    #: Serve every probe from this probe log instead of the simulator.
    replay_path: Optional[str] = None
    #: Campaign warehouse root: checkpoint the run under this
    #: directory (see :mod:`repro.store`), making interruptions
    #: resumable and the snapshot diffable with ``repro diff``.
    checkpoint_dir: Optional[str] = None
    #: Resume the interrupted run checkpointed in ``checkpoint_dir``
    #: instead of starting fresh (bit-identical to an uninterrupted
    #: run).
    resume: bool = False
    #: Inject this shipped chaos profile (see
    #: :data:`repro.faults.FAULT_PROFILES`) between the measurement
    #: service and the simulator; None measures cleanly.
    fault_profile: Optional[str] = None
    #: Circuit-breaker threshold for the campaign's ping phase
    #: (consecutive losses before a target is parked); None disables.
    breaker_threshold: Optional[int] = None
    #: Attach the compiled batch data plane to the engine (results
    #: are bit-identical; probes evaluate through per-flow programs).
    compiled_plane: bool = False
    #: Traceroute TTL rounds per batch submission (1 = serial loop).
    batch_window: int = 1
    #: RSVP-TE tunnels installed per transit AS (0 = pure-LDP paper
    #: baseline; see :class:`repro.synth.internet.InternetConfig`).
    te_tunnels_per_transit: int = 0
    #: Render the TE tunnels visible (TTL propagated into the TE LSE).
    te_ttl_propagate: bool = False
    #: Run revelation through this registry technique's trigger and
    #: strategy (e.g. ``"tnt"``) instead of the classic combined
    #: recursion; None keeps the paper's untriggered behaviour.
    revelation_technique: Optional[str] = None


class CampaignContext:
    """A built Internet plus a completed campaign and its analyzers."""

    def __init__(self, config: ContextConfig) -> None:
        self.config = config
        mutating = False
        if config.fault_profile is not None:
            from repro.faults import fault_profile

            mutating = fault_profile(
                config.fault_profile
            ).mutates_network
        if mutating:
            # Flap-style profiles rewire links mid-run, so they get a
            # private, unfrozen build; everything else shares the
            # process-wide rendered snapshot below.
            self.internet = build_internet(
                InternetConfig(
                    profiles=tuple(
                        scaled_profiles(
                            config.scale,
                            config.ttl_propagate_everywhere,
                        )
                    ),
                    vantage_points=config.vantage_points,
                    stubs_per_transit=config.stubs_per_transit,
                    seed=config.seed,
                    compiled_plane=config.compiled_plane,
                    probe_batch_window=config.batch_window,
                    te_tunnels_per_transit=(
                        config.te_tunnels_per_transit
                    ),
                    te_ttl_propagate=config.te_ttl_propagate,
                )
            )
        else:
            # Render-once, attach-many: two contexts in one process
            # that differ only in execution knobs (workers, budget,
            # record/replay, compiled plane) now share one rendered
            # topology instead of silently paying ``internet_build``
            # twice for the same content key.
            self.internet = default_registry().attach(
                TopologySpec(
                    scale=config.scale,
                    seed=config.seed,
                    vantage_points=config.vantage_points,
                    stubs_per_transit=config.stubs_per_transit,
                    ttl_propagate_everywhere=(
                        config.ttl_propagate_everywhere
                    ),
                    te_tunnels_per_transit=(
                        config.te_tunnels_per_transit
                    ),
                    te_ttl_propagate=config.te_ttl_propagate,
                ),
                compiled_plane=config.compiled_plane,
                batch_window=config.batch_window,
            )
        prober, recording = self._build_prober(config)
        self.campaign = Campaign(
            prober,
            self.internet.vps,
            self.internet.asn_of_address,
            CampaignConfig(
                suspicious_asns=tuple(self.internet.transit_asns),
                workers=config.workers,
                probe_budget=config.probe_budget,
                max_retries=config.max_retries,
                breaker_threshold=config.breaker_threshold,
                revelation_technique=config.revelation_technique,
            ),
        )
        checkpoint = self._build_checkpoint(config)
        try:
            self.result: CampaignResult = self.campaign.run(
                self.internet.campaign_targets(),
                checkpoint=checkpoint,
            )
        finally:
            if recording is not None:
                recording.close()
        self.aggregator = Aggregator(
            self.result,
            self.internet.asn_of_address,
            alias_of=self._alias_of,
        )
        self.frpla: FrplaAnalyzer = self.campaign.frpla(
            self.result, classify=self.aggregator.role_of
        )
        if checkpoint is not None and checkpoint.snapshot is not None:
            # The diffable summary: volumes, revealed tunnels, and
            # per-AS verdicts (``repro diff`` prefers it over the raw
            # phase records).
            from repro.store import result_document

            names = {
                asn: profile.name
                for asn, profile in self.internet.profiles.items()
            }
            checkpoint.snapshot.write_result(
                result_document(
                    self.result,
                    self.aggregator,
                    frpla=self.frpla,
                    as_names=names,
                )
            )

    # ------------------------------------------------------------------

    def _build_prober(self, config: ContextConfig):
        """The campaign's prober, honouring record/replay settings.

        Returns ``(prober, recording)`` where ``recording`` is the
        :class:`RecordingBackend` to close after the run (or None).
        The synthetic Internet is built either way — replay still
        needs its topology metadata (VPs, IP-to-AS, ground truth) —
        but under ``replay_path`` every probe is answered from the log
        instead of the simulator.
        """
        window = config.batch_window
        if config.replay_path is not None:
            return (
                Prober(
                    ReplayBackend(config.replay_path),
                    obs=self.internet.engine.obs,
                    batch_window=window,
                ),
                None,
            )
        backend = None
        if config.fault_profile is not None:
            from repro.faults import FaultyBackend, fault_profile

            backend = FaultyBackend(
                SimBackend(self.internet.engine),
                fault_profile(config.fault_profile),
            )
        if config.record_path is not None:
            recording = RecordingBackend(
                backend or SimBackend(self.internet.engine),
                config.record_path,
            )
            return Prober(recording, batch_window=window), recording
        if backend is not None:
            return Prober(backend, batch_window=window), None
        return self.internet.prober, None

    def _build_checkpoint(self, config: ContextConfig):
        """A checkpoint handle when the config asks for one.

        The topology descriptor keyed into the snapshot covers every
        field that changes what is measured; execution knobs
        (workers, budgets, record/replay plumbing) stay out so an
        interrupted budgeted run and its unbudgeted resume land in
        the same snapshot.
        """
        if config.checkpoint_dir is None:
            return None
        from repro.store import CampaignCheckpoint

        return CampaignCheckpoint(
            config.checkpoint_dir,
            topology={
                "kind": "synthetic-internet",
                "scale": config.scale,
                "seed": config.seed,
                "vantage_points": config.vantage_points,
                "stubs_per_transit": config.stubs_per_transit,
                "ttl_propagate_everywhere": (
                    config.ttl_propagate_everywhere
                ),
                # Only stamped when chaos is on, so clean-run
                # snapshot keys are unchanged across versions.
                **(
                    {"fault_profile": config.fault_profile}
                    if config.fault_profile is not None
                    else {}
                ),
                # Under faults the batch window shapes the probe
                # stream (in-flight probes behind a stop still spend
                # fault-clock positions), so it keys the snapshot;
                # clean runs are window-invariant and stay unkeyed.
                **(
                    {"batch_window": config.batch_window}
                    if config.fault_profile is not None
                    and config.batch_window > 1
                    else {}
                ),
                # TE knobs change the rendered topology, so they key
                # the snapshot — but only when enabled, keeping
                # pre-TE snapshot keys valid.
                **(
                    {
                        "te_tunnels_per_transit": (
                            config.te_tunnels_per_transit
                        ),
                        "te_ttl_propagate": config.te_ttl_propagate,
                    }
                    if config.te_tunnels_per_transit
                    else {}
                ),
                # A technique gates which pairs get revealed, so it
                # changes the measured result and keys the snapshot.
                **(
                    {
                        "revelation_technique": (
                            config.revelation_technique
                        )
                    }
                    if config.revelation_technique is not None
                    else {}
                ),
            },
            resume=config.resume,
        )

    def _alias_of(self, address: int) -> Optional[str]:
        router = self.internet.router_of_address(address)
        return None if router is None else router.name

    @property
    def alias_of(self):
        """Ground-truth alias resolver (address → router name)."""
        return self._alias_of

    @property
    def asn_of(self):
        """Ground-truth IP-to-AS mapping."""
        return self.internet.asn_of_address


@lru_cache(maxsize=4)
def _cached_context(config: ContextConfig) -> CampaignContext:
    return CampaignContext(config)


def campaign_context(
    config: Optional[ContextConfig] = None,
) -> CampaignContext:
    """Build (or fetch the memoised) campaign context."""
    return _cached_context(config or ContextConfig())


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Minimal fixed-width text table for experiment output."""
    cells = [[str(h) for h in headers]]
    cells.extend([str(value) for value in row] for row in rows)
    widths = [
        max(len(row[col]) for row in cells)
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    for index, row in enumerate(cells):
        lines.append(
            "  ".join(value.ljust(width) for value, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
