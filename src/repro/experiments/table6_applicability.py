"""Table 6 — technique applicability per vendor default, verified.

The matrix itself lives in :mod:`repro.core.classify`; this experiment
verifies each claimed check mark against the emulated testbed: BRPR
must peel a Cisco-default tunnel, DPR must expose a Juniper-default
one, FRPLA must see both, RTLA only the Juniper edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.brpr import backward_recursive_revelation
from repro.core.classify import Applicability, technique_applicability
from repro.core.dpr import direct_path_revelation
from repro.core.frpla import rfa_of_hop
from repro.core.rtla import RtlaAnalyzer
from repro.experiments.common import format_table
from repro.mpls.config import MplsConfig
from repro.net.vendors import CISCO, JUNIPER
from repro.synth.gns3 import build_gns3

__all__ = ["Table6Result", "run"]


@dataclass
class Table6Result:
    """Claimed matrix plus per-cell emulation verdicts."""

    claimed: Dict[str, Applicability] = field(default_factory=dict)
    #: brand -> {technique: observed_works}
    observed: Dict[str, Dict[str, bool]] = field(default_factory=dict)

    @property
    def all_verified(self) -> bool:
        """Every firm claim (True/False) matches the emulation."""
        for brand, applicability in self.claimed.items():
            for technique in ("frpla", "rtla", "dpr", "brpr"):
                claim = getattr(applicability, technique)
                if claim == "partial":
                    continue
                if self.observed[brand][technique] != claim:
                    return False
        return True

    @property
    def text(self) -> str:
        """Text rendering in the paper's table/figure layout."""
        rows = []
        for brand, applicability in sorted(self.claimed.items()):
            def mark(technique: str) -> str:
                claim = getattr(applicability, technique)
                seen = self.observed[brand][technique]
                if claim == "partial":
                    return f"({'v' if seen else '-'})"
                return "v" if seen else "-"

            rows.append(
                (
                    brand,
                    applicability.ldp.value,
                    applicability.popping,
                    mark("frpla"),
                    mark("rtla"),
                    mark("dpr"),
                    mark("brpr"),
                )
            )
        return format_table(
            ["Brand", "LDP", "Popping", "FRPLA", "RTLA", "DPR", "BRPR"],
            rows,
            title="Table 6: technique applicability (verified)",
        )


def _observe(vendor) -> Dict[str, bool]:
    """Measure which techniques fire on a vendor-default testbed."""
    config = MplsConfig.from_vendor(vendor, ttl_propagate=False)
    testbed = build_gns3(vendor=vendor, config=config)
    vp = testbed.vantage_point
    ingress = testbed.address("PE1.left")
    egress = testbed.address("PE2.left")

    trace = testbed.traceroute("CE2.left")
    egress_hop = trace.hop_of(egress)
    sample = rfa_of_hop(egress_hop) if egress_hop else None
    frpla = sample is not None and sample.rfa > 0

    analyzer = RtlaAnalyzer()
    analyzer.add_trace(trace)
    analyzer.add_ping(testbed.prober.ping(vp, egress))
    estimate = analyzer.estimate(egress)
    rtla = estimate is not None and estimate.tunnel_length > 0

    dpr = direct_path_revelation(testbed.prober, vp, ingress, egress)
    dpr_works = dpr.success and len(dpr.revealed) >= 2

    brpr = backward_recursive_revelation(
        testbed.prober, vp, ingress, egress
    )
    # BRPR "works" in the Table 6 sense when it can do the one-at-a-
    # time peel, i.e. the first trace only exposed the last hop.
    brpr_works = (
        brpr.success
        and len(brpr.revealed) >= 2
        and not dpr_works
    ) or (brpr.success and not dpr.success)

    return {
        "frpla": frpla,
        "rtla": rtla,
        "dpr": dpr_works,
        "brpr": brpr_works,
    }


def run() -> Table6Result:
    """Verify the Table 6 matrix against the emulator."""
    result = Table6Result()
    for brand, vendor in (("cisco", CISCO), ("juniper", JUNIPER)):
        result.claimed[brand] = technique_applicability(brand)
        result.observed[brand] = _observe(vendor)
    return result
