"""Table 1 — router TTL pair-signatures, measured on a mini-testbed.

Builds a plain-IP chain with one router of each brand, traceroutes
through it and pings every hop, then infers signatures the way a real
campaign would.  The measured pairs must match Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.core.signatures import SIGNATURE_BRANDS, SignatureInventory
from repro.dataplane.engine import ForwardingEngine
from repro.experiments.common import format_table
from repro.net.topology import Network
from repro.net.vendors import BROCADE, CISCO, JUNIPER, JUNIPER_E
from repro.probing.prober import Prober

__all__ = ["Table1Result", "run"]


@dataclass
class Table1Result:
    """Measured signature per brand."""

    #: brand name -> (measured pair, expected pair)
    signatures: Dict[str, Tuple[Tuple[int, int], Tuple[int, int]]] = field(
        default_factory=dict
    )

    @property
    def all_match(self) -> bool:
        """True when every measured pair equals Table 1's."""
        return all(
            measured == expected
            for measured, expected in self.signatures.values()
        )

    @property
    def text(self) -> str:
        """Text rendering in the paper's table/figure layout."""
        rows = [
            (f"<{m[0]}, {m[1]}>", brand, "ok" if m == e else "MISMATCH")
            for brand, (m, e) in sorted(self.signatures.items())
        ]
        return format_table(
            ["Router Signature", "Brand/OS", "Check"],
            rows,
            title="Table 1: router signatures (measured on testbed)",
        )


def run() -> Table1Result:
    """Measure the four signatures of Table 1."""
    expected = {brand: pair for pair, brand in SIGNATURE_BRANDS.items()}
    network = Network()
    vp = network.add_router("VP", asn=1, vendor=CISCO)
    chain = [
        network.add_router("R_cisco", asn=2, vendor=CISCO),
        network.add_router("R_juniper", asn=2, vendor=JUNIPER),
        network.add_router("R_junose", asn=2, vendor=JUNIPER_E),
        network.add_router("R_brocade", asn=2, vendor=BROCADE),
        network.add_router("target", asn=3, vendor=CISCO),
    ]
    previous = vp
    for router in chain:
        network.add_link(previous, router)
        previous = router
    prober = Prober(ForwardingEngine(network))
    inventory = SignatureInventory()
    trace = prober.traceroute(vp, chain[-1].loopback)
    inventory.observe_trace(trace)
    for hop in trace.responsive_hops[:-1]:
        inventory.observe_ping(prober.ping(vp, hop.address))

    result = Table1Result()
    for router in chain[:-1]:
        address = next(
            address
            for address in trace.addresses
            if network.owner_of(address) is router
        )
        signature = inventory.signature(address)
        result.signatures[router.vendor.name] = (
            signature.pair,
            expected[router.vendor.name],
        )
    return result
