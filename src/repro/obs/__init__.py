"""``repro.obs`` — unified observability: metrics, spans, events.

The subsystem has three legs, designed together so one verbosity/level
configuration drives all of them:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  fixed-bucket histograms, cheap enough for the forwarding engine's
  per-probe path (plain dict adds, no locks; forked campaign workers
  own copy-on-write registries and merge deltas on join);
* :class:`~repro.obs.spans.Tracer` — context-manager spans over
  monotonic clocks with parent/child nesting, from ``campaign.run``
  down to individual engine walks and revelation attempts;
* :class:`~repro.obs.events.EventLog` — leveled, schema'd structured
  records (probe sent, reply kind, cache hit/miss, revelation step,
  technique verdict) with JSONL and in-memory ring-buffer sinks.

Wiring model
------------

Metrics are **per component stack**: every
:class:`~repro.dataplane.engine.ForwardingEngine` owns a registry, and
the prober, campaign, and technique code above it record into the same
one (so unrelated engines in one process never mix counters).  The
event log and tracer are **process-global** by default
(:func:`get_event_log` / :func:`get_tracer`): sinks can be attached
before a campaign stack even exists, which is how the CLI's
``--trace-out`` captures a run it has not built yet.  Both defaults
can be overridden by passing an explicit :class:`Obs` bundle.

With no sink attached and default levels, the whole subsystem costs a
dict add per counter and one boolean check per potential event — the
instrumentation stays in place permanently (< 10% on the cached
traceroute benchmark; see DESIGN.md for the budget).

:func:`configure` applies one verbosity to both stdlib :mod:`logging`
(the ``repro`` root logger) and the event-log level.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional, Tuple

from repro.obs.events import (
    DEBUG,
    INFO,
    WARNING,
    EventLog,
    JsonlSink,
    RingBufferSink,
)
from repro.obs.metrics import (
    EXECUTION_PREFIXES,
    Histogram,
    MetricsRegistry,
    measurement_counters,
)
from repro.obs.spans import NULL_SPAN, Span, Tracer

__all__ = [
    "DEBUG",
    "INFO",
    "WARNING",
    "EventLog",
    "JsonlSink",
    "RingBufferSink",
    "EXECUTION_PREFIXES",
    "Histogram",
    "MetricsRegistry",
    "measurement_counters",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "Obs",
    "get_event_log",
    "get_tracer",
    "configure",
]

#: Process-global event log — sinks attached here see every component
#: that did not get an explicit :class:`Obs` bundle.
_EVENT_LOG = EventLog()

#: Process-global tracer, bound to the global event log.
_TRACER = Tracer(_EVENT_LOG)


def get_event_log() -> EventLog:
    """The process-global event log."""
    return _EVENT_LOG


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


class Obs:
    """One component stack's observability bundle.

    A fresh bundle gets its **own** metrics registry (per-engine
    counter isolation) but shares the **global** event log and tracer
    unless told otherwise.
    """

    __slots__ = ("metrics", "events", "tracer")

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else _EVENT_LOG
        self.tracer = tracer if tracer is not None else _TRACER


#: One stdlib handler managed by :func:`configure` (so repeated calls
#: never stack duplicate handlers).
_LOG_HANDLER: Optional[logging.Handler] = None


def configure(
    verbosity: int = 0, stream: Optional[IO[str]] = None
) -> Tuple[int, int]:
    """Apply one verbosity to stdlib logging *and* the event log.

    ``verbosity`` counts ``-v`` flags: 0 → logging WARNING / events
    INFO, 1 → logging INFO / events INFO, 2+ → DEBUG for both.
    Returns the ``(logging_level, event_level)`` pair applied.
    """
    global _LOG_HANDLER
    levels = (logging.WARNING, logging.INFO, logging.DEBUG)
    log_level = levels[min(verbosity, 2)]
    event_level = DEBUG if verbosity >= 2 else INFO
    root = logging.getLogger("repro")
    if _LOG_HANDLER is not None and (
        stream is not None and _LOG_HANDLER.stream is not stream
    ):
        root.removeHandler(_LOG_HANDLER)
        _LOG_HANDLER = None
    if _LOG_HANDLER is None:
        _LOG_HANDLER = logging.StreamHandler(stream or sys.stderr)
        _LOG_HANDLER.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        root.addHandler(_LOG_HANDLER)
    root.setLevel(log_level)
    _EVENT_LOG.set_level(event_level)
    return log_level, event_level
