"""Span tracing: nested, monotonic-clock timing around code regions.

A span measures one region of work — a campaign phase, one traceroute,
a symbolic engine walk, one revelation attempt — and records it as a
``span`` event in the :class:`~repro.obs.events.EventLog` when it
closes::

    with tracer.span("revelation.dpr", ingress=x, egress=y):
        ...

Spans nest: the tracer keeps an explicit stack (the process is
single-threaded) and every record carries its ``span`` id and its
``parent`` id, so a trace JSONL reconstructs the full call tree —
campaign run → phase → traceroute → engine walk.

Timing uses ``time.perf_counter`` (monotonic): durations are valid
even across wall-clock adjustments.

When the event log cannot deliver a span record (no sink attached, or
the level filtered), ``span()`` returns a shared no-op context manager
— no object allocation, no clock reads — so instrumentation can stay
in hot paths permanently.  This replaces the campaign orchestrator's
former private ``_timed`` helper and extends the same mechanism down
the stack.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.obs.events import INFO, EventLog

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class _NullSpan:
    """Shared do-nothing span for a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def annotate(self, **attrs: object) -> None:
        """No-op (matches :meth:`Span.annotate`)."""


#: The singleton returned by a disabled tracer.
NULL_SPAN = _NullSpan()


class Span:
    """One live span; use as a context manager."""

    __slots__ = (
        "tracer", "name", "attrs", "span_id", "parent_id",
        "started", "duration",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: Dict[str, object],
        span_id: int,
        parent_id: Optional[int],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.started = 0.0
        self.duration: Optional[float] = None  #: seconds, set on exit

    def annotate(self, **attrs: object) -> None:
        """Attach extra attributes before the span closes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self.started = time.perf_counter()
        self.tracer._stack.append(self.span_id)
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> bool:
        self.duration = time.perf_counter() - self.started
        stack = self.tracer._stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        self.tracer._finish(self, failed=exc_type is not None)
        return False


class Tracer:
    """Creates spans and turns them into ``span`` events."""

    def __init__(self, events: EventLog) -> None:
        self.events = events
        self._stack: List[int] = []
        self._next_id = 1

    def span(self, name: str, **attrs: object) -> object:
        """Open a span named ``name``; returns a context manager.

        Returns the shared :data:`NULL_SPAN` when span events would be
        dropped anyway, keeping disabled tracing allocation-free.
        """
        if not self.events.info:
            return NULL_SPAN
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        return Span(self, name, attrs, span_id, parent)

    def _finish(self, span: Span, failed: bool) -> None:
        """Emit the closing ``span`` record."""
        fields: Dict[str, object] = {
            "name": span.name,
            "span": span.span_id,
            "parent": span.parent_id,
            "ms": round((span.duration or 0.0) * 1000.0, 3),
        }
        if failed:
            fields["failed"] = True
        fields.update(span.attrs)
        self.events.emit("span", INFO, **fields)
