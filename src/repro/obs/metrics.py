"""Metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the numeric half of the observability subsystem
(:mod:`repro.obs`).  It is deliberately minimal — plain dictionaries
and integer adds — because it sits on the simulator's hot path: the
forwarding engine increments counters per probe and per walked hop.
No locks are needed: the process is single-threaded, and parallel
campaigns fork workers that each own a copy-on-write clone of the
registry and ship counter *deltas* back for an explicit merge
(:meth:`MetricsRegistry.merge_counters`).

Counter names are dotted paths (``probe.sent.traceroute``,
``engine.trajectory_hits``).  The first segment is a namespace with
defined invariance semantics:

* **measurement counters** (``probe.*``, ``trace.*``, ``campaign.*``,
  ``revelation.*``, ``dpr.*``, ``brpr.*``, ``frpla.*``, ``rtla.*``)
  describe *what was measured* and are invariant under execution
  strategy — a ``workers=N`` campaign reports exactly the same totals
  as a serial run (the measurements are replayed by the same serial
  code path);
* **execution counters** (``engine.*``, ``phase.*``, ``prewarm.*``,
  ``span.*``) describe *how* the run executed (cache hits vs misses,
  worker prewarm activity, timings) and legitimately differ between
  serial and parallel runs.

:func:`measurement_counters` filters a registry down to the invariant
set; the parallel-equals-serial test pins the contract.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "EXECUTION_PREFIXES",
    "measurement_counters",
]

#: Default histogram buckets — log-spaced upper bounds suitable for
#: both small counts (trace hops, revelation steps) and milliseconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0,
)

#: Counter namespaces that depend on the execution strategy (caching,
#: worker count, wall-clock, checkpoint/resume) rather than on what
#: was measured.
EXECUTION_PREFIXES: Tuple[str, ...] = (
    "dataplane.", "engine.", "monitor.", "phase.", "prewarm.",
    "serve.", "span.", "store.",
)


class Histogram:
    """A fixed-bucket histogram (cumulative on export, like Prometheus).

    ``bounds`` are the inclusive upper bounds of each bucket; one
    implicit ``+Inf`` bucket catches the overflow.  Observation is one
    bisect plus two adds.
    """

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        #: Per-bucket observation counts (len(bounds) + 1, last = +Inf).
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total: float = 0.0  #: sum of observed values
        self.count: int = 0  #: number of observations

    def observe(self, value: float) -> None:
        """Account one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean observed value (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Add another histogram's observations (same bounds required)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"bucket mismatch: {other.bounds} vs {self.bounds}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.count += other.count

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready dict (bounds, per-bucket counts, sum, count)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """Counters, gauges, and histograms behind dotted names.

    Everything is a plain dict operation; the registry is safe to hit
    from the forwarding engine's per-probe path.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Counters

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at 0)."""
        counters = self._counters
        counters[name] = counters.get(name, 0) + value

    def get(self, name: str, default: int = 0) -> int:
        """Current value of counter ``name``."""
        return self._counters.get(name, default)

    @property
    def counters(self) -> Mapping[str, int]:
        """Live view of every counter (do not mutate)."""
        return self._counters

    def counters_snapshot(self) -> Dict[str, int]:
        """Point-in-time copy of all counters."""
        return dict(self._counters)

    def counter_deltas(self, base: Mapping[str, int]) -> Dict[str, int]:
        """Per-counter growth since ``base`` (a prior snapshot).

        Counters created after the snapshot appear with their full
        value; zero deltas are omitted.
        """
        deltas: Dict[str, int] = {}
        for name, value in self._counters.items():
            delta = value - base.get(name, 0)
            if delta:
                deltas[name] = delta
        return deltas

    def merge_counters(
        self, deltas: Mapping[str, int], prefix: str = ""
    ) -> None:
        """Add ``deltas`` into this registry, optionally re-namespaced.

        Parallel campaigns merge each worker's counter deltas under the
        ``prewarm.`` prefix so worker activity stays distinguishable
        from the authoritative serial replay.
        """
        for name, value in deltas.items():
            self.inc(prefix + name, value)

    # ------------------------------------------------------------------
    # Gauges

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    def gauge(self, name: str, default: float = 0.0) -> float:
        """Current value of gauge ``name``."""
        return self._gauges.get(name, default)

    @property
    def gauges(self) -> Mapping[str, float]:
        """Live view of every gauge (do not mutate)."""
        return self._gauges

    # ------------------------------------------------------------------
    # Histograms

    def histogram(
        self, name: str, buckets: Optional[Iterable[float]] = None
    ) -> Histogram:
        """Fetch (or create) the histogram called ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(buckets or DEFAULT_BUCKETS)
            self._histograms[name] = histogram
        return histogram

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Iterable[float]] = None,
    ) -> None:
        """Record one observation into histogram ``name``."""
        self.histogram(name, buckets).observe(value)

    @property
    def histograms(self) -> Mapping[str, Histogram]:
        """Live view of every histogram (do not mutate)."""
        return self._histograms

    # ------------------------------------------------------------------
    # Whole-registry operations

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready dump of the full registry."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def merge(self, other: "MetricsRegistry", prefix: str = "") -> None:
        """Fold another registry into this one.

        Counters and histogram observations add; gauges follow
        last-write-wins (the merged-in value overwrites).
        """
        self.merge_counters(other._counters, prefix)
        for name, value in other._gauges.items():
            self._gauges[prefix + name] = value
        for name, histogram in other._histograms.items():
            mine = self._histograms.get(prefix + name)
            if mine is None:
                clone = Histogram(histogram.bounds)
                clone.merge(histogram)
                self._histograms[prefix + name] = clone
            else:
                mine.merge(histogram)

    def reset(self) -> None:
        """Drop every metric (tests and fresh CLI runs)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def measurement_counters(
    counters: Mapping[str, int]
) -> Dict[str, int]:
    """The execution-strategy-invariant subset of ``counters``.

    These are the totals that must be identical between a serial and a
    ``workers=N`` campaign (see the module docstring for the namespace
    contract).
    """
    return {
        name: value
        for name, value in counters.items()
        if not name.startswith(EXECUTION_PREFIXES)
    }
