"""Registry exporters: Prometheus text format and JSON.

``to_prometheus`` renders a :class:`~repro.obs.metrics.MetricsRegistry`
in the Prometheus text exposition format (metric names are sanitised
and prefixed with ``repro_``; histograms expose the usual cumulative
``_bucket``/``_sum``/``_count`` series).  ``write_metrics`` picks the
format from the file suffix — ``.prom``/``.txt`` for Prometheus text,
anything else for the JSON snapshot — and backs the CLI's
``repro campaign --metrics-out`` flag.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import List, Union

from repro.obs.metrics import MetricsRegistry

__all__ = ["to_prometheus", "metrics_json", "write_metrics"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    """A raw dotted name as a valid Prometheus metric name."""
    return "repro_" + _NAME_RE.sub("_", name)


def _format_value(value: float) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    for name, value in sorted(registry.counters.items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in sorted(registry.gauges.items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, histogram in sorted(registry.histograms.items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(histogram.bounds, histogram.counts):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_format_value(bound)}"}} '
                f"{cumulative}"
            )
        lines.append(
            f'{metric}_bucket{{le="+Inf"}} {histogram.count}'
        )
        lines.append(f"{metric}_sum {_format_value(histogram.total)}")
        lines.append(f"{metric}_count {histogram.count}")
    return "\n".join(lines) + "\n"


def metrics_json(registry: MetricsRegistry) -> str:
    """The registry snapshot as pretty-printed JSON."""
    return json.dumps(registry.snapshot(), indent=2) + "\n"


def write_metrics(
    registry: MetricsRegistry, path: Union[str, Path]
) -> Path:
    """Write the registry to ``path``; format follows the suffix.

    ``.prom`` and ``.txt`` produce Prometheus text, everything else
    the JSON snapshot.  Returns the written path.
    """
    path = Path(path)
    if path.suffix in (".prom", ".txt"):
        path.write_text(to_prometheus(registry))
    else:
        path.write_text(metrics_json(registry))
    return path
