"""Structured event log: leveled, schema'd JSONL records.

The event log is the narrative half of the observability subsystem:
where the :mod:`metrics <repro.obs.metrics>` registry answers *how
many*, the event log answers *what happened, in order* — one record
per probe sent, reply observed, cache lookup, revelation step,
technique verdict, campaign phase, and span.

Records are plain dicts::

    {"t": 0.001234, "lvl": "info", "kind": "revelation.step",
     "ingress": ..., "egress": ..., "target": ..., "fresh": 2}

``t`` is seconds since the log was created (monotonic clock — safe to
subtract, never jumps).  Known kinds carry a schema (required field
names) enforced at emit time, so downstream tooling such as
``tools/trace_inspect.py`` can rely on the fields being present;
unknown kinds pass through unvalidated (the log is extensible).

Levels reuse the stdlib :mod:`logging` numeric values so one verbosity
setting (``repro -v``) can drive both systems — see
:func:`repro.obs.configure`.

Sinks receive finished records.  :class:`JsonlSink` streams them to a
``.jsonl`` file (the ``repro campaign --trace-out`` artefact);
:class:`RingBufferSink` keeps the last N in memory for tests and
post-mortem inspection.  With no sink attached, ``emit`` is a single
attribute check — cheap enough to leave instrumentation in hot paths.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Deque, Dict, FrozenSet, IO, List, Optional, Union

__all__ = [
    "DEBUG",
    "INFO",
    "WARNING",
    "SCHEMAS",
    "JsonlSink",
    "RingBufferSink",
    "EventLog",
]

#: Event levels — numerically identical to the stdlib logging levels.
DEBUG, INFO, WARNING = 10, 20, 30

_LEVEL_NAMES: Dict[int, str] = {DEBUG: "debug", INFO: "info", WARNING: "warning"}

#: Required fields per known event kind.  Extra fields are always
#: allowed; kinds not listed here are emitted unvalidated.
SCHEMAS: Dict[str, FrozenSet[str]] = {
    "probe.sent": frozenset({"vp", "dst", "ttl", "flow", "probe"}),
    "probe.reply": frozenset({"vp", "dst", "ttl", "reply"}),
    "probe.gap": frozenset({"vp", "dst", "ttl"}),
    "cache.hit": frozenset({"origin", "dst", "flow"}),
    "cache.miss": frozenset({"origin", "dst", "flow"}),
    "cache.flush": frozenset({"dropped"}),
    "phase.start": frozenset({"phase"}),
    "phase.end": frozenset({"phase", "seconds"}),
    "revelation.step": frozenset({"ingress", "egress", "target", "fresh"}),
    "revelation.verdict": frozenset({"ingress", "egress", "method", "revealed"}),
    "technique.verdict": frozenset({"technique", "success"}),
    "span": frozenset({"name", "span", "parent", "ms"}),
    "campaign.metrics": frozenset({"counters"}),
    "fault.injected": frozenset({"fault", "vp", "dst", "ttl"}),
    "fault.flap": frozenset({"action", "at_probe"}),
    "measure.quarantine": frozenset({"reason", "vp", "dst", "ttl"}),
}


class JsonlSink:
    """Streams records to a JSON-Lines file (one object per line)."""

    def __init__(self, destination: Union[str, IO[str]]) -> None:
        if isinstance(destination, str):
            self._handle: IO[str] = open(destination, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = destination
            self._owns_handle = False

    def write(self, record: Dict[str, object]) -> None:
        """Append one record as a compact JSON line."""
        self._handle.write(
            json.dumps(record, separators=(",", ":"), default=str)
        )
        self._handle.write("\n")

    def close(self) -> None:
        """Flush, and close the file when this sink opened it."""
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()


class RingBufferSink:
    """Keeps the most recent ``capacity`` records in memory."""

    def __init__(self, capacity: int = 10000) -> None:
        self._records: Deque[Dict[str, object]] = deque(maxlen=capacity)

    def write(self, record: Dict[str, object]) -> None:
        """Buffer one record (oldest records fall off the end)."""
        self._records.append(record)

    @property
    def records(self) -> List[Dict[str, object]]:
        """Buffered records, oldest first."""
        return list(self._records)

    def of_kind(self, kind: str) -> List[Dict[str, object]]:
        """Buffered records whose ``kind`` matches."""
        return [r for r in self._records if r.get("kind") == kind]

    def kinds(self) -> Dict[str, int]:
        """Record count per kind."""
        counts: Dict[str, int] = {}
        for record in self._records:
            kind = str(record.get("kind"))
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def clear(self) -> None:
        """Drop every buffered record."""
        self._records.clear()


class EventLog:
    """Leveled, multi-sink event dispatcher.

    ``debug`` and ``info`` are precomputed booleans — instrumented code
    guards expensive field construction with ``if events.debug:`` so a
    disabled log costs one attribute read per potential event.
    """

    def __init__(self, level: int = INFO) -> None:
        self.sinks: List[object] = []
        self.level = level
        self._origin = time.perf_counter()
        #: True when a DEBUG-level emit would reach a sink.
        self.debug = False
        #: True when an INFO-level emit would reach a sink.
        self.info = False

    # ------------------------------------------------------------------
    # Configuration

    def _refresh(self) -> None:
        active = bool(self.sinks)
        self.debug = active and self.level <= DEBUG
        self.info = active and self.level <= INFO

    def set_level(self, level: int) -> None:
        """Change the minimum level a record needs to be sunk."""
        self.level = level
        self._refresh()

    def attach(self, sink: object) -> None:
        """Start delivering records to ``sink`` (needs ``.write``)."""
        self.sinks.append(sink)
        self._refresh()

    def detach(self, sink: object) -> None:
        """Stop delivering to ``sink`` (no error if absent)."""
        if sink in self.sinks:
            self.sinks.remove(sink)
        self._refresh()

    def detach_all(self) -> None:
        """Drop every sink — used by forked campaign workers so they
        never write into the parent's trace file."""
        self.sinks.clear()
        self._refresh()

    def enabled_for(self, level: int) -> bool:
        """Would a record at ``level`` reach any sink?"""
        return bool(self.sinks) and level >= self.level

    # ------------------------------------------------------------------
    # Emission

    def emit(
        self, kind: str, level: int = INFO, **fields: object
    ) -> Optional[Dict[str, object]]:
        """Dispatch one record; returns it (None when filtered).

        Known kinds are validated against :data:`SCHEMAS` — a missing
        required field raises ``ValueError`` rather than producing a
        record downstream tools cannot parse.
        """
        if not self.sinks or level < self.level:
            return None
        required = SCHEMAS.get(kind)
        if required is not None and not required <= fields.keys():
            missing = sorted(required - fields.keys())
            raise ValueError(
                f"event {kind!r} missing required fields: {missing}"
            )
        record: Dict[str, object] = {
            "t": round(time.perf_counter() - self._origin, 6),
            "lvl": _LEVEL_NAMES.get(level, str(level)),
            "kind": kind,
        }
        record.update(fields)
        for sink in self.sinks:
            sink.write(record)
        return record
