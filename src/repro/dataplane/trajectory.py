"""Symbolic packet trajectories for the forwarding engine.

The engine's walk is deterministic given ``(origin, src, dst, flow_id,
kind)`` — every routing decision (ECMP pick, LSP entry/exit, TE
steering) reads only those fields, never a TTL.  The *only* thing the
initial TTL ``T`` controls is **where the journey ends**.  Better yet,
every TTL value that ever appears during a walk has the closed form::

    value(T) = min(T + shift, clamp)

with ``shift = None`` denoting a pure constant (e.g. a non-propagated
LSE initialised to 255).  The form is closed under all dataplane
operations:

* decrement            — ``(shift - 1, clamp - 1)``
* propagate push       — copy the IP symbol into the new LSE
* no-propagate push    — ``(None, 255)``
* PHP ``min`` pop      — pairwise ``min`` of shifts and clamps

So instead of re-walking the path once per probe TTL (O(h) per probe,
O(h^2) per traceroute), the engine walks **once** symbolically,
recording a :class:`TrajectoryEvent` at every decrement that could
expire some ``T`` (threshold ``θ = -shift``: the packet dies there iff
``T <= θ``).  Thresholds along a walk are non-decreasing per ladder, so
a prefix-max array plus :func:`bisect.bisect_left` maps any ``T`` to
its terminal event in O(log events).

Label values are never read during a walk, so the symbolic build must
not allocate them either (LDP label allocation is pinned to first-use
order by the golden tests).  Stack entries instead carry a
:class:`BindingRef` (an index into the trajectory's ordered binding
*sites*, forced lazily in walk order at evaluation time) or an
:class:`InputRef` (a label copied from the evaluated packet's own
stack).  This also keeps label values out of cache keys, which is what
lets worker processes ship trajectories to the parent process without
disturbing its allocation order.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import List, Optional, Tuple

__all__ = [
    "BindingRef",
    "InputRef",
    "SymbolicLse",
    "SymbolicPacket",
    "TrajectoryEvent",
    "Trajectory",
    "TrajectoryBuilder",
    "ttl_eval",
    "trajectory_to_wire",
    "trajectory_from_wire",
]

#: Symbolic TTL of a freshly originated packet: ``value(T) = T``.
_IDENTITY = (0, 255)
#: Symbolic TTL of a non-propagated LSE: constant 255.
_CONST_255 = (None, 255)


def ttl_eval(symbol: Tuple[Optional[int], int], initial_ttl: int) -> int:
    """Evaluate a symbolic TTL ``min(T + shift, clamp)`` at ``T``."""
    shift, clamp = symbol
    if shift is None:
        return clamp
    return min(initial_ttl + shift, clamp)


def _ttl_dec(symbol):
    """Decrement a symbolic TTL.

    Returns ``(new_symbol, status)`` where status is ``None`` (cannot
    expire here for any initial TTL), ``-1`` (expires here for *every*
    initial TTL), or a threshold ``θ >= 1`` (expires here iff the
    initial TTL is ``<= θ``).
    """
    shift, clamp = symbol
    clamp -= 1
    if shift is None:
        return (None, clamp), (-1 if clamp <= 0 else None)
    shift -= 1
    if clamp <= 0:
        return (shift, clamp), -1
    return (shift, clamp), -shift


def _ttl_min(a, b):
    """Pairwise ``min`` of two symbolic TTLs (the PHP pop rule)."""
    shift_a, clamp_a = a
    shift_b, clamp_b = b
    if shift_a is None:
        shift = shift_b
    elif shift_b is None:
        shift = shift_a
    else:
        shift = min(shift_a, shift_b)
    return (shift, min(clamp_a, clamp_b))


class BindingRef:
    """Placeholder for a label allocated lazily at evaluation time.

    ``index`` points into the owning trajectory's ``sites`` list; the
    engine forces allocations in site order so the allocator sees the
    exact first-use sequence a concrete walk would have produced.
    """

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __repr__(self) -> str:
        return f"BindingRef({self.index})"


class InputRef:
    """Placeholder for a label copied from the input packet's stack.

    Used when a trajectory is built for an already-labelled packet
    (e.g. a time-exceeded reply carried to the end of its LSP): the
    walk never reads label values, so the cached trajectory applies to
    any input labels — ``index`` recovers the concrete value at
    evaluation time.
    """

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __repr__(self) -> str:
        return f"InputRef({self.index})"


class SymbolicLse:
    """Label-stack entry whose TTL is a symbolic ``(shift, clamp)``."""

    __slots__ = ("label", "ttl", "bottom")

    def __init__(self, label, ttl, bottom: bool) -> None:
        self.label = label
        self.ttl = ttl
        self.bottom = bottom


class SymbolicPacket:
    """Duck-typed stand-in for :class:`~repro.dataplane.packet.Packet`.

    Exposes the exact attribute/method surface the engine's walk code
    touches (``labeled``, ``top``, ``fec``, ``te_tunnel``, pushes,
    pops, decrements), but keeps every TTL symbolic and every label a
    reference.  ``record_binding`` appends a binding *site* and returns
    its :class:`BindingRef` instead of asking the label allocator.
    """

    __slots__ = (
        "src", "dst", "kind", "flow_id", "ip", "stack", "fec",
        "te_tunnel", "sites",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        kind: str,
        flow_id: int,
        stack: Optional[List[SymbolicLse]] = None,
        fec=None,
        te_tunnel=None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.flow_id = flow_id
        self.ip = _IDENTITY
        self.stack: List[SymbolicLse] = stack or []
        self.fec = fec
        self.te_tunnel = te_tunnel
        self.sites: List[Tuple[str, object]] = []

    @property
    def labeled(self) -> bool:
        """True when an MPLS label stack is present."""
        return bool(self.stack)

    @property
    def top(self) -> SymbolicLse:
        """Top label stack entry (IndexError when unlabeled)."""
        return self.stack[-1]

    def record_binding(self, router_name: str, fec: object) -> BindingRef:
        """Note a label-binding site; allocation happens at eval time."""
        self.sites.append((router_name, fec))
        return BindingRef(len(self.sites) - 1)

    def push_label(self, label, fec, propagate: bool) -> None:
        """Push a fresh LSE for ``fec``; TTL copies IP under propagate."""
        ttl = self.ip if propagate else _CONST_255
        self.stack.append(SymbolicLse(label, ttl, bottom=not self.stack))
        self.fec = fec

    def pop(self) -> SymbolicLse:
        """Pop the top entry; clears ``fec``/``te_tunnel`` when empty."""
        entry = self.stack.pop()
        if not self.stack:
            self.fec = None
            self.te_tunnel = None
        return entry

    def apply_min(self, popped: SymbolicLse) -> None:
        """PHP min rule: ``IP-TTL = min(IP-TTL, popped LSE-TTL)``."""
        self.ip = _ttl_min(self.ip, popped.ttl)

    def dec_ip(self):
        """Decrement the IP-TTL; see :func:`_ttl_dec` for the status."""
        self.ip, status = _ttl_dec(self.ip)
        return status

    def dec_lse(self):
        """Decrement the top LSE-TTL; status as for :meth:`dec_ip`."""
        entry = self.stack[-1]
        entry.ttl, status = _ttl_dec(entry.ttl)
        return status


class TrajectoryEvent:
    """One potential journey end, conditional on the initial TTL.

    ``threshold`` is the largest initial TTL that dies at this event
    (``math.inf`` for the walk's unconditional terminal).  The
    remaining fields snapshot everything needed to reconstruct the
    legacy ``TransitEnd`` for a matching probe in O(1): symbolic final
    TTLs, the stack, accumulated delay, and — for LSE expiries — the
    FEC and last-hop flag that drive reply construction.
    ``bindings_used`` counts the binding sites recorded before this
    event, i.e. how far label allocation must be forced.
    ``reply_info`` is a per-event memo slot owned by the engine.
    """

    __slots__ = (
        "threshold", "reason", "hop_index", "delay_ms", "ip", "stack",
        "fec", "te_tunnel", "expired_fec", "expired_at_lh",
        "bindings_used", "reply_info",
    )

    def __init__(
        self, threshold, reason, hop_index, delay_ms, ip, stack, fec,
        te_tunnel, expired_fec, expired_at_lh, bindings_used,
    ) -> None:
        self.threshold = threshold
        self.reason = reason
        self.hop_index = hop_index
        self.delay_ms = delay_ms
        self.ip = ip
        self.stack = stack
        self.fec = fec
        self.te_tunnel = te_tunnel
        self.expired_fec = expired_fec
        self.expired_at_lh = expired_at_lh
        self.bindings_used = bindings_used
        self.reply_info = None


class Trajectory:
    """Symbolic record of one deterministic packet journey.

    Holds the walked router path, the ordered expiry events (terminal
    last, threshold ``inf``), the prefix-max threshold array used by
    :meth:`locate`, and the ordered label-binding sites with a
    ``forced`` high-water mark tracking how many the engine has
    already materialised through the allocator.
    """

    __slots__ = (
        "routers", "names", "events", "thresholds", "sites", "forced",
        "src", "dst", "flow_id", "kind",
    )

    def __init__(
        self, routers, names, events, thresholds, sites,
        src, dst, flow_id, kind,
    ) -> None:
        self.routers = routers
        self.names = names
        self.events = events
        self.thresholds = thresholds
        self.sites = sites
        self.forced = 0
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        self.kind = kind

    def locate(self, initial_ttl: int) -> TrajectoryEvent:
        """The event where a packet of ``initial_ttl`` ends its journey."""
        return self.events[bisect_left(self.thresholds, initial_ttl)]


class TrajectoryBuilder:
    """Records threshold events while the engine walks symbolically."""

    __slots__ = ("packet", "events", "hop_index", "delay_ms", "path")

    def __init__(self, packet: SymbolicPacket) -> None:
        self.packet = packet
        self.events: List[TrajectoryEvent] = []
        self.hop_index = 0
        self.delay_ms = 0.0
        self.path = None

    def at(self, hop_index: int, delay_ms: float) -> None:
        """Set the walk position subsequent events snapshot."""
        self.hop_index = hop_index
        self.delay_ms = delay_ms

    def _snapshot(self, threshold, reason, expired_fec, expired_at_lh):
        packet = self.packet
        return TrajectoryEvent(
            threshold=threshold,
            reason=reason,
            hop_index=self.hop_index,
            delay_ms=self.delay_ms,
            ip=packet.ip,
            stack=tuple(
                (entry.label, entry.ttl, entry.bottom)
                for entry in packet.stack
            ),
            fec=packet.fec,
            te_tunnel=packet.te_tunnel,
            expired_fec=expired_fec,
            expired_at_lh=expired_at_lh,
            bindings_used=len(packet.sites),
        )

    def expiry(self, threshold, reason, expired_fec, expired_at_lh):
        """Record a conditional expiry (initial TTL ``<= threshold``)."""
        self.events.append(
            self._snapshot(threshold, reason, expired_fec, expired_at_lh)
        )

    def terminal(self, reason, hop_index, delay_ms, expired_fec,
                 expired_at_lh) -> None:
        """Record the unconditional end of the walk."""
        self.at(hop_index, delay_ms)
        self.events.append(
            self._snapshot(math.inf, reason, expired_fec, expired_at_lh)
        )

    def build(self) -> Trajectory:
        """Assemble the finished :class:`Trajectory`."""
        thresholds = []
        high = -math.inf
        for event in self.events:
            high = max(high, event.threshold)
            thresholds.append(high)
        routers = list(self.path or [])
        packet = self.packet
        return Trajectory(
            routers=routers,
            names=[router.name for router in routers],
            events=self.events,
            thresholds=thresholds,
            sites=packet.sites,
            src=packet.src,
            dst=packet.dst,
            flow_id=packet.flow_id,
            kind=packet.kind,
        )


# ----------------------------------------------------------------------
# Wire format: ships trajectories between processes.  Router and TE
# tunnel objects become names; the ``reply_info`` memo and ``forced``
# mark are deliberately dropped — the receiving engine must recompute
# both so its label-allocation order stays untouched.

def _te_ref(tunnel):
    return None if tunnel is None else (tunnel.head, tunnel.tail)


def trajectory_to_wire(trajectory: Trajectory) -> dict:
    """Picklable, process-portable form of ``trajectory``."""
    return {
        "names": trajectory.names,
        "sites": trajectory.sites,
        "src": trajectory.src,
        "dst": trajectory.dst,
        "flow_id": trajectory.flow_id,
        "kind": trajectory.kind,
        "thresholds": trajectory.thresholds,
        "events": [
            (
                event.threshold, event.reason, event.hop_index,
                event.delay_ms, event.ip, event.stack, event.fec,
                _te_ref(event.te_tunnel), event.expired_fec,
                event.expired_at_lh, event.bindings_used,
            )
            for event in trajectory.events
        ],
    }


def trajectory_from_wire(wire: dict, network, te_lookup):
    """Rebuild a :class:`Trajectory` shipped from another process.

    ``network`` resolves router names; ``te_lookup(head, tail)``
    resolves TE tunnel references.  Returns None when any reference
    fails to resolve (the receiver then simply rebuilds on demand).
    """
    try:
        routers = [network.router(name) for name in wire["names"]]
    except KeyError:
        return None
    events = []
    for (threshold, reason, hop_index, delay_ms, ip, stack, fec,
         te_ref, expired_fec, expired_at_lh, bindings_used) in (
            wire["events"]):
        tunnel = None
        if te_ref is not None:
            tunnel = te_lookup(te_ref[0], te_ref[1])
            if tunnel is None:
                return None
        event = TrajectoryEvent(
            threshold=threshold,
            reason=reason,
            hop_index=hop_index,
            delay_ms=delay_ms,
            ip=ip,
            stack=stack,
            fec=fec,
            te_tunnel=tunnel,
            expired_fec=expired_fec,
            expired_at_lh=expired_at_lh,
            bindings_used=bindings_used,
        )
        events.append(event)
    return Trajectory(
        routers=routers,
        names=list(wire["names"]),
        events=events,
        thresholds=list(wire["thresholds"]),
        sites=list(wire["sites"]),
        src=wire["src"],
        dst=wire["dst"],
        flow_id=wire["flow_id"],
        kind=wire["kind"],
    )
