"""Dataplane: packets and the per-hop forwarding engine."""

from repro.dataplane.engine import EndReason, ForwardingEngine, ProbeOutcome
from repro.dataplane.packet import Packet

__all__ = ["EndReason", "ForwardingEngine", "Packet", "ProbeOutcome"]
