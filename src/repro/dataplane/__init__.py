"""Dataplane: packets, the per-hop engine, and the compiled plane."""

from repro.dataplane.compiled import CompiledPlane, CompiledReply
from repro.dataplane.engine import EndReason, ForwardingEngine, ProbeOutcome
from repro.dataplane.packet import Packet

__all__ = [
    "CompiledPlane",
    "CompiledReply",
    "EndReason",
    "ForwardingEngine",
    "Packet",
    "ProbeOutcome",
]
