"""Compiled batch data plane: dense per-flow programs over batches.

The trajectory cache (:mod:`repro.dataplane.trajectory`) already
reduces a probe to *locate + synthesize*: one bisection into the
flow's threshold ladder, then reply construction from the located
event.  This module compiles that representation one step further so
whole probe **batches** execute without per-probe Python overhead:

* a :class:`CompiledFlow` flattens a trajectory's events into parallel
  lookup tables — terminal router, replyability, the IP-TTL symbol
  ``min(T + shift, clamp)``, accumulated delay — plus the threshold
  ladder as a dense array;
* batch *locate* runs as one vectorised ``numpy.searchsorted`` over
  the whole TTL array when numpy is importable and the batch is large
  enough to amortise the array round-trip, and as a pure-python
  ``bisect_left`` loop otherwise (both are exactly ``bisect_left``,
  so results are bit-identical — the kernel-equivalence test pins
  this);
* reply *synthesis* is a per-event template: reply kind, responder,
  responder router, reply TTL and the reply leg's delay are all
  TTL-independent, so after the first resolution every later probe of
  the event is a tuple unpack plus one add for the RTT;
* synthesized replies are themselves memoised per ``(event, TTL)`` —
  replies are immutable value objects and, for a fixed program, a
  probe's reply is a pure function of its TTL, so re-probing a flow
  (revelation re-traces, campaign phases) reuses the object.  Live
  router state (ICMP enabled, response rate) is re-checked per probe
  *before* the memo so failure injection still bites mid-run, and the
  memo dies with the program on invalidation.

The module deliberately holds **data only** — the evaluation loop
lives in :meth:`repro.dataplane.engine.ForwardingEngine.
_evaluate_compiled`, because reply templates are resolved through the
engine's reply walk and label forcing, whose *ordering* is pinned by
the golden LDP-allocation tests.  Keeping the dependency one-way
(engine imports this module, never the reverse) preserves the
layering the ``flake8-tidy-imports`` ban enforces.

The core stays stdlib-clean: numpy is resolved lazily on the first
large batch and its absence simply selects the pure-python kernel.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CompiledPlane",
    "CompiledFlow",
    "CompiledReply",
    "SILENT",
    "NUMPY_BATCH_CUTOFF",
]

#: Batches at least this large locate through numpy (when available);
#: smaller ones stay in the bisect loop, which wins under the array
#: conversion overhead.  Tests monkeypatch :func:`_numpy` (or set the
#: resolved module to None) to force the pure-python kernel.
NUMPY_BATCH_CUTOFF = 32

#: Per-event template sentinel: this event never produces a reply
#: (mirrors the engine's ``_NO_REPLY`` reply-walk memo).
SILENT = object()

#: Lazily resolved numpy module: ``False`` = not yet attempted,
#: ``None`` = unavailable (pure-python kernels only).
_np = False


def _numpy():
    """Resolve numpy once; None when the import fails."""
    global _np
    if _np is False:
        try:
            import numpy
        except ImportError:  # pragma: no cover - numpy ships in CI
            numpy = None
        _np = numpy
    return _np


class CompiledReply:
    """Reply synthesized by the compiled plane for one batched probe.

    Field-compatible with :class:`~repro.measure.backend.ProbeReply`
    (and the engine's ``ProbeOutcome``), minus the ground-truth path
    fields — the reply wire codec never serialises paths, so batch
    replies stay byte-identical to scalar ones on every artefact.
    ``quoted_labels`` defaults to a shared empty tuple: replies are
    treated as immutable downstream (mutating layers copy first).
    """

    __slots__ = (
        "probe_ttl", "reply_kind", "responder", "responder_router",
        "reply_ttl", "quoted_labels", "rtt_ms",
    )

    def __init__(
        self,
        probe_ttl: int,
        reply_kind: Optional[str] = None,
        responder: Optional[int] = None,
        responder_router: Optional[str] = None,
        reply_ttl: Optional[int] = None,
        quoted_labels: Sequence[Tuple[int, int]] = (),
        rtt_ms: float = 0.0,
    ) -> None:
        self.probe_ttl = probe_ttl
        self.reply_kind = reply_kind
        self.responder = responder
        self.responder_router = responder_router
        self.reply_ttl = reply_ttl
        self.quoted_labels = quoted_labels
        self.rtt_ms = rtt_ms

    @property
    def responded(self) -> bool:
        """True unless the probe timed out."""
        return self.reply_kind is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledReply(ttl={self.probe_ttl}, "
            f"kind={self.reply_kind!r}, responder={self.responder})"
        )


class CompiledEvent:
    """One trajectory event flattened for table-lookup evaluation.

    ``template`` is the lazily resolved reply template: None until the
    first probe lands here, :data:`SILENT` when the event never
    replies, else the tuple ``(delivered, kind, src, responder_router,
    reply_ttl, reply_delay_ms)``.  Resolution goes through the
    engine's memoised reply walk so label-allocation order matches the
    scalar path exactly.
    """

    __slots__ = (
        "event", "router", "replyable", "quote",
        "ip_shift", "ip_clamp", "delay_ms", "template",
        "replies", "ratios",
    )

    def __init__(self, event, router, replyable, quote) -> None:
        self.event = event  #: the backing TrajectoryEvent
        self.router = router  #: terminal router object
        self.replyable = replyable  #: reason can generate a reply
        self.quote = quote  #: LSE expiry (RFC 4950 quoting candidate)
        shift, clamp = event.ip
        self.ip_shift = shift  #: IP symbol shift (None = constant)
        self.ip_clamp = clamp  #: IP symbol clamp
        self.delay_ms = event.delay_ms  #: forward-leg delay
        self.template = None
        #: TTL -> memoised synthesized reply (responded probes only;
        #: liveness checks run before the lookup, so a downed router
        #: never serves from here).
        self.replies: Dict[int, CompiledReply] = {}
        #: TTL -> rate-limit hash ratio (pure function of the TTL;
        #: compared against the *live* response rate each probe).
        self.ratios: Dict[int, float] = {}


#: ``EndReason`` values that can generate a reply, by enum value —
#: compared as strings so this module never imports the engine.
_REPLYABLE_REASONS = frozenset(
    ("delivered", "ip-expired", "lse-expired")
)
_LSE_EXPIRED = "lse-expired"


class CompiledFlow:
    """Dense, batch-evaluable program for one (source, dst, flow, kind).

    Wraps the flow's :class:`~repro.dataplane.trajectory.Trajectory`
    (kept for binding sites, reply walks, and the ground-truth path)
    and precomputes everything batch evaluation reads per probe.
    """

    __slots__ = (
        "trajectory", "events", "thresholds", "_np_thresholds", "bare",
        "plans",
    )

    def __init__(self, trajectory) -> None:
        self.trajectory = trajectory
        #: TTL -> shared timeout reply (a ``*`` carries nothing but
        #: its probe TTL, so one object serves every silent event).
        self.bare: Dict[int, CompiledReply] = {}
        #: TTL-window tuple -> ``[plan, signature, replies, walks,
        #: routers]``: the located event list, then the memoised reply
        #: vector for the whole window guarded by the liveness
        #: signature ``tuple((r.icmp_enabled, r.icmp_response_rate))``
        #: over the plan's replyable ``routers``.  Probing re-visits
        #: the same windows (revelation re-traces, campaign rounds),
        #: so on a signature match the window is served as one list;
        #: any liveness change falls back to the per-probe loop.
        self.plans: Dict[tuple, list] = {}
        routers = trajectory.routers
        self.events: List[CompiledEvent] = [
            CompiledEvent(
                event,
                routers[event.hop_index],
                event.reason.value in _REPLYABLE_REASONS,
                event.reason.value == _LSE_EXPIRED,
            )
            for event in trajectory.events
        ]
        #: Prefix-max threshold ladder (same list ``locate`` bisects).
        self.thresholds = trajectory.thresholds
        self._np_thresholds = None

    def locate_batch(self, ttls: Sequence[int]) -> Sequence[int]:
        """Map each initial TTL to its terminal event index.

        Bit-identical to per-probe ``bisect_left`` whichever kernel
        runs; the numpy kernel only engages past
        :data:`NUMPY_BATCH_CUTOFF`, where ``searchsorted`` beats the
        loop despite the array conversions.
        """
        if len(ttls) >= NUMPY_BATCH_CUTOFF:
            np = _numpy()
            if np is not None:
                ladder = self._np_thresholds
                if ladder is None:
                    ladder = np.asarray(
                        self.thresholds, dtype=np.float64
                    )
                    self._np_thresholds = ladder
                return np.searchsorted(
                    ladder,
                    np.asarray(ttls, dtype=np.float64),
                    side="left",
                ).tolist()
        thresholds = self.thresholds
        return [bisect_left(thresholds, ttl) for ttl in ttls]


class CompiledPlane:
    """Registry of compiled flow programs for one converged network.

    Owned (or shared) by forwarding engines; flushed wholesale through
    the same control-plane invalidation hooks that drop trajectory
    and response caches, so route flaps and chaos flaps can never
    leave it serving a stale topology.  The plane itself keeps no
    metrics registry — each engine accounts ``dataplane.compiled.*``
    counters into its own observability bundle.
    """

    __slots__ = ("programs",)

    def __init__(self) -> None:
        #: (source name, dst, flow_id, kind) -> CompiledFlow
        self.programs: Dict[tuple, CompiledFlow] = {}

    def install(self, key: tuple, trajectory) -> CompiledFlow:
        """Compile ``trajectory`` and register it under ``key``."""
        program = CompiledFlow(trajectory)
        self.programs[key] = program
        return program

    def flush(self) -> int:
        """Drop every program; returns how many were dropped."""
        dropped = len(self.programs)
        self.programs.clear()
        return dropped

    def stats(self) -> Dict[str, int]:
        """Current plane shape (programs and their event count)."""
        return {
            "programs": len(self.programs),
            "events": sum(
                len(program.events)
                for program in self.programs.values()
            ),
        }
