"""Per-hop packet forwarding engine.

This is the simulator's dataplane: it walks a packet hop by hop through
the network, applying the exact TTL/MPLS mechanics the paper's
techniques exploit.  The rules (derived from, and validated against,
the per-hop return TTLs printed in Fig. 4 of the paper) are:

1.  Plain IP forwarding decrements the IP-TTL at every arrival; expiry
    triggers a ``time-exceeded`` (TE) with the vendor's initial TTL.
2.  An ingress LER does its IP lookup (decrement) first, then pushes;
    the LSE-TTL is the (decremented) IP-TTL under ``ttl-propagate``,
    255 otherwise.
3.  Every LSR — including the penultimate (last hop, LH) — decrements
    the LSE-TTL on arrival.  LSE expiry triggers a TE quoting the label
    stack (RFC 4950); unless it happened at the LH, the TE is first
    carried to the end of the LSP before being routed back.
4.  A PHP pop (at the LH) applies ``IP-TTL = min(IP-TTL, LSE-TTL)``
    (when the LH is configured for it) and forwards *without* an IP
    decrement; the egress then does a normal IP lookup.
5.  A UHP pop (explicit null, at the egress) does *not* apply the min;
    the egress then IP-forwards with a normal decrement — except when
    the destination sits on a directly-connected subnet, where the
    disposition stays in the MPLS path and consumes no IP-TTL (this is
    what keeps Fig. 4d's egress invisible).
6.  Routers never decrement locally-originated packets.

Because every routing decision in the walk is independent of the
packet's TTLs, the walk is executed **once per flow** against a
symbolic packet (see :mod:`repro.dataplane.trajectory`) and memoised;
each concrete probe/reply TTL then resolves to its terminal state by
bisection instead of a re-walk, turning traceroute replay from O(h^2)
into near-O(h).  Set ``trajectory_cache=False`` to force the original
concrete walk for every packet.
"""

from __future__ import annotations

import logging
import zlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import DEBUG, Obs

from repro.dataplane.compiled import (
    SILENT,
    CompiledFlow,
    CompiledPlane,
    CompiledReply,
)
from repro.dataplane.packet import (
    _KINDS,
    DEST_UNREACHABLE,
    ECHO_REPLY,
    ECHO_REQUEST,
    TIME_EXCEEDED,
    UDP_PROBE,
    Packet,
)
from repro.dataplane.trajectory import (
    BindingRef,
    SymbolicLse,
    SymbolicPacket,
    InputRef,
    Trajectory,
    TrajectoryBuilder,
    trajectory_from_wire,
    trajectory_to_wire,
    ttl_eval,
)
from repro.mpls.config import PoppingMode
from repro.mpls.labels import EXPLICIT_NULL, LabelAllocator, LabelStackEntry
from repro.net.addressing import Prefix
from repro.net.router import Router
from repro.net.topology import Network
from repro.routing.control import ControlPlane, Route, RouteKind, flow_choice

__all__ = ["EndReason", "TransitEnd", "ProbeOutcome", "ForwardingEngine"]

logger = logging.getLogger(__name__)


class EndReason(Enum):
    """Why a packet stopped travelling."""

    DELIVERED = "delivered"  #: reached a router owning the destination
    IP_EXPIRED = "ip-expired"  #: IP-TTL hit zero
    LSE_EXPIRED = "lse-expired"  #: LSE-TTL hit zero inside a tunnel
    NO_ROUTE = "no-route"  #: lookup failed somewhere
    LOOP = "loop"  #: hop-count guard tripped


@dataclass
class TransitEnd:
    """Terminal state of one packet's journey."""

    reason: EndReason
    router: Optional[Router]  #: where the journey ended
    prev_router: Optional[Router]  #: upstream hop (incoming interface)
    packet: Packet  #: final packet state (TTLs as at the end)
    path: List[Router]  #: every router traversed, origin first
    delay_ms: float  #: accumulated one-way link delay
    #: FEC of the LSP in which an LSE expiry occurred (None otherwise).
    expired_fec: Optional[Prefix] = None
    #: True when the LSE expired at the LSP's penultimate hop (the
    #: popping router) — such TEs are routed back directly.
    expired_at_lh: bool = False


@dataclass
class ProbeOutcome:
    """What a vantage point observes for one probe.

    ``reply_kind`` is None when no reply came back (silent drop, ICMP
    disabled, or the reply itself died in transit).
    """

    probe_ttl: int
    reply_kind: Optional[str] = None
    responder: Optional[int] = None  #: reply source address
    responder_router: Optional[str] = None  #: ground truth
    reply_ttl: Optional[int] = None  #: reply IP-TTL observed at the VP
    quoted_labels: List[Tuple[int, int]] = field(default_factory=list)
    rtt_ms: float = 0.0
    forward_path: List[str] = field(default_factory=list)  #: ground truth
    return_path: List[str] = field(default_factory=list)  #: ground truth

    @property
    def responded(self) -> bool:
        """True when any reply reached the vantage point."""
        return self.reply_kind is not None


class _ReplyInfo:
    """Per-trajectory-event memo of the (TTL-independent) reply walk."""

    __slots__ = (
        "src", "kind", "delay_ms", "return_path", "delivered",
        "reply_ttl", "responder_router",
    )

    def __init__(self, src, kind, delay_ms, return_path, delivered,
                 reply_ttl, responder_router):
        self.src = src
        self.kind = kind
        self.delay_ms = delay_ms
        self.return_path = return_path
        self.delivered = delivered
        self.reply_ttl = reply_ttl
        self.responder_router = responder_router


#: Sentinel memo: this event never produces a reply (silent reason).
_NO_REPLY = object()

#: Histogram buckets for compiled-plane batch sizes (probes/batch).
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class ForwardingEngine:
    """Simulates packet journeys over a network + control plane."""

    def __init__(
        self,
        network: Network,
        control: Optional[ControlPlane] = None,
        max_hops: int = 255,
        trajectory_cache: bool = True,
        obs: Optional[Obs] = None,
        compiled: bool = False,
        compiled_plane: Optional[CompiledPlane] = None,
    ) -> None:
        self.network = network
        self.control = control or ControlPlane(network)
        self.max_hops = max_hops
        self.labels = LabelAllocator()
        #: Observability bundle.  Each engine owns its metrics registry
        #: (``engine.*`` counters never mix across engines); the event
        #: log and tracer default to the process-global ones.
        self.obs = obs if obs is not None else Obs()
        self._metrics = self.obs.metrics
        self._events = self.obs.events
        #: Memoise whole journeys per flow; False = legacy re-walks.
        self.trajectory_cache = trajectory_cache
        self._trajectories: Dict[tuple, Trajectory] = {}
        #: Compiled batch data plane (see :mod:`repro.dataplane.\
        #: compiled`).  ``compiled=True`` creates a private plane; an
        #: explicit ``compiled_plane`` shares one across engines (the
        #: cold-routing bench pattern).  None = scalar evaluation only.
        self.compiled_plane: Optional[CompiledPlane] = (
            compiled_plane
            if compiled_plane is not None
            else (CompiledPlane() if compiled else None)
        )
        self.control.add_invalidation_listener(self.flush_trajectories)
        if self.compiled_plane is not None:
            # Same invalidation chain as the trajectory cache: route
            # flaps and chaos flaps drop compiled programs wholesale.
            self.control.add_invalidation_listener(self._flush_compiled)

    # ------------------------------------------------------------------
    # Cache management / observability

    @property
    def packets_simulated(self) -> int:
        """Count of packets fully simulated (probes + replies)."""
        return self._metrics.get("engine.packets_simulated")

    @property
    def trajectory_hits(self) -> int:
        """Trajectory-cache lookups that found a memoised journey."""
        return self._metrics.get("engine.trajectory_hits")

    @property
    def trajectory_misses(self) -> int:
        """Trajectory-cache lookups that had to walk symbolically."""
        return self._metrics.get("engine.trajectory_misses")

    @property
    def hops_walked(self) -> int:
        """Per-hop walk steps executed (cached evals skip them)."""
        return self._metrics.get("engine.hops_walked")

    def flush_trajectories(self) -> None:
        """Drop every memoised trajectory (after topology/TE edits)."""
        dropped = len(self._trajectories)
        self._trajectories.clear()
        self._metrics.inc("engine.cache_flushes")
        if dropped:
            logger.debug("trajectory cache flushed (%d dropped)", dropped)
            if self._events.debug:
                self._events.emit("cache.flush", DEBUG, dropped=dropped)

    def _flush_compiled(self) -> None:
        """Drop every compiled program (invalidation-hook listener)."""
        dropped = self.compiled_plane.flush()
        self._metrics.inc("dataplane.compiled.invalidations")
        if dropped:
            logger.debug("compiled plane flushed (%d dropped)", dropped)
            if self._events.debug:
                self._events.emit(
                    "compiled.flush", DEBUG, dropped=dropped
                )

    def cache_stats(self) -> Dict[str, object]:
        """Trajectory-cache effectiveness counters, as one dict."""
        total = self.trajectory_hits + self.trajectory_misses
        return {
            "trajectory_hits": self.trajectory_hits,
            "trajectory_misses": self.trajectory_misses,
            "hit_rate": self.trajectory_hits / total if total else 0.0,
            "cached_trajectories": len(self._trajectories),
            "hops_walked": self.hops_walked,
            "packets_simulated": self.packets_simulated,
        }

    def export_trajectories(self, known=frozenset()) -> Dict[tuple, dict]:
        """Wire-format snapshot of trajectories whose key is not in
        ``known`` (used by parallel campaign workers to ship their
        freshly built trajectories back to the parent process)."""
        return {
            key: trajectory_to_wire(trajectory)
            for key, trajectory in self._trajectories.items()
            if key not in known
        }

    def install_trajectories(self, wires: Dict[tuple, dict]) -> int:
        """Install wire-format trajectories built in another process.

        Existing keys are kept (first build wins); unresolvable wires
        are skipped.  Returns how many trajectories were installed.
        """
        installed = 0
        for key, wire in wires.items():
            if key in self._trajectories:
                continue
            trajectory = trajectory_from_wire(
                wire, self.network, self.control.te.tunnel_from
            )
            if trajectory is not None:
                self._trajectories[key] = trajectory
                installed += 1
        return installed

    # ------------------------------------------------------------------
    # Public API

    def send_probe(
        self,
        source: Router,
        dst: int,
        ttl: int,
        flow_id: int = 0,
        kind: str = ECHO_REQUEST,
    ) -> ProbeOutcome:
        """Emit one probe from ``source`` and report what comes back."""
        if not self.trajectory_cache and self.compiled_plane is None:
            return self._send_probe_walked(source, dst, ttl, flow_id, kind)
        if kind not in _KINDS:
            raise ValueError(f"unknown packet kind {kind!r}")
        if not 0 <= ttl <= 255:
            raise ValueError(f"IP-TTL out of range: {ttl}")
        metrics = self._metrics
        metrics.inc("engine.packets_simulated")
        key = (source.name, dst, flow_id, kind)
        if self.compiled_plane is not None:
            trajectory = self._compiled_program(key, source).trajectory
        else:
            trajectory = self._trajectories.get(key)
            if trajectory is None:
                metrics.inc("engine.trajectory_misses")
                if self._events.debug:
                    self._events.emit(
                        "cache.miss", DEBUG,
                        origin=source.name, dst=dst, flow=flow_id,
                    )
                with self.obs.tracer.span(
                    "engine.walk",
                    origin=source.name, dst=dst, flow=flow_id,
                ):
                    trajectory = self._build_trajectory(
                        source, source.loopback, dst, flow_id, kind,
                        (), None,
                    )
                self._trajectories[key] = trajectory
            else:
                metrics.inc("engine.trajectory_hits")
                if self._events.debug:
                    self._events.emit(
                        "cache.hit", DEBUG,
                        origin=source.name, dst=dst, flow=flow_id,
                    )
        event = trajectory.locate(ttl)
        self._force_bindings(trajectory, event.bindings_used)
        outcome = ProbeOutcome(
            probe_ttl=ttl,
            forward_path=trajectory.names[: event.hop_index + 1],
        )
        reason = event.reason
        if reason is EndReason.NO_ROUTE or reason is EndReason.LOOP:
            return outcome
        router = trajectory.routers[event.hop_index]
        if not self._responds(router, flow_id, ttl_eval(event.ip, ttl), dst):
            return outcome
        info = event.reply_info
        if info is None:
            info = self._reply_info(trajectory, event)
            event.reply_info = info
        elif info is not _NO_REPLY:
            # The memoised reply walk still counts as one simulated
            # packet, mirroring the legacy per-probe reply simulation.
            metrics.inc("engine.packets_simulated")
        if info is _NO_REPLY:
            return outcome
        outcome.rtt_ms = event.delay_ms + info.delay_ms
        outcome.return_path = list(info.return_path)
        if info.delivered:
            outcome.reply_kind = info.kind
            outcome.responder = info.src
            outcome.responder_router = info.responder_router
            outcome.reply_ttl = info.reply_ttl
            if (
                reason is EndReason.LSE_EXPIRED
                and router.mpls.rfc4950
                and router.vendor.rfc4950
            ):
                outcome.quoted_labels = self._quoted_labels(
                    trajectory, event, ttl
                )
        return outcome

    def _compiled_program(self, key: tuple, source: Router) -> CompiledFlow:
        """Fetch (or build) the compiled program for one flow key.

        Cache accounting mirrors the scalar path: a program (or cached
        trajectory) is a hit, a fresh symbolic walk is a miss.  The
        trajectory store is only populated when ``trajectory_cache`` is
        on, so a compiled-only engine keeps exactly one copy per flow.
        """
        metrics = self._metrics
        program = self.compiled_plane.programs.get(key)
        if program is not None:
            metrics.inc("engine.trajectory_hits")
            return program
        trajectory = self._trajectories.get(key)
        if trajectory is not None:
            metrics.inc("engine.trajectory_hits")
        else:
            metrics.inc("engine.trajectory_misses")
            if self._events.debug:
                self._events.emit(
                    "cache.miss", DEBUG,
                    origin=source.name, dst=key[1], flow=key[2],
                )
            with self.obs.tracer.span(
                "engine.walk",
                origin=source.name, dst=key[1], flow=key[2],
            ):
                trajectory = self._build_trajectory(
                    source, source.loopback, key[1], key[2], key[3],
                    (), None,
                )
            if self.trajectory_cache:
                self._trajectories[key] = trajectory
        program = self.compiled_plane.install(key, trajectory)
        metrics.inc("dataplane.compiled.builds")
        return program

    def send_probe_batch(self, requests) -> List[CompiledReply]:
        """Evaluate a batch of probe requests.

        Each request carries the measurement plane's wire fields —
        ``source`` (the vantage-point router *name*), ``dst``, ``ttl``,
        ``flow_id``, ``kind`` — duck-typed so the engine never imports
        the measurement plane.  Requests are evaluated in submission
        order — contiguous runs sharing a flow key execute through one
        compiled program, but runs are never reordered or grouped
        across the batch, so label bindings force in exactly the order
        the scalar path would and quoted label values stay
        bit-identical.  Without a compiled plane this degrades to the
        scalar loop (counted as
        ``dataplane.compiled.fallback_to_scalar``).
        """
        metrics = self._metrics
        if self.compiled_plane is None:
            if requests:
                metrics.inc(
                    "dataplane.compiled.fallback_to_scalar",
                    len(requests),
                )
            router = self.network.router
            return [
                self.send_probe(
                    router(request.source), request.dst, request.ttl,
                    request.flow_id, request.kind,
                )
                for request in requests
            ]
        metrics.inc("dataplane.compiled.batches")
        metrics.observe(
            "dataplane.compiled.batch_size", float(len(requests)),
            _BATCH_BUCKETS,
        )
        programs = self.compiled_plane.programs
        replies: List[CompiledReply] = []
        total = len(requests)
        index = 0
        while index < total:
            head = requests[index]
            source_name = head.source
            dst = head.dst
            flow_id = head.flow_id
            kind = head.kind
            if kind not in _KINDS:
                raise ValueError(f"unknown packet kind {kind!r}")
            ttls = [head.ttl]
            end = index + 1
            while end < total:
                nxt = requests[end]
                if (
                    nxt.dst != dst or nxt.flow_id != flow_id
                    or nxt.source != source_name or nxt.kind != kind
                ):
                    break
                ttls.append(nxt.ttl)
                end += 1
            if not 0 <= min(ttls) <= max(ttls) <= 255:
                bad = next(t for t in ttls if not 0 <= t <= 255)
                raise ValueError(f"IP-TTL out of range: {bad}")
            key = (source_name, dst, flow_id, kind)
            program = programs.get(key)
            if program is not None:
                # One cache hit per probe, matching scalar accounting.
                metrics.inc("engine.trajectory_hits", len(ttls))
            else:
                program = self._compiled_program(
                    key, self.network.router(source_name)
                )
                extra = len(ttls) - 1
                if extra:
                    metrics.inc("engine.trajectory_hits", extra)
            metrics.inc("engine.packets_simulated", len(ttls))
            replies.extend(self._evaluate_compiled(program, ttls))
            index = end
        return replies

    def _evaluate_compiled(
        self, program: CompiledFlow, ttls: Sequence[int]
    ) -> List[CompiledReply]:
        """Synthesize replies for one flow's probe run.

        The responsiveness check stays live per probe (failure
        injection flips router flags mid-run) and reply templates are
        resolved lazily through the shared reply-walk memo, so the
        engine counters and label-allocation order match the scalar
        path probe for probe.

        Whole windows memoise their reply vector: for a fixed program,
        the replies are a pure function of the TTLs and the live
        responsiveness bits, so a re-probed window is served after
        re-checking exactly those bits (``icmp_enabled`` and the
        response rate of every replyable router it touches).  Any
        mismatch — a downed router, a changed rate — falls back to the
        per-probe loop and re-memoises against the new signature.
        """
        window = tuple(ttls)
        entry = program.plans.get(window)
        if entry is not None:
            plan = entry[0]
            if entry[2] is not None and entry[1] == tuple(
                (router.icmp_enabled, router.icmp_response_rate)
                for router in entry[4]
            ):
                walks = entry[3]
                if walks:
                    self._metrics.inc(
                        "engine.packets_simulated", walks
                    )
                return entry[2]
        else:
            events = program.events
            plan = [
                events[event_index]
                for event_index in program.locate_batch(ttls)
            ]
            # [plan, liveness signature, reply vector, reply walks,
            #  replyable routers] — the last four filled below.
            entry = [plan, None, None, 0, ()]
            program.plans[window] = entry
        trajectory = program.trajectory
        flow_id = trajectory.flow_id
        dst = trajectory.dst
        reply = CompiledReply
        crc32 = zlib.crc32
        bare = program.bare
        replies: List[CompiledReply] = []
        append = replies.append
        reply_walks = 0
        # Replay walks a cache hit must account: one per synthesized
        # (non-bare) reply.  Differs from ``reply_walks`` because a
        # first-time template resolution accounts its walk inside
        # ``_reply_info`` rather than here.
        walks = 0
        for ttl, ev in zip(ttls, plan):
            tev = ev.event
            if tev.bindings_used > trajectory.forced:
                self._force_bindings(trajectory, tev.bindings_used)
            if not ev.replyable:
                timeout = bare.get(ttl)
                if timeout is None:
                    timeout = bare[ttl] = reply(ttl)
                append(timeout)
                continue
            router = ev.router
            # The responsiveness policy inlined from ``_responds``
            # (the hot loop's dominant branch); the IP-TTL symbol is
            # only evaluated when rate limiting actually samples it.
            if not router.icmp_enabled:
                timeout = bare.get(ttl)
                if timeout is None:
                    timeout = bare[ttl] = reply(ttl)
                append(timeout)
                continue
            rate = router.icmp_response_rate
            if rate < 1.0:
                ratio = ev.ratios.get(ttl)
                if ratio is None:
                    shift = ev.ip_shift
                    ip_val = (
                        ev.ip_clamp if shift is None
                        else min(ttl + shift, ev.ip_clamp)
                    )
                    ratio = crc32(
                        f"{router.name}|{flow_id}|{ip_val}|{dst}"
                        .encode("ascii")
                    ) / 0xFFFFFFFF
                    ev.ratios[ttl] = ratio
                if rate <= 0.0 or ratio >= rate:
                    timeout = bare.get(ttl)
                    if timeout is None:
                        timeout = bare[ttl] = reply(ttl)
                    append(timeout)
                    continue
            done = ev.replies.get(ttl)
            if done is not None:
                reply_walks += 1
                walks += 1
                append(done)
                continue
            template = ev.template
            if template is None:
                info = tev.reply_info
                if info is None:
                    info = self._reply_info(trajectory, tev)
                    tev.reply_info = info
                elif info is not _NO_REPLY:
                    reply_walks += 1
                if info is _NO_REPLY:
                    ev.template = SILENT
                    timeout = bare.get(ttl)
                    if timeout is None:
                        timeout = bare[ttl] = reply(ttl)
                    append(timeout)
                    continue
                template = (
                    info.delivered, info.kind, info.src,
                    info.responder_router, info.reply_ttl, info.delay_ms,
                )
                ev.template = template
            elif template is SILENT:
                timeout = bare.get(ttl)
                if timeout is None:
                    timeout = bare[ttl] = reply(ttl)
                append(timeout)
                continue
            else:
                reply_walks += 1
            delivered, kind, src, responder_router, reply_ttl, delay = (
                template
            )
            walks += 1
            rtt = ev.delay_ms + delay
            if not delivered:
                done = ev.replies[ttl] = reply(ttl, rtt_ms=rtt)
                append(done)
                continue
            if ev.quote and router.mpls.rfc4950 and router.vendor.rfc4950:
                quoted = self._quoted_labels(trajectory, tev, ttl)
            else:
                quoted = ()
            done = ev.replies[ttl] = reply(
                ttl, kind, src, responder_router, reply_ttl,
                quoted, rtt,
            )
            append(done)
        if reply_walks:
            self._metrics.inc("engine.packets_simulated", reply_walks)
        seen: set = set()
        routers = []
        for ev in plan:
            if ev.replyable and id(ev.router) not in seen:
                seen.add(id(ev.router))
                routers.append(ev.router)
        entry[4] = tuple(routers)
        entry[1] = tuple(
            (router.icmp_enabled, router.icmp_response_rate)
            for router in routers
        )
        entry[2] = replies
        entry[3] = walks
        return replies

    def _send_probe_walked(
        self, source: Router, dst: int, ttl: int, flow_id: int, kind: str
    ) -> ProbeOutcome:
        """The original walk-per-probe path (``trajectory_cache=False``)."""
        probe = Packet(
            src=source.loopback, dst=dst, ip_ttl=ttl, kind=kind,
            flow_id=flow_id,
        )
        end = self._simulate(probe, source)
        outcome = ProbeOutcome(
            probe_ttl=ttl,
            forward_path=[router.name for router in end.path],
        )
        reply, origin = self._build_reply(end, source)
        if reply is None or origin is None:
            return outcome
        reply_end = self._simulate(reply, origin)
        outcome.rtt_ms = end.delay_ms + reply_end.delay_ms
        outcome.return_path = [router.name for router in reply_end.path]
        if (
            reply_end.reason is EndReason.DELIVERED
            and reply_end.router is source
        ):
            outcome.reply_kind = reply.kind
            outcome.responder = reply.src
            origin_router = self.network.owner_of(reply.src)
            outcome.responder_router = (
                origin_router.name if origin_router else None
            )
            outcome.reply_ttl = reply_end.packet.ip_ttl
            outcome.quoted_labels = list(reply.quoted_labels)
        return outcome

    # ------------------------------------------------------------------
    # Trajectory evaluation

    def _build_trajectory(
        self, origin, src, dst, flow_id, kind, stack, fec, te_tunnel=None
    ) -> Trajectory:
        """Walk once symbolically and record the whole journey."""
        symbolic = SymbolicPacket(
            src=src,
            dst=dst,
            kind=kind,
            flow_id=flow_id,
            stack=[
                SymbolicLse(InputRef(index), (None, entry.ttl), entry.bottom)
                for index, entry in enumerate(stack)
            ],
            fec=fec,
            te_tunnel=te_tunnel,
        )
        builder = TrajectoryBuilder(symbolic)
        self._walk(symbolic, origin, builder)
        return builder.build()

    def _force_bindings(self, trajectory: Trajectory, count: int) -> None:
        """Materialise label bindings in recorded walk order.

        The symbolic build allocates nothing; evaluation forces exactly
        the sites a concrete walk up to the located event would have
        touched, preserving the allocator's first-use ordering.
        """
        sites = trajectory.sites
        while trajectory.forced < count:
            name, fec = sites[trajectory.forced]
            self.labels.binding(name, fec)
            trajectory.forced += 1

    def _label_value(self, trajectory, ref, packet):
        """Resolve a trajectory label reference to a concrete value."""
        if type(ref) is int:
            return ref
        if type(ref) is BindingRef:
            name, fec = trajectory.sites[ref.index]
            return self.labels.binding(name, fec)
        return packet.stack[ref.index].label

    def _quoted_labels(self, trajectory, event, initial_ttl):
        """RFC 4950 quoting of the symbolic stack at ``initial_ttl``.

        The stack is quoted as *received*: the top entry was
        decremented to 0 on arrival, so it reads TTL + 1.
        """
        quoted = []
        last = len(event.stack) - 1
        for index, (label, symbol, _bottom) in enumerate(event.stack):
            value = ttl_eval(symbol, initial_ttl)
            quoted.append((
                self._label_value(trajectory, label, None),
                value + 1 if index == last else value,
            ))
        return quoted

    def _reply_info(self, trajectory, event):
        """Build + memoise the TTL-independent reply data for an event.

        Everything here — reply source, initial TTL, the reply's own
        journey — depends only on the terminal router and probe flow,
        not on the probe's TTL, so it is computed once per event.  The
        live per-probe parts (ICMP rate limiting, RFC 4950 quoting)
        stay in :meth:`send_probe`.
        """
        router = trajectory.routers[event.hop_index]
        reason = event.reason
        kind = trajectory.kind
        if reason is EndReason.DELIVERED:
            if kind == UDP_PROBE:
                src = self._outgoing_address(router, trajectory.src)
                reply_kind = DEST_UNREACHABLE
                initial = router.initial_ttl(TIME_EXCEEDED)
            elif kind == ECHO_REQUEST:
                src = trajectory.dst
                reply_kind = ECHO_REPLY
                initial = router.initial_ttl(ECHO_REPLY)
            else:
                return _NO_REPLY
        elif reason in (EndReason.IP_EXPIRED, EndReason.LSE_EXPIRED):
            prev = (
                trajectory.routers[event.hop_index - 1]
                if event.hop_index > 0
                else None
            )
            src = self._reply_source(router, prev)
            if src is None:
                return _NO_REPLY
            reply_kind = TIME_EXCEEDED
            initial = router.initial_ttl(TIME_EXCEEDED)
        else:
            return _NO_REPLY
        reply = Packet(
            src=src,
            dst=trajectory.src,
            ip_ttl=initial,
            kind=reply_kind,
            flow_id=trajectory.flow_id,
        )
        if (
            reason is EndReason.LSE_EXPIRED
            and not event.expired_at_lh
            and event.expired_fec is not None
            and not self.control.is_fec_egress(router, event.expired_fec)
        ):
            # TE generated mid-LSP: carried to the LSP end first,
            # inside a fresh LSE with TTL 255.  (An expiry at the
            # egress itself — UHP arrival — replies directly.)
            label = self.labels.binding(router.name, event.expired_fec)
            reply.push(
                LabelStackEntry(label=label, ttl=255), event.expired_fec
            )
        end = self._simulate(reply, router)
        source_router = trajectory.routers[0]
        delivered = (
            end.reason is EndReason.DELIVERED
            and end.router is source_router
        )
        responder_router = None
        if delivered:
            owner = self.network.owner_of(src)
            responder_router = owner.name if owner else None
        return _ReplyInfo(
            src=src,
            kind=reply_kind,
            delay_ms=end.delay_ms,
            return_path=tuple(r.name for r in end.path),
            delivered=delivered,
            reply_ttl=end.packet.ip_ttl,
            responder_router=responder_router,
        )

    def _transit_end(self, trajectory: Trajectory, packet: Packet):
        """Reconstruct the legacy :class:`TransitEnd` for ``packet``."""
        initial = packet.ip_ttl
        event = trajectory.locate(initial)
        self._force_bindings(trajectory, event.bindings_used)
        index = event.hop_index
        final = object.__new__(Packet)
        final.src = packet.src
        final.dst = packet.dst
        # Bypass validation: a ttl=0 input legally walks to ip_ttl=-1.
        final.ip_ttl = ttl_eval(event.ip, initial)
        final.kind = packet.kind
        final.flow_id = packet.flow_id
        stack = []
        for label, symbol, bottom in event.stack:
            entry = object.__new__(LabelStackEntry)
            entry.label = self._label_value(trajectory, label, packet)
            entry.tc = 0
            entry.bottom = bottom
            entry.ttl = ttl_eval(symbol, initial)
            stack.append(entry)
        final.stack = stack
        final.fec = event.fec
        final.quoted_labels = list(packet.quoted_labels)
        final.probe_ttl = packet.probe_ttl
        final.te_tunnel = event.te_tunnel
        return TransitEnd(
            reason=event.reason,
            router=trajectory.routers[index],
            prev_router=trajectory.routers[index - 1] if index else None,
            packet=final,
            path=list(trajectory.routers[: index + 1]),
            delay_ms=event.delay_ms,
            expired_fec=event.expired_fec,
            expired_at_lh=event.expired_at_lh,
        )

    # ------------------------------------------------------------------
    # Reply construction (legacy walk path)

    def _build_reply(
        self, end: TransitEnd, source: Router
    ) -> Tuple[Optional[Packet], Optional[Router]]:
        """Create the ICMP reply for a finished probe, if any."""
        router = end.router
        probe = end.packet
        if router is None:
            return None, None
        if not self._responds(
            router, probe.flow_id, probe.ip_ttl, probe.dst
        ):
            return None, None
        if end.reason is EndReason.DELIVERED:
            if probe.kind == UDP_PROBE:
                # Port unreachable, sourced from the *outgoing*
                # interface toward the prober — the Mercator alias
                # resolution signal.
                reply = Packet(
                    src=self._outgoing_address(router, probe.src),
                    dst=probe.src,
                    ip_ttl=router.initial_ttl(TIME_EXCEEDED),
                    kind=DEST_UNREACHABLE,
                    flow_id=probe.flow_id,
                    probe_ttl=probe.ip_ttl,
                )
                return reply, router
            if probe.kind != ECHO_REQUEST:
                return None, None
            reply = Packet(
                src=probe.dst,
                dst=probe.src,
                ip_ttl=router.initial_ttl(ECHO_REPLY),
                kind=ECHO_REPLY,
                flow_id=probe.flow_id,
                probe_ttl=probe.ip_ttl,
            )
            return reply, router
        if end.reason in (EndReason.IP_EXPIRED, EndReason.LSE_EXPIRED):
            reply_src = self._reply_source(router, end.prev_router)
            if reply_src is None:
                return None, None
            reply = Packet(
                src=reply_src,
                dst=probe.src,
                ip_ttl=router.initial_ttl(TIME_EXCEEDED),
                kind=TIME_EXCEEDED,
                flow_id=probe.flow_id,
                probe_ttl=0,
            )
            if end.reason is EndReason.LSE_EXPIRED:
                if router.mpls.rfc4950 and router.vendor.rfc4950:
                    # Quote the stack as *received*: the top entry was
                    # decremented to 0 on arrival, so it reads TTL=1.
                    top = probe.stack[-1]
                    reply.quoted_labels = [
                        (entry.label, entry.ttl + 1)
                        if entry is top
                        else entry.as_tuple()
                        for entry in probe.stack
                    ]
                if (
                    not end.expired_at_lh
                    and end.expired_fec is not None
                    and not self.control.is_fec_egress(
                        router, end.expired_fec
                    )
                ):
                    # TE generated mid-LSP: carried to the LSP end first,
                    # inside a fresh LSE with TTL 255.  (An expiry at the
                    # egress itself — UHP arrival — replies directly.)
                    label = self.labels.binding(
                        router.name, end.expired_fec
                    )
                    reply.push(
                        LabelStackEntry(label=label, ttl=255),
                        end.expired_fec,
                    )
            return reply, router
        return None, None

    def _outgoing_address(self, router: Router, toward: int) -> int:
        """Address of the interface ``router`` uses to reach ``toward``."""
        route = self.control.resolve(router, toward)
        next_router: Optional[Router] = None
        if route.kind is RouteKind.ATTACHED:
            next_router = self.network.owner_of(toward)
        elif route.next_hops:
            next_router = flow_choice(route.next_hops, router.name, 0)
        if next_router is not None:
            interface = router.interface_toward(next_router)
            if interface is not None:
                return interface.address
        return router.loopback

    @staticmethod
    def _responds(
        router: Router, flow_id: int, ip_ttl: int, dst: int
    ) -> bool:
        """ICMP policy: silence and deterministic rate limiting.

        Rate limiting is sampled per probe from a stable hash of the
        probe identity, so repeated campaigns stay reproducible while
        individual probes are dropped at the configured rate.  Always
        evaluated live (never cached): failure-injection scenarios flip
        these router flags mid-run.
        """
        if not router.icmp_enabled:
            return False
        rate = router.icmp_response_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        digest = zlib.crc32(
            f"{router.name}|{flow_id}|{ip_ttl}|{dst}".encode("ascii")
        )
        return (digest / 0xFFFFFFFF) < rate

    def _reply_source(
        self, router: Router, prev: Optional[Router]
    ) -> Optional[int]:
        """ICMP source address: the incoming interface of ``router``."""
        if prev is not None:
            address = router.incoming_address_from(prev)
            if address is not None:
                return address
        return router.loopback

    # ------------------------------------------------------------------
    # The per-hop walk

    def _simulate(self, packet: Packet, origin: Router) -> TransitEnd:
        """Walk ``packet`` from ``origin`` until a terminal state.

        With the trajectory cache enabled the walk happens at most once
        per ``(origin, flow)``; subsequent calls reconstruct the
        terminal state from the memoised trajectory.  Packets already
        riding a TE tunnel (only hand-crafted test packets do) always
        take the concrete walk.
        """
        self._metrics.inc("engine.packets_simulated")
        if not self.trajectory_cache or packet.te_tunnel is not None:
            return self._walk(packet, origin)
        key = (
            origin.name,
            packet.src,
            packet.dst,
            packet.flow_id,
            packet.kind,
            tuple((entry.ttl, entry.bottom) for entry in packet.stack),
            packet.fec,
        )
        trajectory = self._trajectories.get(key)
        if trajectory is None:
            self._metrics.inc("engine.trajectory_misses")
            trajectory = self._build_trajectory(
                origin, packet.src, packet.dst, packet.flow_id,
                packet.kind, tuple(packet.stack), packet.fec,
            )
            self._trajectories[key] = trajectory
        else:
            self._metrics.inc("engine.trajectory_hits")
        return self._transit_end(trajectory, packet)

    def _walk(self, packet, origin: Router, builder=None):
        """Concrete or symbolic per-hop walk.

        With ``builder=None``, ``packet`` is a concrete
        :class:`Packet` and the walk returns its :class:`TransitEnd`
        (original semantics).  With a
        :class:`~repro.dataplane.trajectory.TrajectoryBuilder`,
        ``packet`` is symbolic: conditional expiries are recorded as
        events, the walk runs to its unconditional end, and None is
        returned (the builder holds the trajectory).
        """
        current = origin
        prev: Optional[Router] = None
        path = [origin]
        delay = 0.0
        originating = True
        inc = self._metrics.inc
        for _ in range(self.max_hops):
            inc("engine.hops_walked")
            if not originating:
                if builder is not None:
                    builder.at(len(path) - 1, delay)
                arrival = self._process_arrival(current, packet, builder)
                if arrival is not None:
                    return self._walk_end(
                        arrival[0], current, prev, packet, path, delay,
                        arrival[1], arrival[2], builder,
                    )
            step = self._forwarding_step(current, packet, originating)
            if step is None:
                return self._walk_end(
                    EndReason.NO_ROUTE, current, prev, packet, path,
                    delay, None, False, builder,
                )
            next_router = step
            link = current.interface_toward(next_router)
            assert link is not None, (
                f"no link {current.name} -> {next_router.name}"
            )
            delay += link.link.delay_ms
            prev = current
            current = next_router
            path.append(current)
            originating = False
        return self._walk_end(
            EndReason.LOOP, current, prev, packet, path, delay,
            None, False, builder,
        )

    def _walk_end(
        self, reason, current, prev, packet, path, delay,
        expired_fec, expired_at_lh, builder,
    ):
        """Finish a walk: a TransitEnd, or a recorded terminal event."""
        if builder is not None:
            builder.terminal(
                reason, len(path) - 1, delay, expired_fec, expired_at_lh
            )
            builder.path = path
            return None
        return TransitEnd(
            reason=reason,
            router=current,
            prev_router=prev,
            packet=packet,
            path=path,
            delay_ms=delay,
            expired_fec=expired_fec,
            expired_at_lh=expired_at_lh,
        )

    def _process_arrival(
        self, router: Router, packet, builder
    ) -> Optional[Tuple[EndReason, Optional[Prefix], bool]]:
        """TTL bookkeeping on packet arrival; non-None ends the walk.

        Decrements return ``None`` (no expiry), ``-1`` (unconditional
        expiry — ends concrete walks and truncates symbolic ones), or a
        threshold (symbolic packets only) recorded on the builder.
        """
        popped_here = False
        if packet.labeled:
            status = packet.dec_lse()
            if status is not None:
                fec = packet.fec
                at_lh = self._is_last_hop(router, packet)
                if status < 0:
                    return (EndReason.LSE_EXPIRED, fec, at_lh)
                builder.expiry(status, EndReason.LSE_EXPIRED, fec, at_lh)
            tunnel = packet.te_tunnel
            if tunnel is not None and router.name == tunnel.tail:
                # RSVP-TE tail under UHP: pop the explicit-null label.
                packet.pop()
                popped_here = True
            elif packet.fec is not None and self.control.is_fec_egress(
                router, packet.fec
            ):
                # UHP arrival (explicit null) — pop without the min
                # rule; IP processing continues below.
                packet.pop()
                popped_here = True
        if not packet.labeled:
            if router.owns(packet.dst):
                return (EndReason.DELIVERED, None, False)
            if popped_here and (
                self.control.resolve(router, packet.dst).kind
                is RouteKind.ATTACHED
            ):
                # UHP disposition straight onto a connected subnet
                # stays in the MPLS path: no IP decrement (this is the
                # mechanic that keeps Fig. 4d's egress invisible).
                return None
            status = packet.dec_ip()
            if status is not None:
                if status < 0:
                    return (EndReason.IP_EXPIRED, None, False)
                builder.expiry(status, EndReason.IP_EXPIRED, None, False)
        return None

    def _is_last_hop(self, router: Router, packet) -> bool:
        """Is ``router`` the popping hop (LH) of the packet's LSP?"""
        tunnel = packet.te_tunnel
        if tunnel is not None:
            return (
                tunnel.is_penultimate(router.name)
                and tunnel.popping is PoppingMode.PHP
            )
        if packet.fec is None:
            return False
        route = self._fec_route(router, packet.fec)
        if route is None or not route.next_hops:
            return False
        next_router = flow_choice(
            route.next_hops, router.name, packet.flow_id
        )
        return (
            self.control.is_fec_egress(next_router, packet.fec)
            and next_router.mpls.popping is PoppingMode.PHP
        )

    def _fec_route(self, router: Router, fec: Prefix) -> Optional[Route]:
        """Route toward the FEC prefix (the LSP follows the IGP)."""
        route = self.control.resolve_prefix(router, fec)
        if route.kind in (RouteKind.UNREACHABLE, RouteKind.LOCAL):
            return None
        return route

    def _bind(self, packet, router_name: str, fec) -> object:
        """A label for ``(router, fec)``: allocated now for concrete
        packets, deferred to a :class:`BindingRef` for symbolic ones."""
        record = getattr(packet, "record_binding", None)
        if record is not None:
            return record(router_name, fec)
        return self.labels.binding(router_name, fec)

    def _forwarding_step(
        self, current: Router, packet, originating: bool
    ) -> Optional[Router]:
        """Decide the next hop; mutates the packet (push/pop/swap)."""
        if packet.labeled:
            return self._mpls_step(current, packet)
        return self._ip_step(current, packet, originating)

    def _mpls_step(self, current: Router, packet) -> Optional[Router]:
        if packet.te_tunnel is not None:
            return self._te_step(current, packet)
        fec = packet.fec
        if fec is None:
            return None
        route = self._fec_route(current, fec)
        if route is None:
            return None
        if route.kind is RouteKind.ATTACHED or not route.next_hops:
            # Shouldn't normally happen (pop precedes), but be safe:
            # fall back to IP forwarding of the inner packet.
            packet.pop()
            return self._ip_step(current, packet, originating=True)
        next_router = flow_choice(
            route.next_hops, current.name, packet.flow_id
        )
        if self.control.is_fec_egress(next_router, fec):
            if next_router.mpls.popping is PoppingMode.PHP:
                popped = packet.pop()
                if current.mpls.min_ttl_on_pop:
                    packet.apply_min(popped)
            else:
                packet.top.label = EXPLICIT_NULL
        else:
            packet.top.label = self._bind(packet, next_router.name, fec)
        return next_router

    def _te_step(self, current: Router, packet) -> Optional[Router]:
        """Forward along an RSVP-TE tunnel's explicit path."""
        tunnel = packet.te_tunnel
        next_name = tunnel.next_hop(current.name)
        if next_name is None:
            # Off-path (should not happen): drop the label, go IP.
            packet.pop()
            return self._ip_step(current, packet, originating=True)
        next_router = self.network.router(next_name)
        if next_name == tunnel.tail:
            if tunnel.popping is PoppingMode.PHP:
                popped = packet.pop()
                if current.mpls.min_ttl_on_pop:
                    packet.apply_min(popped)
            else:
                packet.top.label = EXPLICIT_NULL
        else:
            packet.top.label = self._bind(
                packet, next_name, ("te", tunnel.name)
            )
        return next_router

    def _ip_step(
        self, current: Router, packet, originating: bool
    ) -> Optional[Router]:
        route = self.control.resolve(current, packet.dst)
        if route.kind in (RouteKind.LOCAL, RouteKind.UNREACHABLE):
            return None
        if route.kind is RouteKind.ATTACHED:
            owner = self.network.owner_of(packet.dst)
            if owner is None or owner is current:
                return None
            if current.interface_toward(owner) is None:
                return None
            return owner
        tunnel = self._te_entry(current, packet, route)
        if tunnel is not None:
            return tunnel
        next_router = flow_choice(
            route.next_hops, current.name, packet.flow_id
        )
        if (
            route.fec is not None
            and current.mpls.enabled
            and not packet.labeled
        ):
            is_egress_next = self.control.is_fec_egress(
                next_router, route.fec
            )
            fec_tail = self._fec_tail(route)
            if is_egress_next and (
                fec_tail is None
                or fec_tail.mpls.popping is PoppingMode.PHP
            ):
                # Next hop advertised implicit null: nothing to push.
                pass
            else:
                label = self._bind(packet, next_router.name, route.fec)
                packet.push_label(
                    label, route.fec, current.mpls.ttl_propagate
                )
        return next_router

    def _te_entry(
        self, current: Router, packet, route: Route
    ) -> Optional[Router]:
        """Steer the packet onto an installed TE tunnel, if one applies.

        RSVP-TE takes precedence over LDP for *transit* traffic —
        packets whose BGP next hop is the tunnel's tail (the common
        LDP+RSVP-TE co-deployment).  Internal-prefix traffic keeps
        following the IGP/LDP, which is exactly why DPR/BRPR reveal
        LDP paths but never RSVP-TE ones (Sec. 3.4).  Returns the
        first explicit hop, or None when no tunnel matched.
        """
        if (
            packet.labeled
            or not current.mpls.enabled
            or route.kind is not RouteKind.EXTERNAL
            or route.egress is None
            or route.egress is current
        ):
            return None
        tunnel = self.control.te.tunnel_from(
            current.name, route.egress.name
        )
        if tunnel is None:
            return None
        next_router = self.network.router(tunnel.path[1])
        if (
            tunnel.popping is PoppingMode.PHP
            and len(tunnel.path) == 2
        ):
            # One-hop tunnel with implicit null: nothing to push.
            return next_router
        label = self._bind(packet, tunnel.path[1], ("te", tunnel.name))
        tail_router = self.network.router(tunnel.tail)
        packet.push_label(
            label,
            Prefix(tail_router.loopback, 32),
            tunnel.ttl_propagate,
        )
        packet.te_tunnel = tunnel
        return next_router

    def _fec_tail(self, route: Route) -> Optional[Router]:
        """The LSP tail router of an about-to-be-pushed FEC."""
        if route.fec is None:
            return None
        if route.egress is not None and self.control.is_fec_egress(
            route.egress, route.fec
        ):
            return route.egress
        tails = self.control.attached_routers(route.fec)
        return tails[0] if tails else None
