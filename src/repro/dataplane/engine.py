"""Per-hop packet forwarding engine.

This is the simulator's dataplane: it walks a packet hop by hop through
the network, applying the exact TTL/MPLS mechanics the paper's
techniques exploit.  The rules (derived from, and validated against,
the per-hop return TTLs printed in Fig. 4 of the paper) are:

1.  Plain IP forwarding decrements the IP-TTL at every arrival; expiry
    triggers a ``time-exceeded`` (TE) with the vendor's initial TTL.
2.  An ingress LER does its IP lookup (decrement) first, then pushes;
    the LSE-TTL is the (decremented) IP-TTL under ``ttl-propagate``,
    255 otherwise.
3.  Every LSR — including the penultimate (last hop, LH) — decrements
    the LSE-TTL on arrival.  LSE expiry triggers a TE quoting the label
    stack (RFC 4950); unless it happened at the LH, the TE is first
    carried to the end of the LSP before being routed back.
4.  A PHP pop (at the LH) applies ``IP-TTL = min(IP-TTL, LSE-TTL)``
    (when the LH is configured for it) and forwards *without* an IP
    decrement; the egress then does a normal IP lookup.
5.  A UHP pop (explicit null, at the egress) does *not* apply the min;
    the egress then IP-forwards with a normal decrement — except when
    the destination sits on a directly-connected subnet, where the
    disposition stays in the MPLS path and consumes no IP-TTL (this is
    what keeps Fig. 4d's egress invisible).
6.  Routers never decrement locally-originated packets.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from repro.dataplane.packet import (
    DEST_UNREACHABLE,
    ECHO_REPLY,
    ECHO_REQUEST,
    TIME_EXCEEDED,
    UDP_PROBE,
    Packet,
)
from repro.mpls.config import PoppingMode
from repro.mpls.labels import EXPLICIT_NULL, LabelAllocator, LabelStackEntry
from repro.net.addressing import Prefix
from repro.net.router import Router
from repro.net.topology import Network
from repro.routing.control import ControlPlane, Route, RouteKind, flow_choice

__all__ = ["EndReason", "TransitEnd", "ProbeOutcome", "ForwardingEngine"]


class EndReason(Enum):
    """Why a packet stopped travelling."""

    DELIVERED = "delivered"  #: reached a router owning the destination
    IP_EXPIRED = "ip-expired"  #: IP-TTL hit zero
    LSE_EXPIRED = "lse-expired"  #: LSE-TTL hit zero inside a tunnel
    NO_ROUTE = "no-route"  #: lookup failed somewhere
    LOOP = "loop"  #: hop-count guard tripped


@dataclass
class TransitEnd:
    """Terminal state of one packet's journey."""

    reason: EndReason
    router: Optional[Router]  #: where the journey ended
    prev_router: Optional[Router]  #: upstream hop (incoming interface)
    packet: Packet  #: final packet state (TTLs as at the end)
    path: List[Router]  #: every router traversed, origin first
    delay_ms: float  #: accumulated one-way link delay
    #: FEC of the LSP in which an LSE expiry occurred (None otherwise).
    expired_fec: Optional[Prefix] = None
    #: True when the LSE expired at the LSP's penultimate hop (the
    #: popping router) — such TEs are routed back directly.
    expired_at_lh: bool = False


@dataclass
class ProbeOutcome:
    """What a vantage point observes for one probe.

    ``reply_kind`` is None when no reply came back (silent drop, ICMP
    disabled, or the reply itself died in transit).
    """

    probe_ttl: int
    reply_kind: Optional[str] = None
    responder: Optional[int] = None  #: reply source address
    responder_router: Optional[str] = None  #: ground truth
    reply_ttl: Optional[int] = None  #: reply IP-TTL observed at the VP
    quoted_labels: List[Tuple[int, int]] = field(default_factory=list)
    rtt_ms: float = 0.0
    forward_path: List[str] = field(default_factory=list)  #: ground truth
    return_path: List[str] = field(default_factory=list)  #: ground truth

    @property
    def responded(self) -> bool:
        """True when any reply reached the vantage point."""
        return self.reply_kind is not None


class ForwardingEngine:
    """Simulates packet journeys over a network + control plane."""

    def __init__(
        self,
        network: Network,
        control: Optional[ControlPlane] = None,
        max_hops: int = 255,
    ) -> None:
        self.network = network
        self.control = control or ControlPlane(network)
        self.max_hops = max_hops
        self.labels = LabelAllocator()
        #: Count of packets fully simulated (probes + replies).
        self.packets_simulated = 0

    # ------------------------------------------------------------------
    # Public API

    def send_probe(
        self,
        source: Router,
        dst: int,
        ttl: int,
        flow_id: int = 0,
        kind: str = ECHO_REQUEST,
    ) -> ProbeOutcome:
        """Emit one probe from ``source`` and report what comes back."""
        probe = Packet(
            src=source.loopback, dst=dst, ip_ttl=ttl, kind=kind,
            flow_id=flow_id,
        )
        end = self._simulate(probe, source)
        outcome = ProbeOutcome(
            probe_ttl=ttl,
            forward_path=[router.name for router in end.path],
        )
        reply, origin = self._build_reply(end, source)
        if reply is None or origin is None:
            return outcome
        reply_end = self._simulate(reply, origin)
        outcome.rtt_ms = end.delay_ms + reply_end.delay_ms
        outcome.return_path = [router.name for router in reply_end.path]
        if (
            reply_end.reason is EndReason.DELIVERED
            and reply_end.router is source
        ):
            outcome.reply_kind = reply.kind
            outcome.responder = reply.src
            origin_router = self.network.owner_of(reply.src)
            outcome.responder_router = (
                origin_router.name if origin_router else None
            )
            outcome.reply_ttl = reply_end.packet.ip_ttl
            outcome.quoted_labels = list(reply.quoted_labels)
        return outcome

    # ------------------------------------------------------------------
    # Reply construction

    def _build_reply(
        self, end: TransitEnd, source: Router
    ) -> Tuple[Optional[Packet], Optional[Router]]:
        """Create the ICMP reply for a finished probe, if any."""
        router = end.router
        probe = end.packet
        if router is None:
            return None, None
        if not self._responds(router, probe):
            return None, None
        if end.reason is EndReason.DELIVERED:
            if probe.kind == UDP_PROBE:
                # Port unreachable, sourced from the *outgoing*
                # interface toward the prober — the Mercator alias
                # resolution signal.
                reply = Packet(
                    src=self._outgoing_address(router, probe.src),
                    dst=probe.src,
                    ip_ttl=router.initial_ttl(TIME_EXCEEDED),
                    kind=DEST_UNREACHABLE,
                    flow_id=probe.flow_id,
                    probe_ttl=probe.ip_ttl,
                )
                return reply, router
            if probe.kind != ECHO_REQUEST:
                return None, None
            reply = Packet(
                src=probe.dst,
                dst=probe.src,
                ip_ttl=router.initial_ttl(ECHO_REPLY),
                kind=ECHO_REPLY,
                flow_id=probe.flow_id,
                probe_ttl=probe.ip_ttl,
            )
            return reply, router
        if end.reason in (EndReason.IP_EXPIRED, EndReason.LSE_EXPIRED):
            reply_src = self._reply_source(router, end.prev_router)
            if reply_src is None:
                return None, None
            reply = Packet(
                src=reply_src,
                dst=probe.src,
                ip_ttl=router.initial_ttl(TIME_EXCEEDED),
                kind=TIME_EXCEEDED,
                flow_id=probe.flow_id,
                probe_ttl=0,
            )
            if end.reason is EndReason.LSE_EXPIRED:
                if router.mpls.rfc4950 and router.vendor.rfc4950:
                    # Quote the stack as *received*: the top entry was
                    # decremented to 0 on arrival, so it reads TTL=1.
                    top = probe.stack[-1]
                    reply.quoted_labels = [
                        (entry.label, entry.ttl + 1)
                        if entry is top
                        else entry.as_tuple()
                        for entry in probe.stack
                    ]
                if (
                    not end.expired_at_lh
                    and end.expired_fec is not None
                    and not self.control.is_fec_egress(
                        router, end.expired_fec
                    )
                ):
                    # TE generated mid-LSP: carried to the LSP end first,
                    # inside a fresh LSE with TTL 255.  (An expiry at the
                    # egress itself — UHP arrival — replies directly.)
                    label = self.labels.binding(
                        router.name, end.expired_fec
                    )
                    reply.push(
                        LabelStackEntry(label=label, ttl=255),
                        end.expired_fec,
                    )
            return reply, router
        return None, None

    def _outgoing_address(self, router: Router, toward: int) -> int:
        """Address of the interface ``router`` uses to reach ``toward``."""
        route = self.control.resolve(router, toward)
        next_router: Optional[Router] = None
        if route.kind is RouteKind.ATTACHED:
            next_router = self.network.owner_of(toward)
        elif route.next_hops:
            next_router = flow_choice(route.next_hops, router.name, 0)
        if next_router is not None:
            interface = router.interface_toward(next_router)
            if interface is not None:
                return interface.address
        return router.loopback

    @staticmethod
    def _responds(router: Router, probe: Packet) -> bool:
        """ICMP policy: silence and deterministic rate limiting.

        Rate limiting is sampled per probe from a stable hash of the
        probe identity, so repeated campaigns stay reproducible while
        individual probes are dropped at the configured rate.
        """
        if not router.icmp_enabled:
            return False
        rate = router.icmp_response_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        digest = zlib.crc32(
            f"{router.name}|{probe.flow_id}|{probe.ip_ttl}|"
            f"{probe.dst}".encode("ascii")
        )
        return (digest / 0xFFFFFFFF) < rate

    def _reply_source(
        self, router: Router, prev: Optional[Router]
    ) -> Optional[int]:
        """ICMP source address: the incoming interface of ``router``."""
        if prev is not None:
            address = router.incoming_address_from(prev)
            if address is not None:
                return address
        return router.loopback

    # ------------------------------------------------------------------
    # The per-hop walk

    def _simulate(self, packet: Packet, origin: Router) -> TransitEnd:
        """Walk ``packet`` from ``origin`` until a terminal state."""
        self.packets_simulated += 1
        current = origin
        prev: Optional[Router] = None
        path = [origin]
        delay = 0.0
        originating = True
        for _ in range(self.max_hops):
            if not originating:
                arrival = self._process_arrival(current, prev, packet)
                if arrival is not None:
                    return TransitEnd(
                        reason=arrival[0],
                        router=current,
                        prev_router=prev,
                        packet=packet,
                        path=path,
                        delay_ms=delay,
                        expired_fec=arrival[1],
                        expired_at_lh=arrival[2],
                    )
            step = self._forwarding_step(current, packet, originating)
            if step is None:
                return TransitEnd(
                    reason=EndReason.NO_ROUTE,
                    router=current,
                    prev_router=prev,
                    packet=packet,
                    path=path,
                    delay_ms=delay,
                )
            next_router = step
            link = current.interface_toward(next_router)
            assert link is not None, (
                f"no link {current.name} -> {next_router.name}"
            )
            delay += link.link.delay_ms
            prev = current
            current = next_router
            path.append(current)
            originating = False
        return TransitEnd(
            reason=EndReason.LOOP,
            router=current,
            prev_router=prev,
            packet=packet,
            path=path,
            delay_ms=delay,
        )

    def _process_arrival(
        self, router: Router, prev: Optional[Router], packet: Packet
    ) -> Optional[Tuple[EndReason, Optional[Prefix], bool]]:
        """TTL bookkeeping on packet arrival; non-None ends the walk."""
        popped_here = False
        if packet.labeled:
            packet.top.ttl -= 1
            if packet.top.ttl <= 0:
                fec = packet.fec
                at_lh = self._is_last_hop(router, packet)
                return (EndReason.LSE_EXPIRED, fec, at_lh)
            tunnel = packet.te_tunnel
            if tunnel is not None and router.name == tunnel.tail:
                # RSVP-TE tail under UHP: pop the explicit-null label.
                packet.pop()
                popped_here = True
            elif packet.fec is not None and self.control.is_fec_egress(
                router, packet.fec
            ):
                # UHP arrival (explicit null) — pop without the min
                # rule; IP processing continues below.
                packet.pop()
                popped_here = True
        if not packet.labeled:
            if router.owns(packet.dst):
                return (EndReason.DELIVERED, None, False)
            if popped_here and (
                self.control.resolve(router, packet.dst).kind
                is RouteKind.ATTACHED
            ):
                # UHP disposition straight onto a connected subnet
                # stays in the MPLS path: no IP decrement (this is the
                # mechanic that keeps Fig. 4d's egress invisible).
                return None
            packet.ip_ttl -= 1
            if packet.ip_ttl <= 0:
                return (EndReason.IP_EXPIRED, None, False)
        return None

    def _is_last_hop(self, router: Router, packet: Packet) -> bool:
        """Is ``router`` the popping hop (LH) of the packet's LSP?"""
        tunnel = packet.te_tunnel
        if tunnel is not None:
            return (
                tunnel.is_penultimate(router.name)
                and tunnel.popping is PoppingMode.PHP
            )
        if packet.fec is None:
            return False
        route = self._fec_route(router, packet.fec)
        if route is None or not route.next_hops:
            return False
        next_router = flow_choice(
            route.next_hops, router.name, packet.flow_id
        )
        return (
            self.control.is_fec_egress(next_router, packet.fec)
            and next_router.mpls.popping is PoppingMode.PHP
        )

    def _fec_route(self, router: Router, fec: Prefix) -> Optional[Route]:
        """Route toward the FEC prefix (the LSP follows the IGP)."""
        route = self.control.resolve_prefix(router, fec)
        if route.kind in (RouteKind.UNREACHABLE, RouteKind.LOCAL):
            return None
        return route

    def _forwarding_step(
        self, current: Router, packet: Packet, originating: bool
    ) -> Optional[Router]:
        """Decide the next hop; mutates the packet (push/pop/swap)."""
        if packet.labeled:
            return self._mpls_step(current, packet)
        return self._ip_step(current, packet, originating)

    def _mpls_step(self, current: Router, packet: Packet) -> Optional[Router]:
        if packet.te_tunnel is not None:
            return self._te_step(current, packet)
        fec = packet.fec
        if fec is None:
            return None
        route = self._fec_route(current, fec)
        if route is None:
            return None
        if route.kind is RouteKind.ATTACHED or not route.next_hops:
            # Shouldn't normally happen (pop precedes), but be safe:
            # fall back to IP forwarding of the inner packet.
            packet.pop()
            return self._ip_step(current, packet, originating=True)
        next_router = flow_choice(
            route.next_hops, current.name, packet.flow_id
        )
        if self.control.is_fec_egress(next_router, fec):
            if next_router.mpls.popping is PoppingMode.PHP:
                popped = packet.pop()
                if current.mpls.min_ttl_on_pop:
                    packet.ip_ttl = min(packet.ip_ttl, popped.ttl)
            else:
                packet.top.label = EXPLICIT_NULL
        else:
            packet.top.label = self.labels.binding(next_router.name, fec)
        return next_router

    def _te_step(self, current: Router, packet: Packet) -> Optional[Router]:
        """Forward along an RSVP-TE tunnel's explicit path."""
        tunnel = packet.te_tunnel
        next_name = tunnel.next_hop(current.name)
        if next_name is None:
            # Off-path (should not happen): drop the label, go IP.
            packet.pop()
            return self._ip_step(current, packet, originating=True)
        next_router = self.network.router(next_name)
        if next_name == tunnel.tail:
            if tunnel.popping is PoppingMode.PHP:
                popped = packet.pop()
                if current.mpls.min_ttl_on_pop:
                    packet.ip_ttl = min(packet.ip_ttl, popped.ttl)
            else:
                packet.top.label = EXPLICIT_NULL
        else:
            packet.top.label = self.labels.binding(
                next_name, ("te", tunnel.name)
            )
        return next_router

    def _ip_step(
        self, current: Router, packet: Packet, originating: bool
    ) -> Optional[Router]:
        route = self.control.resolve(current, packet.dst)
        if route.kind in (RouteKind.LOCAL, RouteKind.UNREACHABLE):
            return None
        if route.kind is RouteKind.ATTACHED:
            owner = self.network.owner_of(packet.dst)
            if owner is None or owner is current:
                return None
            if current.interface_toward(owner) is None:
                return None
            return owner
        tunnel = self._te_entry(current, packet, route)
        if tunnel is not None:
            return tunnel
        next_router = flow_choice(
            route.next_hops, current.name, packet.flow_id
        )
        if (
            route.fec is not None
            and current.mpls.enabled
            and not packet.labeled
        ):
            is_egress_next = self.control.is_fec_egress(
                next_router, route.fec
            )
            fec_tail = self._fec_tail(route)
            if is_egress_next and (
                fec_tail is None
                or fec_tail.mpls.popping is PoppingMode.PHP
            ):
                # Next hop advertised implicit null: nothing to push.
                pass
            else:
                lse_ttl = (
                    packet.ip_ttl if current.mpls.ttl_propagate else 255
                )
                label = self.labels.binding(next_router.name, route.fec)
                packet.push(
                    LabelStackEntry(label=label, ttl=lse_ttl), route.fec
                )
        return next_router

    def _te_entry(
        self, current: Router, packet: Packet, route: Route
    ) -> Optional[Router]:
        """Steer the packet onto an installed TE tunnel, if one applies.

        RSVP-TE takes precedence over LDP for *transit* traffic —
        packets whose BGP next hop is the tunnel's tail (the common
        LDP+RSVP-TE co-deployment).  Internal-prefix traffic keeps
        following the IGP/LDP, which is exactly why DPR/BRPR reveal
        LDP paths but never RSVP-TE ones (Sec. 3.4).  Returns the
        first explicit hop, or None when no tunnel matched.
        """
        if (
            packet.labeled
            or not current.mpls.enabled
            or route.kind is not RouteKind.EXTERNAL
            or route.egress is None
            or route.egress is current
        ):
            return None
        tunnel = self.control.te.tunnel_from(
            current.name, route.egress.name
        )
        if tunnel is None:
            return None
        next_router = self.network.router(tunnel.path[1])
        if (
            tunnel.popping is PoppingMode.PHP
            and len(tunnel.path) == 2
        ):
            # One-hop tunnel with implicit null: nothing to push.
            return next_router
        lse_ttl = packet.ip_ttl if tunnel.ttl_propagate else 255
        label = self.labels.binding(
            tunnel.path[1], ("te", tunnel.name)
        )
        tail_router = self.network.router(tunnel.tail)
        packet.push(
            LabelStackEntry(label=label, ttl=lse_ttl),
            Prefix(tail_router.loopback, 32),
        )
        packet.te_tunnel = tunnel
        return next_router

    def _fec_tail(self, route: Route) -> Optional[Router]:
        """The LSP tail router of an about-to-be-pushed FEC."""
        if route.fec is None:
            return None
        if route.egress is not None and self.control.is_fec_egress(
            route.egress, route.fec
        ):
            return route.egress
        tails = self.control.attached_routers(route.fec)
        return tails[0] if tails else None
