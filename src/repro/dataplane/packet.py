"""Packet model for the forwarding simulator.

One :class:`Packet` models an IP datagram with an optional MPLS label
stack.  ICMP payloads are collapsed into the packet ``kind`` plus the
RFC 4950 extension fields (quoted label stack) — the simulator never
needs full byte-level ICMP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.mpls.labels import LabelStackEntry
from repro.net.addressing import Prefix, format_address

__all__ = [
    "ECHO_REQUEST",
    "ECHO_REPLY",
    "TIME_EXCEEDED",
    "Packet",
]

ECHO_REQUEST = "echo-request"
ECHO_REPLY = "echo-reply"
TIME_EXCEEDED = "time-exceeded"
#: UDP datagram to an unused high port (Mercator-style alias probing).
UDP_PROBE = "udp-probe"
#: ICMP destination-unreachable (port unreachable) answering it.
DEST_UNREACHABLE = "dest-unreachable"

_KINDS = (
    ECHO_REQUEST, ECHO_REPLY, TIME_EXCEEDED, UDP_PROBE, DEST_UNREACHABLE,
)


@dataclass
class Packet:
    """A simulated IP packet, possibly MPLS-encapsulated.

    Attributes:
        src: source IPv4 address (int).
        dst: destination IPv4 address (int).
        ip_ttl: current IP-TTL.
        kind: one of the ICMP kinds above.
        flow_id: Paris-traceroute flow identifier — kept constant per
            trace so ECMP decisions are stable.
        stack: MPLS label stack, top entry last.  Empty when unlabeled.
        fec: the FEC prefix of the top label (simulator shortcut: real
            LSRs derive it from the label; we carry it along).
        quoted_labels: RFC 4950 extension of a time-exceeded message —
            the ``(label, ttl)`` pairs of the expired packet.
        probe_ttl: for replies: the original probe's TTL (echoed in the
            quoted IP header; used by measurement code for bookkeeping).
        te_tunnel: when riding an RSVP-TE explicit-route LSP, the
            :class:`~repro.mpls.rsvp.TeTunnel` steering it (simulator
            shortcut, like ``fec``).
    """

    src: int
    dst: int
    ip_ttl: int
    kind: str
    flow_id: int = 0
    stack: List[LabelStackEntry] = field(default_factory=list)
    fec: Optional[Prefix] = None
    quoted_labels: List[Tuple[int, int]] = field(default_factory=list)
    probe_ttl: Optional[int] = None
    te_tunnel: Optional[object] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown packet kind {self.kind!r}")
        if not 0 <= self.ip_ttl <= 255:
            raise ValueError(f"IP-TTL out of range: {self.ip_ttl}")

    @property
    def labeled(self) -> bool:
        """True when an MPLS label stack is present."""
        return bool(self.stack)

    @property
    def top(self) -> LabelStackEntry:
        """Top label stack entry (IndexError when unlabeled)."""
        return self.stack[-1]

    def push(self, entry: LabelStackEntry, fec: Prefix) -> None:
        """Push ``entry`` for ``fec`` onto the stack."""
        entry.bottom = not self.stack
        self.stack.append(entry)
        self.fec = fec

    def pop(self) -> LabelStackEntry:
        """Pop the top entry; clears ``fec``/``te_tunnel`` when empty."""
        entry = self.stack.pop()
        if not self.stack:
            self.fec = None
            self.te_tunnel = None
        return entry

    # ------------------------------------------------------------------
    # Dataplane primitives shared with the symbolic trajectory walk
    # (see repro.dataplane.trajectory.SymbolicPacket for the other
    # implementation of this protocol).

    def push_label(self, label: int, fec: Prefix, propagate: bool) -> None:
        """Push a fresh LSE for ``fec``; TTL copies IP under propagate."""
        ttl = self.ip_ttl if propagate else 255
        self.push(LabelStackEntry(label=label, ttl=ttl), fec)

    def apply_min(self, popped: LabelStackEntry) -> None:
        """PHP min rule: ``IP-TTL = min(IP-TTL, popped LSE-TTL)``."""
        self.ip_ttl = min(self.ip_ttl, popped.ttl)

    def dec_ip(self) -> Optional[int]:
        """Decrement the IP-TTL; ``-1`` signals expiry, None otherwise."""
        self.ip_ttl -= 1
        return -1 if self.ip_ttl <= 0 else None

    def dec_lse(self) -> Optional[int]:
        """Decrement the top LSE-TTL; ``-1`` on expiry, None otherwise."""
        entry = self.stack[-1]
        entry.ttl -= 1
        return -1 if entry.ttl <= 0 else None

    def __repr__(self) -> str:
        label = f", label={self.top.label}" if self.stack else ""
        return (
            f"Packet({self.kind} {format_address(self.src)}->"
            f"{format_address(self.dst)} ttl={self.ip_ttl}{label})"
        )
