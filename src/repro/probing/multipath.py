"""ECMP multipath enumeration (MDA-style flow sweeping).

Load balancing is the main noise source for the paper's techniques:
footnote 11 (DPR may rediscover a parallel equal-cost path), Fig. 9a's
negative-gap mass, and RTLA's per-VP pairing all trace back to ECMP.
This module enumerates the equal-cost paths between a vantage point
and a destination by sweeping Paris flow identifiers, in the spirit of
the Multipath Detection Algorithm — enough to quantify path diversity
in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.net.router import Router
from repro.probing.prober import Prober

__all__ = ["MultipathResult", "enumerate_paths", "path_diversity"]


@dataclass
class MultipathResult:
    """Equal-cost paths discovered between one (source, destination)."""

    source: str
    dst: int
    #: Distinct responding-address sequences, one per discovered path.
    paths: List[Tuple[int, ...]] = field(default_factory=list)
    #: Flow identifiers that produced each path (parallel list).
    flows: List[List[int]] = field(default_factory=list)
    probes_used: int = 0

    @property
    def path_count(self) -> int:
        """Number of distinct paths observed."""
        return len(self.paths)

    @property
    def divergence_points(self) -> Set[int]:
        """Addresses after which at least two paths part ways.

        Paths diverging at their very first hop have no common prefix
        and contribute nothing.
        """
        points: Set[int] = set()
        for i, first in enumerate(self.paths):
            for second in self.paths[i + 1 :]:
                common = 0
                limit = min(len(first), len(second))
                while common < limit and first[common] == second[common]:
                    common += 1
                if common == limit:
                    continue  # one path is a prefix of the other
                if common > 0:
                    points.add(first[common - 1])
        return points


def enumerate_paths(
    prober: Prober,
    source: Router,
    dst: int,
    flows: int = 16,
    start_ttl: int = 1,
) -> MultipathResult:
    """Sweep ``flows`` Paris flow identifiers and collect the paths.

    Only complete traces (destination reached, no stars) are counted —
    a star would make two identical paths look distinct.
    """
    if flows < 1:
        raise ValueError("need at least one flow")
    result = MultipathResult(source=source.name, dst=dst)
    seen: Dict[Tuple[int, ...], int] = {}
    before = prober.probes_sent
    for flow_id in range(1, flows + 1):
        trace = prober.traceroute(
            source, dst, flow_id=flow_id, start_ttl=start_ttl
        )
        if not trace.destination_reached:
            continue
        if any(not hop.responded for hop in trace.hops):
            continue
        path = tuple(trace.addresses)
        index = seen.get(path)
        if index is None:
            seen[path] = len(result.paths)
            result.paths.append(path)
            result.flows.append([flow_id])
        else:
            result.flows[index].append(flow_id)
    result.probes_used = prober.probes_sent - before
    return result


def path_diversity(
    prober: Prober,
    source: Router,
    destinations: Sequence[int],
    flows: int = 8,
    start_ttl: int = 1,
) -> Dict[int, int]:
    """Distinct-path count per destination (ECMP diversity survey)."""
    return {
        dst: enumerate_paths(
            prober, source, dst, flows=flows, start_ttl=start_ttl
        ).path_count
        for dst in destinations
    }
