"""Trace dataset serialization.

The paper's dataset is "freely available" as warts/text dumps; this
module provides the equivalent for simulated campaigns: a stable JSON
schema for traces, pings, and revelations, with round-trip loaders.
Ground-truth-only fields (``responder_router``) are preserved so saved
datasets remain scoreable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.core.revelation import Revelation, RevelationMethod
from repro.probing.prober import PingResult, Trace, TraceHop

__all__ = [
    "SCHEMA_VERSION",
    "traces_to_dicts",
    "traces_from_dicts",
    "pings_to_dicts",
    "pings_from_dicts",
    "revelations_to_dicts",
    "revelations_from_dicts",
    "save_dataset",
    "load_dataset",
]

#: Bumped on any incompatible schema change.
SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Traces


def _hop_to_dict(hop: TraceHop) -> Dict:
    return {
        "probe_ttl": hop.probe_ttl,
        "address": hop.address,
        "reply_kind": hop.reply_kind,
        "reply_ttl": hop.reply_ttl,
        "quoted_labels": [list(pair) for pair in hop.quoted_labels],
        "rtt_ms": hop.rtt_ms,
        "responder_router": hop.responder_router,
    }


def _hop_from_dict(data: Dict) -> TraceHop:
    return TraceHop(
        probe_ttl=data["probe_ttl"],
        address=data["address"],
        reply_kind=data.get("reply_kind"),
        reply_ttl=data.get("reply_ttl"),
        quoted_labels=[
            tuple(pair) for pair in data.get("quoted_labels", [])
        ],
        rtt_ms=data.get("rtt_ms", 0.0),
        responder_router=data.get("responder_router"),
    )


def traces_to_dicts(traces: Iterable[Trace]) -> List[Dict]:
    """Serialize traces to JSON-ready dicts."""
    return [
        {
            "source": trace.source,
            "source_address": trace.source_address,
            "dst": trace.dst,
            "flow_id": trace.flow_id,
            "destination_reached": trace.destination_reached,
            "hops": [_hop_to_dict(hop) for hop in trace.hops],
        }
        for trace in traces
    ]


def traces_from_dicts(data: Iterable[Dict]) -> List[Trace]:
    """Rebuild traces from their serialized form."""
    traces = []
    for item in data:
        trace = Trace(
            source=item["source"],
            source_address=item["source_address"],
            dst=item["dst"],
            flow_id=item["flow_id"],
            destination_reached=item["destination_reached"],
        )
        trace.hops = [_hop_from_dict(hop) for hop in item["hops"]]
        traces.append(trace)
    return traces


# ---------------------------------------------------------------------------
# Pings


def pings_to_dicts(pings: Dict[int, PingResult]) -> List[Dict]:
    """Serialize a ping map (address -> result)."""
    return [
        {
            "dst": result.dst,
            "responded": result.responded,
            "reply_kind": result.reply_kind,
            "reply_ttl": result.reply_ttl,
            "rtt_ms": result.rtt_ms,
            "source": result.source,
        }
        for _, result in sorted(pings.items())
    ]


def pings_from_dicts(data: Iterable[Dict]) -> Dict[int, PingResult]:
    """Rebuild the ping map."""
    pings: Dict[int, PingResult] = {}
    for item in data:
        pings[item["dst"]] = PingResult(
            dst=item["dst"],
            responded=item["responded"],
            reply_kind=item.get("reply_kind"),
            reply_ttl=item.get("reply_ttl"),
            rtt_ms=item.get("rtt_ms", 0.0),
            source=item.get("source"),
        )
    return pings


# ---------------------------------------------------------------------------
# Revelations


def revelations_to_dicts(
    revelations: Dict[Tuple[int, int], Revelation],
) -> List[Dict]:
    """Serialize the revelation map ((ingress, egress) -> result)."""
    return [
        {
            "ingress": revelation.ingress,
            "egress": revelation.egress,
            "revealed": list(revelation.revealed),
            "method": revelation.method.value,
            "traces_used": revelation.traces_used,
            "probes_used": revelation.probes_used,
            "step_reveals": list(revelation.step_reveals),
            "labels_seen": revelation.labels_seen,
            "complete": revelation.complete,
            "technique": revelation.technique,
        }
        for _, revelation in sorted(revelations.items())
    ]


def revelations_from_dicts(
    data: Iterable[Dict],
) -> Dict[Tuple[int, int], Revelation]:
    """Rebuild the revelation map."""
    revelations: Dict[Tuple[int, int], Revelation] = {}
    for item in data:
        revelation = Revelation(
            ingress=item["ingress"],
            egress=item["egress"],
            revealed=list(item["revealed"]),
            method=RevelationMethod(item["method"]),
            traces_used=item["traces_used"],
            probes_used=item["probes_used"],
            step_reveals=list(item["step_reveals"]),
            labels_seen=item["labels_seen"],
            complete=item.get("complete", True),
            technique=item.get("technique", "combined"),
        )
        revelations[(revelation.ingress, revelation.egress)] = revelation
    return revelations


# ---------------------------------------------------------------------------
# Whole datasets


def save_dataset(
    path: Union[str, Path],
    traces: Iterable[Trace],
    pings: Optional[Dict[int, PingResult]] = None,
    revelations: Optional[Dict[Tuple[int, int], Revelation]] = None,
    metadata: Optional[Dict] = None,
) -> None:
    """Write a campaign dataset as one JSON document."""
    document = {
        "schema_version": SCHEMA_VERSION,
        "metadata": dict(metadata or {}),
        "traces": traces_to_dicts(traces),
        "pings": pings_to_dicts(pings or {}),
        "revelations": revelations_to_dicts(revelations or {}),
    }
    Path(path).write_text(json.dumps(document, indent=1))


def load_dataset(path: Union[str, Path]) -> Dict:
    """Load a dataset saved by :func:`save_dataset`.

    Returns a dict with ``traces``, ``pings``, ``revelations`` and
    ``metadata`` keys, fully deserialized.  Raises ``ValueError`` on a
    schema mismatch.
    """
    document = json.loads(Path(path).read_text())
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported dataset schema {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return {
        "metadata": document.get("metadata", {}),
        "traces": traces_from_dicts(document.get("traces", [])),
        "pings": pings_from_dicts(document.get("pings", [])),
        "revelations": revelations_from_dicts(
            document.get("revelations", [])
        ),
    }
