"""Scamper-like prober: traceroute and ping composition.

The prober mirrors the measurement setup of Sec. 4: Paris traceroute
with ICMP ``echo-request`` probes (constant flow identifier per trace,
so ECMP load balancing cannot split one trace across paths), plus
``echo-request`` pings toward every discovered address for router
fingerprinting.

The prober is a pure *composer*: it decides which probes to send
(TTL sweeps, gap limits, flow pinning) and assembles the replies into
:class:`Trace`/:class:`PingResult` objects, while every probe goes
through a :class:`~repro.measure.service.ProbeService` that owns the
cross-cutting policy — budgets, retries, deadlines, caching — and the
backend that actually emits packets.  ``Prober(engine)`` still works:
the engine is wrapped in a ``SimBackend`` automatically.
"""

from __future__ import annotations

import logging
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.measure import (
    DEST_UNREACHABLE,
    ECHO_REPLY,
    ProbeRequest,
    as_probe_service,
)
from repro.measure.service import MeasurementPolicy, ProbeService
from repro.net.addressing import format_address
from repro.net.router import Router
from repro.obs import DEBUG, NULL_SPAN, Obs

__all__ = [
    "TraceHop", "Trace", "PingResult", "UdpProbeResult", "Prober",
]

logger = logging.getLogger(__name__)

#: Histogram buckets for traceroute lengths (hops per trace).
_HOP_BUCKETS = (2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 40.0)

#: Histogram buckets for ping round-trip times (milliseconds).
_RTT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0)


@dataclass
class TraceHop:
    """One hop of a traceroute."""

    probe_ttl: int
    address: Optional[int]  #: responding address; None for ``*``
    reply_kind: Optional[str] = None
    reply_ttl: Optional[int] = None  #: reply IP-TTL observed at the VP
    quoted_labels: List[Tuple[int, int]] = field(default_factory=list)
    rtt_ms: float = 0.0
    responder_router: Optional[str] = None  #: ground truth (simulator)

    @property
    def responded(self) -> bool:
        """True unless the hop timed out (``*``)."""
        return self.address is not None

    @property
    def has_labels(self) -> bool:
        """True when the reply quoted an MPLS label stack (RFC 4950)."""
        return bool(self.quoted_labels)

    def render(self, resolve_name=None) -> str:
        """One traceroute output line (paper Fig. 4 style)."""
        if not self.responded:
            return f"{self.probe_ttl:>2} *"
        name = (
            resolve_name(self.address)
            if resolve_name is not None
            else format_address(self.address)
        )
        line = f"{self.probe_ttl:>2} {name} [{self.reply_ttl}]"
        for label, ttl in self.quoted_labels:
            line += f"\n     MPLS Label {label} TTL={ttl}"
        return line


@dataclass
class Trace:
    """A complete traceroute measurement."""

    source: str  #: vantage-point router name
    source_address: int
    dst: int
    flow_id: int
    hops: List[TraceHop] = field(default_factory=list)
    destination_reached: bool = False

    @property
    def responsive_hops(self) -> List[TraceHop]:
        """Hops that answered, in probe order."""
        return [hop for hop in self.hops if hop.responded]

    @property
    def addresses(self) -> List[int]:
        """Responding addresses, in path order."""
        return [hop.address for hop in self.hops if hop.address is not None]

    @property
    def forward_length(self) -> Optional[int]:
        """Hop distance of the destination (None if unreached)."""
        if not self.destination_reached:
            return None
        return self.hops[-1].probe_ttl

    def hop_of(self, address: int) -> Optional[TraceHop]:
        """First hop that answered with ``address``."""
        for hop in self.hops:
            if hop.address == address:
                return hop
        return None

    def last_responsive(self, count: int) -> List[TraceHop]:
        """The last ``count`` responding hops (path order)."""
        return self.responsive_hops[-count:]

    def contains_labels(self) -> bool:
        """True when any hop quoted MPLS labels (explicit tunnel)."""
        return any(hop.has_labels for hop in self.hops)

    def render(self, resolve_name=None) -> str:
        """Multi-line, Fig. 4-style rendering of the whole trace."""
        header = f"$pt {format_address(self.dst)}"
        if resolve_name is not None:
            header = f"$pt {resolve_name(self.dst)}"
        lines = [header]
        lines.extend(hop.render(resolve_name) for hop in self.hops)
        return "\n".join(lines)


@dataclass
class UdpProbeResult:
    """Outcome of one Mercator-style UDP alias probe."""

    dst: int  #: probed address
    responded: bool
    response_address: Optional[int] = None  #: reply source address
    reply_ttl: Optional[int] = None

    @property
    def reveals_alias(self) -> bool:
        """True when the reply came from a *different* address."""
        return (
            self.responded
            and self.response_address is not None
            and self.response_address != self.dst
        )


@dataclass
class PingResult:
    """Outcome of one echo-request probe at full TTL."""

    dst: int
    responded: bool
    reply_kind: Optional[str] = None
    reply_ttl: Optional[int] = None
    rtt_ms: float = 0.0
    source: Optional[str] = None  #: probing router name


class Prober:
    """Issues traceroutes and pings from vantage-point routers."""

    def __init__(
        self,
        backend,
        max_ttl: int = 40,
        gap_limit: int = 3,
        policy: Optional[MeasurementPolicy] = None,
        obs: Optional[Obs] = None,
        batch_window: int = 1,
    ) -> None:
        #: The measurement service every probe goes through; accepts a
        #: ready service, any probe backend, or a bare engine.
        self.service: ProbeService = as_probe_service(
            backend, policy=policy, obs=obs
        )
        self.max_ttl = max_ttl
        #: Stop after this many consecutive unresponsive hops
        #: (scamper's gap limit).
        self.gap_limit = gap_limit
        #: Traceroute TTL rounds submitted per batch.  1 keeps the
        #: probe-per-probe loop; >1 submits TTL windows through the
        #: backend's batch path (extra probes past the destination or
        #: gap stop still spend budget and fault-clock positions, just
        #: like a real windowed prober keeps packets in flight).
        self.batch_window = max(1, int(batch_window))
        #: Shares the service's observability bundle, so probe counters
        #: land in the same registry as the backend's own counters.
        self.obs = self.service.obs
        #: (source name, dst) -> derived Paris flow id.  ``_flow_for``
        #: is a pure function, so re-traces of the same pair skip the
        #: hash.
        self._flows: dict = {}
        #: (source name, dst, flow, first ttl, last ttl) -> request
        #: window.  Requests are immutable value objects every layer
        #: only reads, so re-probed windows (revelation re-traces,
        #: campaign rounds) reuse the same list.
        self._windows: dict = {}

    @property
    def backend(self):
        """The probe backend underneath the service."""
        return self.service.backend

    @property
    def engine(self):
        """The forwarding engine, when the backend wraps one
        (None for replay and other engine-less backends)."""
        return getattr(self.service.backend, "engine", None)

    @property
    def probes_sent(self) -> int:
        """Probes actually emitted (the service's account)."""
        return self.service.probes_sent

    # ------------------------------------------------------------------

    @staticmethod
    def _flow_for(source: Router, dst: int) -> int:
        """Deterministic Paris flow identifier for ``(source, dst)``.

        A pure function of the pair — no process-global counter — so
        any re-measurement of the same pair reuses the same flow (and
        thus the same ECMP path), and campaigns produce identical
        flows regardless of probing order or worker sharding.
        """
        digest = zlib.crc32(f"{source.name}|{dst}".encode("ascii"))
        return 1 + (digest & 0xFFFF)

    def traceroute(
        self,
        source: Router,
        dst: int,
        start_ttl: int = 1,
        flow_id: Optional[int] = None,
        max_ttl: Optional[int] = None,
    ) -> Trace:
        """Paris traceroute from ``source`` to ``dst``.

        The flow identifier stays constant across the trace and is
        derived from ``(source, dst)`` unless ``flow_id`` pins one.
        """
        if flow_id is None:
            flow_key = (source.name, dst)
            flow_id = self._flows.get(flow_key)
            if flow_id is None:
                flow_id = self._flows[flow_key] = self._flow_for(
                    source, dst
                )
        trace = Trace(
            source=source.name,
            source_address=source.loopback,
            dst=dst,
            flow_id=flow_id,
        )
        metrics = self.obs.metrics
        events = self.obs.events
        gap = 0
        limit = max_ttl if max_ttl is not None else self.max_ttl
        deadline = self.service.begin_trace()
        tracer = self.obs.tracer
        # The span itself already no-ops below INFO, but building its
        # kwargs costs more than the whole hot path per trace — skip
        # the call entirely when the level rules it out.
        span = (
            tracer.span(
                "probe.traceroute", vp=source.name, dst=dst,
                flow=flow_id,
            )
            if events.info
            else NULL_SPAN
        )
        with span:
            if self.batch_window > 1:
                self._traceroute_windowed(
                    source, trace, start_ttl, limit, deadline
                )
            else:
                for ttl in range(start_ttl, limit + 1):
                    outcome = self.service.traceroute_probe(
                        source.name, dst, ttl=ttl, flow_id=flow_id,
                        trace_budget=deadline,
                    )
                    hop = self._hop_from(outcome)
                    trace.hops.append(hop)
                    if hop.responded:
                        gap = 0
                        if (
                            hop.reply_kind == ECHO_REPLY
                            and hop.address == dst
                        ):
                            trace.destination_reached = True
                            # The destination's echo-reply doubles as
                            # a ping observation — seed the service's
                            # ping cache so the fingerprinting phase
                            # can skip the wire for this
                            # (vp, dst, flow).
                            self.service.seed_ping(
                                source.name, dst, flow_id, outcome
                            )
                            break
                    else:
                        gap += 1
                        if gap >= self.gap_limit:
                            metrics.inc("probe.gap_aborts")
                            if events.debug:
                                events.emit(
                                    "probe.gap", DEBUG, vp=source.name,
                                    dst=dst, ttl=ttl,
                                )
                            break
                    if deadline is not None and deadline.expired:
                        break
        metrics.observe("trace.hops", len(trace.hops), _HOP_BUCKETS)
        return trace

    def _traceroute_windowed(
        self, source: Router, trace: Trace, start_ttl: int, limit: int,
        deadline,
    ) -> None:
        """TTL-windowed traceroute rounds through the batch path.

        Each round submits :attr:`batch_window` consecutive TTLs as
        one batch; replies are then folded into the trace in TTL
        order with the same stop rules as the serial loop.  The trace
        (hops, destination flag) comes out identical to serial
        probing — the only behavioural difference is that probes
        already in flight behind a stop still happened, which is
        exactly what a windowed scamper does.
        """
        metrics = self.obs.metrics
        events = self.obs.events
        dst = trace.dst
        flow_id = trace.flow_id
        gap = 0
        ttl = start_ttl
        windows = self._windows
        while ttl <= limit:
            stop = min(ttl + self.batch_window - 1, limit)
            window_key = (source.name, dst, flow_id, ttl, stop)
            requests = windows.get(window_key)
            if requests is None:
                requests = windows[window_key] = [
                    ProbeRequest(source.name, dst, t, flow_id)
                    for t in range(ttl, stop + 1)
                ]
            replies = self.service.traceroute_batch(
                requests, trace_budget=deadline
            )
            for reply in replies:
                hop = self._hop_from(reply)
                trace.hops.append(hop)
                if hop.responded:
                    gap = 0
                    if (
                        hop.reply_kind == ECHO_REPLY
                        and hop.address == dst
                    ):
                        trace.destination_reached = True
                        self.service.seed_ping(
                            source.name, dst, flow_id, reply
                        )
                        return
                else:
                    gap += 1
                    if gap >= self.gap_limit:
                        metrics.inc("probe.gap_aborts")
                        if events.debug:
                            events.emit(
                                "probe.gap", DEBUG, vp=source.name,
                                dst=dst, ttl=hop.probe_ttl,
                            )
                        return
                if deadline is not None and deadline.expired:
                    return
            ttl = stop + 1

    def udp_probe(
        self, source: Router, dst: int, flow_id: Optional[int] = None
    ) -> "UdpProbeResult":
        """Mercator-style UDP probe to an unused port.

        The destination answers with an ICMP port-unreachable sourced
        from its *outgoing* interface toward the prober — when that
        address differs from the probed one, both belong to the same
        router (alias resolution).
        """
        if flow_id is None:
            flow_id = self._flow_for(source, dst)
        outcome = self.service.udp_probe(source.name, dst, flow_id)
        if outcome.reply_kind != DEST_UNREACHABLE:
            return UdpProbeResult(dst=dst, responded=False)
        return UdpProbeResult(
            dst=dst,
            responded=True,
            response_address=outcome.responder,
            reply_ttl=outcome.reply_ttl,
        )

    def ping(
        self, source: Router, dst: int, flow_id: Optional[int] = None
    ) -> PingResult:
        """Echo-request at full TTL (for fingerprinting)."""
        if flow_id is None:
            flow_id = self._flow_for(source, dst)
        outcome = self.service.ping_probe(source.name, dst, flow_id)
        return self._ping_from(source.name, dst, outcome)

    def ping_sweep(
        self,
        source: Router,
        addresses: Sequence[int],
        flow_ids: Optional[Sequence[int]] = None,
    ) -> List[PingResult]:
        """Ping many addresses from one VP through the batch path.

        Semantically identical to calling :meth:`ping` per address
        (same flows, same cache and budget policy), but submitted via
        the backend's batch interface so backends that amortise
        per-probe overhead can.
        """
        if flow_ids is None:
            flow_ids = [
                self._flow_for(source, address) for address in addresses
            ]
        requests = [
            ProbeRequest(source.name, address, 64, flow_id)
            for address, flow_id in zip(addresses, flow_ids)
        ]
        replies = self.service.ping_batch(requests)
        return [
            self._ping_from(source.name, address, reply)
            for address, reply in zip(addresses, replies)
        ]

    # ------------------------------------------------------------------

    def _ping_from(
        self, source_name: str, dst: int, outcome
    ) -> PingResult:
        """Assemble one :class:`PingResult` from a service reply."""
        if outcome.reply_kind != ECHO_REPLY:
            return PingResult(dst=dst, responded=False, source=source_name)
        self.obs.metrics.observe(
            "ping.rtt_ms", outcome.rtt_ms, _RTT_BUCKETS
        )
        return PingResult(
            dst=dst,
            responded=True,
            reply_kind=outcome.reply_kind,
            reply_ttl=outcome.reply_ttl,
            rtt_ms=outcome.rtt_ms,
            source=source_name,
        )

    @staticmethod
    def _hop_from(outcome) -> TraceHop:
        if not outcome.responded:
            return TraceHop(probe_ttl=outcome.probe_ttl, address=None)
        return TraceHop(
            probe_ttl=outcome.probe_ttl,
            address=outcome.responder,
            reply_kind=outcome.reply_kind,
            reply_ttl=outcome.reply_ttl,
            quoted_labels=list(outcome.quoted_labels),
            rtt_ms=outcome.rtt_ms,
            responder_router=outcome.responder_router,
        )
