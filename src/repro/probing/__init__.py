"""Probing: Paris traceroute, ping, datasets, multipath enumeration."""

from repro.probing.dataset import load_dataset, save_dataset
from repro.probing.multipath import MultipathResult, enumerate_paths
from repro.probing.prober import (
    PingResult,
    Prober,
    Trace,
    TraceHop,
    UdpProbeResult,
)

__all__ = [
    "MultipathResult",
    "PingResult",
    "Prober",
    "Trace",
    "TraceHop",
    "UdpProbeResult",
    "enumerate_paths",
    "load_dataset",
    "save_dataset",
]
