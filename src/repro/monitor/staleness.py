"""The staleness engine: cheap evidence probing between epochs.

Full revelation is the expensive part of a campaign — the DPR/BRPR
recursion issues many traceroutes per candidate pair.  A monitoring
loop that re-ran it for *every* pair every epoch would pay the full
campaign cost N times even when nothing changed.  This module decides,
per candidate pair of the previous snapshot, whether the pair's
revelation can be **carried forward** or must be re-run, using
evidence that costs one traceroute and two pings per pair:

1. **Churn attribution** — the churn model reports which transit ASes
   each epoch's events touched.  A pair whose tunnel AS churned, or
   whose recorded trace crosses a churned AS, is stale outright (no
   probes spent).
2. **Path evidence** — re-trace the pair's ``(vp, dst)`` flow and
   compare the hop address sequence (and destination reachability)
   against the snapshot's recorded trace.  RTTs are deliberately
   ignored: latency faults shift timings without moving tunnels.
3. **Signature evidence** — re-ping ingress and egress from the
   pair's VP and compare ``(responded, reply_kind, reply_ttl)``
   against the recorded fingerprint ping.  A vendor upgrade or an
   LDP policy flip shows up here even when the address path did not
   move.

Pairs that appear only in the *new* epoch are never carried — the
orchestrator reveals by default and the carried set is an explicit
allowlist of previously-known pairs — so the engine can only ever
trade probes for staleness, never miss a new tunnel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["PairVerdict", "StalenessReport", "StalenessEngine"]


@dataclass(frozen=True)
class PairVerdict:
    """One pair's staleness decision, JSON-ready via :meth:`to_dict`."""

    ingress: int
    egress: int
    asn: Optional[int]
    stale: bool
    reasons: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        """Record stored in the epoch's ``monitor.json`` sidecar."""
        return {
            "ingress": self.ingress,
            "egress": self.egress,
            "asn": self.asn,
            "stale": self.stale,
            "reasons": list(self.reasons),
        }


@dataclass
class StalenessReport:
    """The engine's output for one epoch transition.

    Attributes:
        verdicts: one entry per previous-snapshot pair, in the
            snapshot's pair order.
        carried_pairs: ``(ingress, egress)`` pairs deemed fresh —
            sorted, ready for ``CampaignConfig.carried_pairs``.
        probes_spent: evidence probes issued (traces + pings).
    """

    verdicts: List[PairVerdict] = field(default_factory=list)
    carried_pairs: Tuple[Tuple[int, int], ...] = ()
    probes_spent: int = 0

    @property
    def stale_pairs(self) -> int:
        """Pairs flagged for full re-revelation."""
        return sum(1 for verdict in self.verdicts if verdict.stale)


class StalenessEngine:
    """Flags previous-snapshot pairs whose revelation went stale.

    Args:
        prober: the monitor's (possibly fault-wrapped) prober; its
            probes are charged under the ``"monitor"`` budget scope.
        vp_by_name: VP name -> Router, as the orchestrator keeps it.
        asn_of: IP-to-AS mapping for churned-transit attribution.
        start_ttl: first TTL of campaign traceroutes (evidence
            re-traces must match the recorded hop window).
    """

    def __init__(
        self,
        prober,
        vp_by_name: Dict[str, object],
        asn_of,
        start_ttl: int = 2,
    ) -> None:
        self.prober = prober
        self.vp_by_name = vp_by_name
        self.asn_of = asn_of
        self.start_ttl = start_ttl

    # ------------------------------------------------------------------

    def assess(
        self, previous, churned_asns: Sequence[int]
    ) -> StalenessReport:
        """Judge every pair of the ``previous`` snapshot.

        Deterministic: pairs are visited in the snapshot's recorded
        order, and evidence probes are only issued for pairs churn
        attribution did not already flag (cheapest signal first).
        """
        churned = set(churned_asns)
        traces = [
            record.get("trace") or {}
            for record in previous.records("trace")
        ]
        pings: Dict[Tuple[str, int], dict] = {}
        for record in previous.records("ping"):
            pings[(record["vp"], record["address"])] = (
                record.get("ping") or {}
            )
        report = StalenessReport()
        before = self.prober.probes_sent
        carried: List[Tuple[int, int]] = []
        with self.prober.service.scope("monitor"):
            for record in previous.records("pairs"):
                verdict = self._judge(record, traces, pings, churned)
                report.verdicts.append(verdict)
                if not verdict.stale:
                    carried.append((verdict.ingress, verdict.egress))
        report.carried_pairs = tuple(sorted(carried))
        report.probes_spent = self.prober.probes_sent - before
        return report

    # ------------------------------------------------------------------

    def _judge(
        self,
        record: dict,
        traces: List[dict],
        pings: Dict[Tuple[str, int], dict],
        churned: set,
    ) -> PairVerdict:
        """One pair's verdict (see module docstring for the rules)."""
        ingress = record["ingress"]
        egress = record["egress"]
        asn = record.get("asn")
        reasons: List[str] = []
        if asn in churned:
            reasons.append("as-churned")
        trace_index = record.get("trace_index")
        recorded: dict = {}
        if trace_index is not None and trace_index < len(traces):
            recorded = traces[trace_index]
        prev_path = self._trace_path(recorded)
        if self._crosses(prev_path, churned):
            if "as-churned" not in reasons:
                reasons.append("path-crosses-churned-as")
        vp = self.vp_by_name.get(record.get("vp"))
        if vp is None or not recorded:
            reasons.append("no-prior-evidence")
        if reasons:
            return PairVerdict(
                ingress, egress, asn, True, tuple(reasons)
            )
        fresh = self.prober.traceroute(
            vp, recorded["dst"], start_ttl=self.start_ttl
        )
        fresh_path = [
            (hop.probe_ttl, hop.address) for hop in fresh.hops
        ]
        if fresh_path != prev_path or (
            fresh.destination_reached
            != recorded.get("destination_reached")
        ):
            reasons.append("path-changed")
        elif self._crosses(fresh_path, churned):
            reasons.append("path-crosses-churned-as")
        for label, address in (("ingress", ingress), ("egress", egress)):
            prior = pings.get((record.get("vp"), address))
            if prior is None:
                reasons.append(f"no-prior-ping-{label}")
                continue
            probe = self.prober.ping(vp, address)
            signature = (
                probe.responded, probe.reply_kind, probe.reply_ttl
            )
            if signature != (
                prior.get("responded"),
                prior.get("reply_kind"),
                prior.get("reply_ttl"),
            ):
                reasons.append(f"signature-changed-{label}")
        return PairVerdict(
            ingress, egress, asn, bool(reasons), tuple(reasons)
        )

    @staticmethod
    def _trace_path(trace: dict) -> List[Tuple[int, Optional[int]]]:
        """Canonical ``(probe_ttl, address)`` sequence of a record."""
        return [
            (hop.get("probe_ttl"), hop.get("address"))
            for hop in trace.get("hops") or []
        ]

    def _crosses(
        self,
        path: List[Tuple[int, Optional[int]]],
        churned: set,
    ) -> bool:
        """True when any responding hop sits in a churned AS."""
        return any(
            self.asn_of(address) in churned
            for _, address in path
            if address is not None
        )
