"""The monitor loop: scheduled epoch re-campaigns over one warehouse.

One :class:`MonitorLoop` owns a private (unfrozen) synthetic internet
and a warehouse directory, and advances them together through
*epochs*:

1. apply the epoch's churn (:class:`~repro.synth.churn.ChurnModel`);
2. ask the :class:`~repro.monitor.staleness.StalenessEngine` which of
   the previous snapshot's candidate pairs went stale;
3. run a checkpointed campaign whose ``carried_pairs`` skip the full
   revelation recursion for the fresh ones;
4. merge the carried pairs' prior revelations back into the result so
   the epoch's ``result.json`` holds the complete tunnel inventory —
   byte-identical to a full re-campaign when churn really was
   confined to the flagged region (pinned by test);
5. write a ``monitor.json`` sidecar (churn events, staleness
   verdicts, probe accounting) next to the snapshot.

Every epoch is its own content-keyed snapshot: the topology
descriptor is stamped with the **chain id** (a hash of everything
that makes the run reproducible) and the epoch number, so the
timeline layer can find and order a chain's snapshots with no extra
index.  Resume is free: completed epochs are recognised by their
snapshot's run status and skipped (after replaying their churn so the
live network state matches), and a partially-written epoch resumes
through the ordinary PR-4 checkpoint machinery bit-identically.

Fault profiles compose, with one restriction: network-mutating (flap)
profiles are rejected — the churn model owns the topology.  The fault
clock is rewound at each epoch boundary so fault patterns are a pure
function of the epoch's own probe sequence, keeping resumed and
uninterrupted chains byte-identical.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.campaign.orchestrator import Campaign, CampaignConfig
from repro.campaign.postprocess import Aggregator
from repro.core.revelation import Revelation, RevelationMethod
from repro.monitor.staleness import StalenessEngine, StalenessReport
from repro.obs import Obs
from repro.probing.prober import Prober
from repro.store import (
    CampaignCheckpoint,
    CampaignStore,
    campaign_key,
    result_document,
    snapshot_tunnels,
)
from repro.store.layout import MONITOR_SCHEMA, write_json
from repro.synth.churn import (
    ChurnEvent,
    ChurnModel,
    ChurnProfile,
    churn_profile,
)
from repro.synth.internet import InternetConfig, build_internet
from repro.synth.profiles import scaled_profiles

__all__ = [
    "MonitorConfig",
    "EpochOutcome",
    "MonitorReport",
    "MonitorLoop",
    "chain_id",
]


def chain_id(config: "MonitorConfig") -> str:
    """Deterministic chain id: a hash of the reproducible knobs.

    A pure function of the config so a fleet supervisor can name a
    chain (for parked/drained ledger rows and warehouse grouping)
    without paying an ``internet_build``.  Execution knobs
    (``probe_budget``, batching) stay out, so an interrupted chain
    resumes into the same snapshots.
    """
    profile = config.churn_profile
    profile_name = (
        profile if isinstance(profile, str) else profile.name
    )
    identity: Dict[str, object] = {
        "scale": config.scale,
        "seed": config.seed,
        "vantage_points": config.vantage_points,
        "stubs_per_transit": config.stubs_per_transit,
        "churn_profile": profile_name,
        "churn_seed": (
            config.seed
            if config.churn_seed is None
            else config.churn_seed
        ),
        "incremental": config.incremental,
    }
    if config.fault_profile is not None:
        identity["fault_profile"] = config.fault_profile
    if config.te_tunnels_per_transit:
        identity["te_tunnels_per_transit"] = (
            config.te_tunnels_per_transit
        )
        identity["te_ttl_propagate"] = config.te_ttl_propagate
    if config.schedule:
        canonical = json.dumps(
            {
                str(epoch): [dict(spec) for spec in specs]
                for epoch, specs in sorted(config.schedule.items())
            },
            sort_keys=True,
        )
        identity["schedule_sha"] = hashlib.sha256(
            canonical.encode()
        ).hexdigest()[:16]
    blob = json.dumps(identity, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:12]


@dataclass(frozen=True)
class MonitorConfig:
    """Everything one monitoring chain needs to be reproducible.

    The identity-relevant subset (topology knobs, seeds, churn
    profile, fault profile, incremental flag) is hashed into the
    chain id; execution knobs (``probe_budget``) deliberately are
    not, so an interrupted chain resumes into the same snapshots.
    """

    warehouse: str
    epochs: int = 3
    scale: float = 0.3
    seed: int = 2017
    vantage_points: int = 4
    stubs_per_transit: int = 3
    #: Shipped profile name or an explicit :class:`ChurnProfile`.
    churn_profile: Union[str, ChurnProfile] = "gentle"
    #: Churn RNG seed; defaults to ``seed``.
    churn_seed: Optional[int] = None
    #: Scripted churn events, ``epoch -> [spec, ...]`` (see
    #: :class:`~repro.synth.churn.ChurnModel`); applied before the
    #: profile-driven batch each epoch.
    schedule: Optional[Mapping[int, Sequence[Mapping[str, object]]]] = None
    #: False re-reveals every pair every epoch (the control arm the
    #: incremental-safety test and the bench compare against).
    incremental: bool = True
    #: Non-mutating fault profile injected under the campaign (flap
    #: profiles are rejected — churn owns the topology).
    fault_profile: Optional[str] = None
    #: Per-epoch campaign probe budget (evidence probes excluded);
    #: exhausting it stops the chain with a resumable partial epoch.
    probe_budget: Optional[int] = None
    max_retries: int = 0
    breaker_threshold: Optional[int] = None
    te_tunnels_per_transit: int = 0
    te_ttl_propagate: bool = False
    compiled_plane: bool = False
    batch_window: int = 1


@dataclass
class EpochOutcome:
    """One epoch's ledger entry in a :class:`MonitorReport`."""

    epoch: int
    key: str
    snapshot_dir: str
    partial: bool = False
    resumed: bool = False
    #: True when the epoch was already complete in the warehouse and
    #: only its churn was replayed.
    skipped: bool = False
    pairs: int = 0
    tunnels: int = 0
    pairs_carried: int = 0
    pairs_stale: int = 0
    campaign_probes: int = 0
    evidence_probes: int = 0
    churn_events: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready row for reports and the CLI."""
        return {
            "epoch": self.epoch,
            "key": self.key,
            "snapshot_dir": self.snapshot_dir,
            "partial": self.partial,
            "resumed": self.resumed,
            "skipped": self.skipped,
            "pairs": self.pairs,
            "tunnels": self.tunnels,
            "pairs_carried": self.pairs_carried,
            "pairs_stale": self.pairs_stale,
            "campaign_probes": self.campaign_probes,
            "evidence_probes": self.evidence_probes,
            "churn_events": list(self.churn_events),
        }


@dataclass
class MonitorReport:
    """A monitoring run's outcome: the chain and its epoch ledger."""

    chain: str
    churn_profile: str
    epochs: List[EpochOutcome] = field(default_factory=list)
    partial: bool = False
    stop_reason: Optional[str] = None

    @property
    def completed_epochs(self) -> int:
        """Epochs whose snapshot finished (fresh, resumed or skipped)."""
        return sum(
            1 for outcome in self.epochs if not outcome.partial
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (the CLI's non-timeline output)."""
        return {
            "chain": self.chain,
            "churn_profile": self.churn_profile,
            "partial": self.partial,
            "stop_reason": self.stop_reason,
            "epochs": [outcome.to_dict() for outcome in self.epochs],
        }


class MonitorLoop:
    """Drives churn, staleness and epoch re-campaigns over a warehouse.

    Build one per chain and call :meth:`run`.  The loop is safe to
    re-run with the same config after an interruption: completed
    epochs are skipped (their churn replayed so the live network
    matches), and the interrupted epoch resumes from its checkpoint.
    """

    def __init__(
        self,
        config: MonitorConfig,
        internet=None,
        backend_wrapper=None,
        stop_before_epoch=None,
    ) -> None:
        self.config = config
        profile = config.churn_profile
        self.profile: ChurnProfile = (
            churn_profile(profile)
            if isinstance(profile, str)
            else profile
        )
        if config.fault_profile is not None:
            from repro.faults import fault_profile

            if fault_profile(config.fault_profile).mutates_network:
                raise ValueError(
                    f"fault profile {config.fault_profile!r} mutates "
                    "the network; the monitor's churn model owns the "
                    "topology — use a non-flap profile"
                )
        if internet is None:
            internet = build_internet(
                InternetConfig(
                    profiles=tuple(scaled_profiles(config.scale)),
                    vantage_points=config.vantage_points,
                    stubs_per_transit=config.stubs_per_transit,
                    seed=config.seed,
                    compiled_plane=config.compiled_plane,
                    probe_batch_window=config.batch_window,
                    te_tunnels_per_transit=config.te_tunnels_per_transit,
                    te_ttl_propagate=config.te_ttl_propagate,
                )
            )
        else:
            self._check_injected(internet)
        self.internet = internet
        self._backend_wrapper = backend_wrapper
        self._stop_before_epoch = stop_before_epoch
        self.prober = self._build_prober()
        self.obs: Obs = self.prober.obs
        self.churn = ChurnModel(
            self.internet,
            self.profile,
            seed=(
                config.seed
                if config.churn_seed is None
                else config.churn_seed
            ),
            schedule=config.schedule,
        )
        self.store = CampaignStore(config.warehouse)
        self.chain = self._chain_id()
        self._vp_by_name = {vp.name: vp for vp in self.internet.vps}

    def _check_injected(self, internet) -> None:
        """Validate a pre-built internet against this chain's config.

        A fleet chain runs over a copy-on-churn twin checked out from
        the serve registry instead of building its own internet; the
        twin must be mutable (churn owns it) and agree with every
        config knob that participates in the chain id, or the chain
        would stamp snapshots it could never reproduce standalone.
        """
        if internet.network.frozen:
            raise ValueError(
                "monitor chain needs a private unfrozen internet; "
                "shared rendered snapshots are frozen — check out a "
                "copy-on-churn twin (SnapshotRegistry.checkout or "
                "repro fleet) instead"
            )
        expected = {
            "seed": self.config.seed,
            "vantage_points": self.config.vantage_points,
            "stubs_per_transit": self.config.stubs_per_transit,
            "te_tunnels_per_transit": (
                self.config.te_tunnels_per_transit
            ),
            "te_ttl_propagate": self.config.te_ttl_propagate,
        }
        actual = {
            name: getattr(internet.config, name)
            for name in expected
        }
        if actual != expected:
            mismatched = ", ".join(
                f"{name}={actual[name]!r} (config wants "
                f"{expected[name]!r})"
                for name in sorted(expected)
                if actual[name] != expected[name]
            )
            raise ValueError(
                f"injected internet disagrees with the monitor "
                f"config: {mismatched}"
            )

    # ------------------------------------------------------------------
    # Identity

    def _chain_id(self) -> str:
        """Deterministic chain id: a hash of the reproducible knobs."""
        return chain_id(self.config)

    def _topology_descriptor(self, epoch: int) -> Dict[str, object]:
        """The snapshot topology stamp for ``epoch``."""
        descriptor: Dict[str, object] = {
            "kind": "synthetic-internet",
            "scale": self.config.scale,
            "seed": self.config.seed,
            "vantage_points": self.config.vantage_points,
            "stubs_per_transit": self.config.stubs_per_transit,
            "monitor": {
                "chain": self.chain,
                "epoch": epoch,
                "churn_profile": self.profile.name,
            },
        }
        if self.config.fault_profile is not None:
            descriptor["fault_profile"] = self.config.fault_profile
            if self.config.batch_window != 1:
                descriptor["batch_window"] = self.config.batch_window
        if self.config.te_tunnels_per_transit:
            descriptor["te_tunnels_per_transit"] = (
                self.config.te_tunnels_per_transit
            )
            descriptor["te_ttl_propagate"] = (
                self.config.te_ttl_propagate
            )
        return descriptor

    # ------------------------------------------------------------------
    # Plumbing

    def _build_prober(self) -> Prober:
        """The chain's prober (fault-wrapped when configured).

        A ``backend_wrapper`` (the fleet's kill-switch/watchdog
        harness) wraps outermost so it sees every probe the campaign
        submits, faults included.
        """
        from repro.measure import SimBackend

        backend = SimBackend(self.internet.engine)
        if self.config.fault_profile is not None:
            from repro.faults import FaultyBackend, fault_profile

            backend = FaultyBackend(
                backend, fault_profile(self.config.fault_profile)
            )
        if self._backend_wrapper is not None:
            backend = self._backend_wrapper(backend)
        return Prober(
            backend, batch_window=self.config.batch_window
        )

    def _epoch_boundary(self) -> None:
        """Reset per-epoch probing state.

        Flushes the response cache (so an epoch never serves replies
        cached by the previous one — a resumed process would not have
        them) and rewinds the fault clock (so fault patterns are a
        pure function of the epoch's own probe sequence).  Budgets
        configured by the previous epoch's campaign are lifted; the
        next campaign installs its own.
        """
        service = self.prober.service
        service.flush_cache()
        service.configure(probe_budget=None, scope_budgets=None)
        restore = getattr(
            self.prober.service.backend, "restore_fault_state", None
        )
        if callable(restore):
            restore({"clock": 0, "flaps_fired": 0})

    def _campaign_config(
        self, carried: Tuple[Tuple[int, int], ...]
    ) -> CampaignConfig:
        """The epoch's campaign config (budget made absolute)."""
        budget = self.config.probe_budget
        if budget is not None:
            # Service budgets compare against the cumulative probe
            # counter, which spans epochs here — offset so the limit
            # covers this epoch's own campaign probes.
            budget = self.prober.probes_sent + budget
        return CampaignConfig(
            suspicious_asns=tuple(self.internet.transit_asns),
            probe_budget=budget,
            max_retries=self.config.max_retries,
            breaker_threshold=self.config.breaker_threshold,
            carried_pairs=carried or None,
        )

    def _find_complete_epoch(self, key: str):
        """The epoch's snapshot when it already ran to completion."""
        snapshot = self.store.snapshot_for_key(key)
        if not snapshot.exists():
            return None
        status = snapshot.run_status() or {}
        if status.get("completed") and snapshot.result() is not None:
            return snapshot
        return None

    # ------------------------------------------------------------------
    # The loop

    def run(self) -> MonitorReport:
        """Advance the chain through every configured epoch.

        Returns a partial report (with a resume hint in
        ``stop_reason``) when a probe budget stops an epoch midway;
        re-running the same config resumes bit-identically.
        """
        metrics = self.obs.metrics
        report = MonitorReport(
            chain=self.chain, churn_profile=self.profile.name
        )
        previous = None
        for epoch in range(self.config.epochs):
            if (
                self._stop_before_epoch is not None
                and self._stop_before_epoch(epoch)
            ):
                report.partial = True
                report.stop_reason = (
                    f"drained before epoch {epoch}; re-run the same "
                    "monitor command (or resume the fleet) to "
                    "continue the chain"
                )
                return report
            events = (
                self.churn.advance(epoch) if epoch > 0 else []
            )
            metrics.inc("monitor.churn_events", len(events))
            self._epoch_boundary()
            outcome = self._run_epoch(epoch, events, previous)
            report.epochs.append(outcome)
            metrics.inc("monitor.epochs")
            if outcome.partial:
                report.partial = True
                report.stop_reason = (
                    f"epoch {epoch} stopped early (budget); re-run "
                    "the same monitor command to resume the chain"
                )
                return report
            previous = self.store.snapshot_for_key(outcome.key)
        return report

    def _run_epoch(
        self,
        epoch: int,
        events: List[ChurnEvent],
        previous,
    ) -> EpochOutcome:
        """One epoch: staleness, campaign, merge, sidecar."""
        metrics = self.obs.metrics
        churned = ChurnModel.touched_asns(events)
        staleness: Optional[StalenessReport] = None
        carried: Tuple[Tuple[int, int], ...] = ()
        if (
            self.config.incremental
            and epoch > 0
            and previous is not None
        ):
            engine = StalenessEngine(
                self.prober,
                self._vp_by_name,
                self.internet.asn_of_address,
            )
            staleness = engine.assess(previous, churned)
            carried = staleness.carried_pairs
            metrics.inc(
                "monitor.evidence_probes", staleness.probes_spent
            )
        config = self._campaign_config(carried)
        topology = self._topology_descriptor(epoch)
        key = campaign_key(
            topology, config, self.internet.campaign_targets()
        )["key"]
        complete = self._find_complete_epoch(key)
        if complete is not None:
            return self._skipped_outcome(
                epoch, key, complete, events, staleness
            )
        campaign = Campaign(
            self.prober,
            self.internet.vps,
            self.internet.asn_of_address,
            config,
        )
        snapshot = self.store.snapshot_for_key(key)
        resuming = snapshot.exists() and snapshot.has_records()
        checkpoint = CampaignCheckpoint(
            self.store, topology, resume=resuming
        )
        probes_before = self.prober.probes_sent
        result = campaign.run(
            self.internet.campaign_targets(), checkpoint=checkpoint
        )
        outcome = EpochOutcome(
            epoch=epoch,
            key=key,
            snapshot_dir=snapshot.path.name,
            partial=result.partial,
            resumed=resuming,
            pairs=len(result.pairs),
            pairs_carried=sum(
                1
                for revelation in result.revelations.values()
                if revelation.technique == "carried"
            ),
            pairs_stale=(
                staleness.stale_pairs if staleness else 0
            ),
            campaign_probes=self.prober.probes_sent - probes_before,
            evidence_probes=(
                staleness.probes_spent if staleness else 0
            ),
            churn_events=[event.to_dict() for event in events],
        )
        metrics.inc("monitor.pairs_skipped", outcome.pairs_carried)
        metrics.inc(
            "monitor.pairs_reprobed",
            outcome.pairs - outcome.pairs_carried,
        )
        if result.partial:
            metrics.inc("monitor.partial_epochs")
            return outcome
        if carried and previous is not None:
            self._merge_carried(result, previous, carried)
        document = self._result_document(campaign, result)
        checkpoint.snapshot.write_result(document)
        outcome.tunnels = len(document.get("tunnels") or [])
        self._write_sidecar(epoch, key, outcome, staleness)
        return outcome

    def _skipped_outcome(
        self,
        epoch: int,
        key: str,
        snapshot,
        events: List[ChurnEvent],
        staleness: Optional[StalenessReport],
    ) -> EpochOutcome:
        """Ledger row for an epoch found complete in the warehouse."""
        self.obs.metrics.inc("monitor.epochs_skipped")
        status = snapshot.run_status() or {}
        result = snapshot.result() or {}
        sidecar = self._read_sidecar(snapshot)
        return EpochOutcome(
            epoch=epoch,
            key=key,
            snapshot_dir=snapshot.path.name,
            skipped=True,
            pairs=int(status.get("pairs") or 0),
            tunnels=len(result.get("tunnels") or []),
            pairs_carried=int(sidecar.get("pairs_carried") or 0),
            pairs_stale=int(sidecar.get("pairs_stale") or 0),
            # run.json splits trace/ping spend from revelation spend;
            # the live path measures their sum (the prober delta).
            campaign_probes=(
                int(status.get("probes_sent") or 0)
                + int(status.get("revelation_probes") or 0)
            ),
            evidence_probes=(
                staleness.probes_spent if staleness else 0
            ),
            churn_events=[event.to_dict() for event in events],
        )

    # ------------------------------------------------------------------
    # Carried-forward merge and epoch artefacts

    def _merge_carried(
        self,
        result,
        previous,
        carried: Tuple[Tuple[int, int], ...],
    ) -> None:
        """Substitute prior revelations for the carried pairs.

        The source is the previous epoch's *merged* tunnel inventory
        (its ``result.json``), not its raw revelation records — a
        pair carried across several consecutive epochs would
        otherwise resolve to an empty ``"carried"`` stamp.  Pairs
        absent from the prior inventory were revelation failures;
        they stay empty, exactly as a full re-campaign would leave
        them.
        """
        prior = {
            (tunnel["ingress"], tunnel["egress"]): tunnel
            for tunnel in snapshot_tunnels(previous)
        }
        for pair in carried:
            tunnel = prior.get(pair)
            if tunnel is None:
                continue
            if pair not in result.revelations:
                continue
            result.revelations[pair] = Revelation(
                ingress=pair[0],
                egress=pair[1],
                revealed=list(tunnel.get("revealed") or []),
                method=RevelationMethod(
                    tunnel.get("method") or "none"
                ),
                technique=str(tunnel.get("technique") or "combined"),
            )

    def _result_document(self, campaign: Campaign, result) -> dict:
        """The epoch's complete ``result.json`` document."""
        aggregator = Aggregator(
            result,
            self.internet.asn_of_address,
            alias_of=self._alias_of,
        )
        frpla = campaign.frpla(
            result, classify=aggregator.role_of
        )
        names = {
            asn: profile.name
            for asn, profile in self.internet.profiles.items()
        }
        return result_document(
            result, aggregator, frpla=frpla, as_names=names
        )

    def _alias_of(self, address: int) -> Optional[str]:
        """Ground-truth alias resolver (address -> router name)."""
        router = self.internet.router_of_address(address)
        return None if router is None else router.name

    def _write_sidecar(
        self,
        epoch: int,
        key: str,
        outcome: EpochOutcome,
        staleness: Optional[StalenessReport],
    ) -> None:
        """Write the epoch's ``monitor.json`` next to the snapshot."""
        snapshot = self.store.snapshot_for_key(key)
        document: Dict[str, object] = {
            "schema": MONITOR_SCHEMA,
            "kind": "epoch",
            "chain": self.chain,
            "epoch": epoch,
            "churn_profile": self.profile.name,
            "churn_events": list(outcome.churn_events),
            "pairs_carried": outcome.pairs_carried,
            "pairs_stale": outcome.pairs_stale,
            "campaign_probes": outcome.campaign_probes,
            "evidence_probes": outcome.evidence_probes,
            "staleness": (
                [verdict.to_dict() for verdict in staleness.verdicts]
                if staleness
                else []
            ),
        }
        write_json(snapshot.path / "monitor.json", document)

    @staticmethod
    def _read_sidecar(snapshot) -> dict:
        """The snapshot's ``monitor.json`` (empty dict when absent)."""
        path = snapshot.path / "monitor.json"
        if not path.exists():
            return {}
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}
