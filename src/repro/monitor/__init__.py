"""``repro.monitor`` — continuous longitudinal tunnel monitoring.

The paper's longitudinal claim — tunnels are *dynamic*, so one-shot
campaigns undercount — needs a monitoring product, not a single
snapshot.  This package turns the campaign warehouse into that
product:

* :mod:`repro.monitor.staleness` — the evidence engine deciding, per
  candidate pair, whether the previous epoch's revelation can be
  carried forward (one trace + two pings instead of the full DPR/BRPR
  recursion);
* :mod:`repro.monitor.loop` — :class:`MonitorLoop`, which advances a
  churn model (:mod:`repro.synth.churn`) and checkpointed epoch
  re-campaigns over one warehouse, producing chained content-keyed
  snapshots plus per-epoch ``monitor.json`` sidecars;
* the timeline layer lives in :mod:`repro.store.timeline` (folding a
  chain's snapshots into per-pair lifecycles, schema
  ``repro.monitor/1``), keeping this package free of store-format
  knowledge beyond the checkpoint API.

Counters live under the ``monitor.*`` family (an execution prefix:
skipping work must not change *measurement* counters, which stay
comparable between incremental and full epochs).
"""

from repro.monitor.loop import (
    EpochOutcome,
    MonitorConfig,
    MonitorLoop,
    MonitorReport,
    chain_id,
)
from repro.monitor.staleness import (
    PairVerdict,
    StalenessEngine,
    StalenessReport,
)

__all__ = [
    "EpochOutcome",
    "MonitorConfig",
    "MonitorLoop",
    "MonitorReport",
    "PairVerdict",
    "StalenessEngine",
    "StalenessReport",
    "chain_id",
]
