"""Small statistics toolkit for the measurement analyses.

Everything the paper plots is a one-dimensional empirical distribution
(PDFs of RFA, tunnel lengths, node degrees, path lengths).  The
:class:`Distribution` wrapper provides the handful of summary
statistics and histogram forms the experiment code needs, without
pulling in numpy on hot paths.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Distribution", "normal_pdf", "looks_centered"]


class Distribution:
    """An empirical distribution over numeric samples."""

    def __init__(self, values: Iterable[float] = ()) -> None:
        self._values: List[float] = list(values)
        self._sorted: Optional[List[float]] = None

    # ------------------------------------------------------------------
    # Intake

    def add(self, value: float) -> None:
        """Append one sample."""
        self._values.append(value)
        self._sorted = None

    def extend(self, values: Iterable[float]) -> None:
        """Append many samples."""
        self._values.extend(values)
        self._sorted = None

    # ------------------------------------------------------------------
    # Basics

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self._values)

    @property
    def values(self) -> List[float]:
        """The raw samples (insertion order)."""
        return list(self._values)

    def _ordered(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(self._values)
        return self._sorted

    # ------------------------------------------------------------------
    # Summary statistics

    @property
    def mean(self) -> float:
        """Arithmetic mean (ValueError when empty)."""
        if not self._values:
            raise ValueError("empty distribution has no mean")
        return sum(self._values) / len(self._values)

    @property
    def median(self) -> float:
        """Median (ValueError when empty)."""
        ordered = self._ordered()
        if not ordered:
            raise ValueError("empty distribution has no median")
        n = len(ordered)
        mid = n // 2
        if n % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2

    @property
    def stddev(self) -> float:
        """Population standard deviation (0 for fewer than 2 samples)."""
        if len(self._values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self._values) / len(self._values)
        )

    @property
    def min(self) -> float:
        """Smallest sample."""
        return self._ordered()[0]

    @property
    def max(self) -> float:
        """Largest sample."""
        return self._ordered()[-1]

    def percentile(self, q: float) -> float:
        """q-th percentile, linear interpolation; q in [0, 100]."""
        ordered = self._ordered()
        if not ordered:
            raise ValueError("empty distribution has no percentiles")
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    # ------------------------------------------------------------------
    # Histogram / PDF forms

    def counts(self) -> Dict[float, int]:
        """Exact value -> occurrence count."""
        return dict(Counter(self._values))

    def pdf(self) -> Dict[float, float]:
        """Exact value -> empirical probability."""
        n = len(self._values)
        if n == 0:
            return {}
        return {
            value: count / n for value, count in Counter(self._values).items()
        }

    def pdf_points(self) -> List[Tuple[float, float]]:
        """Sorted ``(value, probability)`` pairs, ready for plotting."""
        return sorted(self.pdf().items())

    def cdf_points(self) -> List[Tuple[float, float]]:
        """Sorted ``(value, P(X <= value))`` pairs."""
        points = []
        cumulative = 0.0
        for value, probability in self.pdf_points():
            cumulative += probability
            points.append((value, cumulative))
        return points

    def histogram(
        self, bins: Sequence[float]
    ) -> List[Tuple[float, float, int]]:
        """Counts per ``[lo, hi)`` bin; last bin is inclusive."""
        edges = list(bins)
        if len(edges) < 2:
            raise ValueError("need at least two bin edges")
        result = []
        for i in range(len(edges) - 1):
            lo, hi = edges[i], edges[i + 1]
            last = i == len(edges) - 2
            count = sum(
                1
                for v in self._values
                if lo <= v < hi or (last and v == hi)
            )
            result.append((lo, hi, count))
        return result

    def fraction(self, predicate) -> float:
        """Share of samples satisfying ``predicate`` (0 when empty)."""
        if not self._values:
            return 0.0
        return sum(1 for v in self._values if predicate(v)) / len(
            self._values
        )

    def mode(self) -> float:
        """Most frequent value (ties: smallest; ValueError when empty)."""
        if not self._values:
            raise ValueError("empty distribution has no mode")
        counter = Counter(self._values)
        best_count = max(counter.values())
        return min(v for v, c in counter.items() if c == best_count)


def normal_pdf(x: float, mu: float, sigma: float) -> float:
    """Gaussian density — reference curve for asymmetry plots."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    z = (x - mu) / sigma
    return math.exp(-0.5 * z * z) / (sigma * math.sqrt(2 * math.pi))


def looks_centered(
    distribution: Distribution, center: float = 0.0, tolerance: float = 1.0
) -> bool:
    """Heuristic: is the distribution's median within ``tolerance``?

    The paper's sanity check for asymmetry distributions ("normal law
    centred in 0"): we only test the location, not normality.
    """
    if not len(distribution):
        return False
    return abs(distribution.median - center) <= tolerance
