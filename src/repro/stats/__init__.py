"""Statistics helpers: empirical distributions."""

from repro.stats.distributions import Distribution, looks_centered, normal_pdf

__all__ = ["Distribution", "looks_centered", "normal_pdf"]
