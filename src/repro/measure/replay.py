"""Record/replay backends over JSONL probe logs.

A :class:`RecordingBackend` wraps any other backend and appends every
distinct (request, reply) exchange to a probe log — one JSON object
per line, preceded by a schema header.  A :class:`ReplayBackend`
serves probes straight from such a log, so a recorded campaign can be
re-run bit-identically without the simulator (or, one day, without
the network).

Probe-log format (``repro.probelog/1``)::

    {"schema": "repro.probelog/1", "backend": "sim"}
    {"source": "VP1", "dst": 167772161, "ttl": 2, "flow": 17,
     "kind": "echo-request",
     "reply": {"kind": "time-exceeded", "responder": 167772162,
               "router": "AS5_P3", "ttl": 253,
               "labels": [[300, 4]], "rtt": 6.0}}
    {"source": "VP1", "dst": 167772161, "ttl": 3, "flow": 17,
     "kind": "echo-request", "reply": null}

A ``null`` reply is a timeout (``*`` hop).  Requests are deduplicated
on ``(source, dst, ttl, flow, kind)`` at record time — retries of a
deterministic backend re-observe the same reply, so one entry serves
them all on replay.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Optional, Union

from repro.measure.backend import (
    ECHO_REQUEST,
    ProbeBackend,
    ProbeReply,
    ProbeRequest,
    reply_from_wire,
    reply_to_wire,
)

__all__ = ["SCHEMA", "ReplayMiss", "RecordingBackend", "ReplayBackend"]

#: Probe-log schema identifier, written as the header line.
SCHEMA = "repro.probelog/1"


class ReplayMiss(RuntimeError):
    """A replayed probe was never recorded.

    Raised when a replay run diverges from the recorded one — a
    different seed, topology, or policy produced a request the log has
    no answer for.
    """

    def __init__(self, request: ProbeRequest, path: str) -> None:
        super().__init__(
            f"probe log {path!r} has no reply for "
            f"{request.source}->{request.dst} ttl={request.ttl} "
            f"flow={request.flow_id} kind={request.kind}"
        )
        self.request = request  #: the unanswerable request
        self.path = path  #: the probe log consulted


def _key(request: ProbeRequest) -> tuple:
    return (
        request.source,
        request.dst,
        request.ttl,
        request.flow_id,
        request.kind,
    )


class RecordingBackend(ProbeBackend):
    """Tees every exchange of an inner backend into a probe log."""

    name = "record"

    def __init__(
        self, inner: ProbeBackend, destination: Union[str, IO[str]]
    ) -> None:
        self.inner = inner
        #: Observability bundle delegated from the inner backend.
        self.obs = getattr(inner, "obs", None)
        #: The inner backend's engine, when it wraps one — keeps
        #: engine-level perf stats readable while recording.  The
        #: trajectory prewarm hooks are deliberately NOT delegated:
        #: forked prewarm workers must not write this log.
        self.engine = getattr(inner, "engine", None)
        if isinstance(destination, str):
            self.path: str = destination
            self._handle: IO[str] = open(
                destination, "w", encoding="utf-8"
            )
            self._owns_handle = True
        else:
            self.path = getattr(destination, "name", "<stream>")
            self._handle = destination
            self._owns_handle = False
        self._seen: set = set()
        self._closed = False
        self._write(
            {"schema": SCHEMA, "backend": getattr(inner, "name", "?")}
        )

    def submit(self, request: ProbeRequest) -> ProbeReply:
        """Forward to the inner backend; log first-seen exchanges."""
        reply = self.inner.submit(request)
        key = _key(request)
        if key not in self._seen:
            self._seen.add(key)
            self._write(self._entry(request, reply))
        return reply

    def close(self) -> None:
        """Flush and close the log, then close the inner backend."""
        if self._closed:
            return
        self._closed = True
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()
        self.inner.close()

    # ------------------------------------------------------------------

    def _write(self, record: Dict[str, object]) -> None:
        self._handle.write(
            json.dumps(record, separators=(",", ":")) + "\n"
        )

    @staticmethod
    def _entry(
        request: ProbeRequest, reply: ProbeReply
    ) -> Dict[str, object]:
        wire = reply_to_wire(reply)
        return {
            "source": request.source,
            "dst": request.dst,
            "ttl": request.ttl,
            "flow": request.flow_id,
            "kind": request.kind,
            "reply": wire,
        }


class ReplayBackend(ProbeBackend):
    """Serves probes from a previously recorded probe log.

    Purely a lookup table: no simulator, no prewarm hooks, no
    observability of its own — the service layered on top supplies
    policy and counters, exactly as it would over a live backend.
    """

    name = "replay"

    def __init__(self, path: str) -> None:
        self.path = path
        self._replies: Dict[tuple, Optional[dict]] = {}
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if "schema" in record:
                    if record["schema"] != SCHEMA:
                        raise ValueError(
                            f"unsupported probe-log schema "
                            f"{record['schema']!r} in {path!r}"
                        )
                    continue
                key = (
                    record["source"],
                    record["dst"],
                    record["ttl"],
                    record["flow"],
                    record.get("kind", ECHO_REQUEST),
                )
                self._replies[key] = record.get("reply")

    def __len__(self) -> int:
        """Number of recorded exchanges available."""
        return len(self._replies)

    def submit(self, request: ProbeRequest) -> ProbeReply:
        """Look the request up; :class:`ReplayMiss` when unrecorded."""
        try:
            wire = self._replies[_key(request)]
        except KeyError:
            raise ReplayMiss(request, self.path) from None
        return reply_from_wire(wire, request.ttl)
