"""Reply sanity checks: the quarantine gate in front of the analyzers.

A real campaign receives garbage — spoofed sources, corrupt RFC 4950
label-stack entries, impossible TTLs — and feeding it to
FRPLA/RTLA/DPR/BRPR silently corrupts their statistics.
:func:`inspect_reply` decides whether one reply is trustworthy;
:class:`~repro.measure.service.ProbeService` calls it (when the
policy's ``sanitize`` flag is on) and converts offenders into
timeouts, recording each quarantined reply with its reason so reports
and the chaos soak can account for them.

The checks are structural (field ranges a well-formed ICMP reply
cannot violate) plus one semantic check — an optional
``address_validator`` that rejects responders outside the known
address space (how a campaign with an IP-to-AS view catches spoofed
sources).  A clean deterministic backend never trips any of them,
which is pinned by the zero-fault transparency tests.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.measure.backend import (
    DEST_UNREACHABLE,
    ECHO_REPLY,
    TIME_EXCEEDED,
    ProbeReply,
    ProbeRequest,
)

__all__ = [
    "MAX_MPLS_LABEL",
    "VALID_REPLY_KINDS",
    "inspect_reply",
]

#: MPLS labels are 20-bit (RFC 3032).
MAX_MPLS_LABEL = (1 << 20) - 1

#: Reply kinds a probe can legitimately produce.
VALID_REPLY_KINDS = frozenset(
    (ECHO_REPLY, TIME_EXCEEDED, DEST_UNREACHABLE)
)


def inspect_reply(
    request: ProbeRequest,
    reply: ProbeReply,
    address_validator: Optional[Callable[[int], bool]] = None,
) -> Optional[str]:
    """Why ``reply`` should be quarantined, or None when it is sane.

    Only called for replies that responded; timeouts carry nothing to
    check.  Reasons are stable short slugs — they become
    ``measure.quarantined.<reason>`` counters and the ``reason`` field
    of quarantine records.
    """
    if reply.reply_kind not in VALID_REPLY_KINDS:
        return "unknown-kind"
    if reply.responder is None:
        return "missing-responder"
    if reply.reply_ttl is not None and not 1 <= reply.reply_ttl <= 255:
        return "bogus-reply-ttl"
    if reply.rtt_ms < 0:
        return "negative-rtt"
    for entry in reply.quoted_labels:
        try:
            label, quoted_ttl = entry
        except (TypeError, ValueError):
            return "malformed-label-entry"
        if not 0 <= label <= MAX_MPLS_LABEL:
            return "bogus-label"
        if not 1 <= quoted_ttl <= 255:
            return "bogus-quoted-ttl"
    if address_validator is not None and not address_validator(
        reply.responder
    ):
        return "spoofed-source"
    return None
