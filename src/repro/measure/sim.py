"""Simulator adapter: the one module that bridges measurement plane
and dataplane.

:class:`SimBackend` satisfies the :class:`~repro.measure.backend.\
ProbeBackend` protocol by driving a
:class:`~repro.dataplane.engine.ForwardingEngine`.  It is the *only*
adapter allowed to import the engine (enforced by the
``flake8-tidy-imports`` ban in ``pyproject.toml``) — everything above
the measurement plane talks to backends, never to the simulator.

Beyond probing, the adapter re-exports the engine's trajectory-cache
hooks so the campaign's parallel prewarm keeps working without the
orchestrator ever touching the engine.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional

from repro.dataplane.engine import ForwardingEngine
from repro.measure.backend import ProbeBackend, ProbeRequest

__all__ = ["SimBackend"]


class SimBackend(ProbeBackend):
    """Probe backend over the packet-level forwarding simulator."""

    name = "sim"

    def __init__(self, engine: ForwardingEngine) -> None:
        self.engine = engine
        #: The engine's observability bundle, shared upward so probe
        #: counters land next to the engine's cache counters.
        self.obs = getattr(engine, "obs", None)

    def submit(self, request: ProbeRequest):
        """Simulate one probe; returns the engine's ``ProbeOutcome``
        (field-compatible with :class:`~repro.measure.backend.\
ProbeReply`, returned as-is to avoid a per-probe copy)."""
        source = self.engine.network.router(request.source)
        return self.engine.send_probe(
            source,
            request.dst,
            ttl=request.ttl,
            flow_id=request.flow_id,
            kind=request.kind,
        )

    def submit_batch(self, requests):
        """Simulate a whole batch through the engine's batch path.

        With a compiled plane attached the engine evaluates the batch
        through dense per-flow programs; without one it degrades to
        the scalar loop — either way replies come back in request
        order, bit-identical to serial :meth:`submit` calls.  The
        engine consumes the requests directly (duck-typed on the wire
        fields), so the adapter adds no per-probe conversion.
        """
        return self.engine.send_probe_batch(requests)

    # ------------------------------------------------------------------
    # Trajectory-cache hooks (parallel campaign prewarm)

    @property
    def trajectory_cache(self) -> bool:
        """True when the engine memoises forwarding trajectories."""
        return bool(getattr(self.engine, "trajectory_cache", False))

    def trajectory_snapshot(self) -> FrozenSet[tuple]:
        """Keys of the trajectories currently cached."""
        return frozenset(self.engine._trajectories)

    def export_trajectories(
        self, known: FrozenSet[tuple] = frozenset()
    ) -> Dict[tuple, dict]:
        """Wire-format trajectories built since ``known``."""
        return self.engine.export_trajectories(known)

    def install_trajectories(self, wires: Dict[tuple, dict]) -> int:
        """Install worker-built trajectories into the engine."""
        return self.engine.install_trajectories(wires)

    def add_invalidation_listener(
        self, listener: Callable[[], None]
    ) -> None:
        """Invoke ``listener`` whenever the control plane changes
        (cached measurement replies are stale after that)."""
        control = getattr(self.engine, "control", None)
        if control is not None:
            control.add_invalidation_listener(listener)
