"""Backend-agnostic measurement primitives.

The paper's techniques are defined over two primitives — traceroute
probes and pings — not over any particular way of emitting them.  This
module pins the contract between the analysis layers and whatever
actually sends packets: a :class:`ProbeRequest` in, a
:class:`ProbeReply` out, and a :class:`ProbeBackend` that turns one
into the other (one at a time or in batches).

Concrete backends live next door: :class:`~repro.measure.sim.\
SimBackend` drives the packet-level simulator, and
:class:`~repro.measure.replay.RecordingBackend` /
:class:`~repro.measure.replay.ReplayBackend` persist and replay probe
logs.  Nothing in this module imports the simulator — that is the
whole point.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "ECHO_REQUEST",
    "ECHO_REPLY",
    "TIME_EXCEEDED",
    "DEST_UNREACHABLE",
    "UDP_PROBE",
    "PING_TTL",
    "ProbeRequest",
    "ProbeReply",
    "ProbeBackend",
    "reply_to_wire",
    "reply_from_wire",
]

#: Probe/reply kind strings.  They mirror
#: :mod:`repro.dataplane.packet` by value, duplicated on purpose: the
#: measurement plane must stay importable without the simulator.
ECHO_REQUEST = "echo-request"
ECHO_REPLY = "echo-reply"
TIME_EXCEEDED = "time-exceeded"
DEST_UNREACHABLE = "dest-unreachable"
UDP_PROBE = "udp-probe"

#: Initial TTL for pings and UDP alias probes ("full" TTL — large
#: enough to reach anything in the simulated topologies).
PING_TTL = 64


class ProbeRequest:
    """One probe to emit, fully described.

    ``source`` is the vantage-point router *name* (a string, not a
    simulator object) so requests serialise cleanly into probe logs
    and can address any backend.

    A plain ``__slots__`` value object (compared by value, hashable)
    rather than a frozen dataclass: windowed tracerouting constructs
    one request per in-flight TTL, and the frozen ``__init__``'s
    ``object.__setattr__`` per field costs more than evaluating the
    probe through a compiled program.  Treated as immutable by every
    layer, like the replies.
    """

    __slots__ = ("source", "dst", "ttl", "flow_id", "kind")

    def __init__(
        self,
        source: str,
        dst: int,
        ttl: int,
        flow_id: int,
        kind: str = ECHO_REQUEST,
    ) -> None:
        self.source = source  #: vantage-point router name
        self.dst = dst  #: probed address
        self.ttl = ttl  #: initial IP TTL of the probe
        self.flow_id = flow_id  #: Paris flow identifier
        self.kind = kind  #: probe kind (echo-request / udp-probe)

    def _astuple(self) -> tuple:
        return (self.source, self.dst, self.ttl, self.flow_id, self.kind)

    def __eq__(self, other: object):
        if isinstance(other, ProbeRequest):
            return self._astuple() == other._astuple()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"ProbeRequest(source={self.source!r}, dst={self.dst}, "
            f"ttl={self.ttl}, flow_id={self.flow_id}, "
            f"kind={self.kind!r})"
        )


@dataclass
class ProbeReply:
    """What came back for one probe (or did not: a ``*`` hop).

    Field-compatible with the simulator's ``ProbeOutcome`` so
    composers can consume either interchangeably.
    """

    probe_ttl: int  #: TTL the probe was sent with
    reply_kind: Optional[str] = None  #: reply kind; None on timeout
    responder: Optional[int] = None  #: replying address
    responder_router: Optional[str] = None  #: ground truth, if known
    reply_ttl: Optional[int] = None  #: reply IP-TTL observed at the VP
    quoted_labels: List[Tuple[int, int]] = field(default_factory=list)
    rtt_ms: float = 0.0  #: round-trip time in milliseconds

    @property
    def responded(self) -> bool:
        """True unless the probe timed out."""
        return self.reply_kind is not None


def reply_to_wire(reply: ProbeReply) -> Optional[dict]:
    """A reply's JSON-ready wire form (None for a timeout).

    The shared codec behind every on-disk artefact that stores
    replies — probe logs (:mod:`repro.measure.replay`) and campaign
    stores (:mod:`repro.store`).  The probe TTL is carried by the
    surrounding record, not the wire dict, so formats that already
    know it (a probe-log entry keys on it) don't repeat it.
    """
    if reply.reply_kind is None:
        return None
    return {
        "kind": reply.reply_kind,
        "responder": reply.responder,
        "router": reply.responder_router,
        "ttl": reply.reply_ttl,
        "labels": [list(pair) for pair in reply.quoted_labels],
        "rtt": reply.rtt_ms,
    }


def reply_from_wire(wire: Optional[dict], probe_ttl: int) -> ProbeReply:
    """Rebuild a reply from :func:`reply_to_wire` output."""
    if wire is None:
        return ProbeReply(probe_ttl=probe_ttl)
    return ProbeReply(
        probe_ttl=probe_ttl,
        reply_kind=wire["kind"],
        responder=wire["responder"],
        responder_router=wire.get("router"),
        reply_ttl=wire.get("ttl"),
        quoted_labels=[
            tuple(pair) for pair in (wire.get("labels") or [])
        ],
        rtt_ms=float(wire.get("rtt", 0.0)),
    )


class ProbeBackend(ABC):
    """Turns probe requests into replies.

    Subclasses implement :meth:`submit`; everything else has a default
    built on it.  Backends that can amortise per-probe overhead (a
    live scamper driver, a batched socket pool) override
    :meth:`submit_batch` too.
    """

    #: Short backend identifier, recorded in probe-log headers.
    name = "backend"

    @abstractmethod
    def submit(self, request: ProbeRequest) -> ProbeReply:
        """Emit one probe and return its reply (always returns — a
        timeout is a reply with ``reply_kind=None``)."""

    def submit_batch(
        self, requests: Sequence[ProbeRequest]
    ) -> List[ProbeReply]:
        """Emit several probes; replies in request order."""
        return [self.submit(request) for request in requests]

    # ------------------------------------------------------------------
    # Conveniences — the protocol surface the composers talk to.

    def traceroute_probe(
        self, source: str, dst: int, ttl: int, flow_id: int
    ) -> ProbeReply:
        """One TTL-limited echo-request (a traceroute hop probe)."""
        return self.submit(
            ProbeRequest(source, dst, ttl, flow_id, ECHO_REQUEST)
        )

    def ping_probe(
        self, source: str, dst: int, flow_id: int, ttl: int = PING_TTL
    ) -> ProbeReply:
        """One full-TTL echo-request (a fingerprinting ping)."""
        return self.submit(
            ProbeRequest(source, dst, ttl, flow_id, ECHO_REQUEST)
        )

    def udp_probe(
        self, source: str, dst: int, flow_id: int, ttl: int = PING_TTL
    ) -> ProbeReply:
        """One Mercator-style UDP probe to an unused port."""
        return self.submit(
            ProbeRequest(source, dst, ttl, flow_id, UDP_PROBE)
        )

    def traceroute_batch(
        self, requests: Sequence[ProbeRequest]
    ) -> List[ProbeReply]:
        """Batch variant of :meth:`traceroute_probe`."""
        return self.submit_batch(list(requests))

    def ping_batch(
        self, requests: Sequence[ProbeRequest]
    ) -> List[ProbeReply]:
        """Batch variant of :meth:`ping_probe`."""
        return self.submit_batch(list(requests))

    def close(self) -> None:
        """Release backend resources (file handles, sockets)."""
