"""repro.measure — the backend-agnostic measurement plane.

Separates *what* the paper's techniques measure (traceroute hops,
pings) from *how* probes are emitted:

* :mod:`repro.measure.backend` — the :class:`ProbeBackend` protocol
  plus the request/reply dataclasses;
* :mod:`repro.measure.service` — :class:`ProbeService`, the policy
  layer (budgets, retries, deadlines, response caching);
* :mod:`repro.measure.sim` — :class:`SimBackend`, the one adapter
  that drives the packet-level simulator;
* :mod:`repro.measure.replay` — JSONL probe-log record/replay;
* :mod:`repro.measure.sanitize` — reply sanity checks feeding the
  service's quarantine (the graceful-degradation gate in front of
  FRPLA/RTLA/DPR/BRPR).

The composer (:class:`repro.probing.prober.Prober`) and everything
above it depend only on this package; the simulator is an
implementation detail behind :class:`SimBackend`.
"""

from repro.measure.backend import (
    DEST_UNREACHABLE,
    ECHO_REPLY,
    ECHO_REQUEST,
    PING_TTL,
    TIME_EXCEEDED,
    UDP_PROBE,
    ProbeBackend,
    ProbeReply,
    ProbeRequest,
    reply_from_wire,
    reply_to_wire,
)
from repro.measure.replay import (
    RecordingBackend,
    ReplayBackend,
    ReplayMiss,
)
from repro.measure.sanitize import (
    MAX_MPLS_LABEL,
    VALID_REPLY_KINDS,
    inspect_reply,
)
from repro.measure.service import (
    BudgetExceeded,
    MeasurementPolicy,
    ProbeService,
    TraceBudget,
)
from repro.measure.sim import SimBackend

__all__ = [
    "DEST_UNREACHABLE",
    "ECHO_REPLY",
    "ECHO_REQUEST",
    "MAX_MPLS_LABEL",
    "PING_TTL",
    "TIME_EXCEEDED",
    "UDP_PROBE",
    "VALID_REPLY_KINDS",
    "BudgetExceeded",
    "MeasurementPolicy",
    "ProbeBackend",
    "ProbeReply",
    "ProbeRequest",
    "ProbeService",
    "RecordingBackend",
    "ReplayBackend",
    "ReplayMiss",
    "SimBackend",
    "TraceBudget",
    "as_probe_service",
    "inspect_reply",
    "reply_from_wire",
    "reply_to_wire",
]


def as_probe_service(probing, policy=None, obs=None) -> ProbeService:
    """Coerce ``probing`` into a :class:`ProbeService`.

    Accepts a ready service (returned as-is, with ``policy``/``obs``
    applied when given), any :class:`ProbeBackend` (wrapped in a new
    service), or a bare forwarding engine (wrapped in a
    :class:`SimBackend` first — the backward-compatible path for
    ``Prober(engine)`` callers).
    """
    if isinstance(probing, ProbeService):
        if policy is not None:
            probing.policy = policy
        if obs is not None:
            probing.obs = obs
        return probing
    if hasattr(probing, "submit"):
        return ProbeService(probing, policy=policy, obs=obs)
    if hasattr(probing, "send_probe"):
        return ProbeService(SimBackend(probing), policy=policy, obs=obs)
    raise TypeError(
        f"cannot build a ProbeService from {type(probing).__name__}: "
        "expected a ProbeService, a ProbeBackend, or a forwarding "
        "engine"
    )
