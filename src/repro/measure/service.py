"""ProbeService: cross-cutting measurement policy over any backend.

The service owns everything a real campaign has to care about beyond
"send a probe": per-campaign and per-technique probe budgets,
retry-with-backoff on timeouts, per-probe and per-trace deadlines,
and a response cache that stops the pipeline from re-probing addresses
it already measured.  Composers (:class:`~repro.probing.prober.\
Prober`) and the techniques talk to the service; the service talks to
a :class:`~repro.measure.backend.ProbeBackend`.

Everything the service does is deterministic given a deterministic
backend — budgets count probes, deadlines count *simulated*
measurement milliseconds (reply RTTs), and the cache is keyed on the
request — so its ``measure.*`` counters belong to the measurement
namespace of :func:`repro.obs.measurement_counters` and stay invariant
across execution strategies (serial vs. parallel prewarm, live vs.
replay).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.measure.backend import (
    ECHO_REQUEST,
    PING_TTL,
    UDP_PROBE,
    ProbeBackend,
    ProbeReply,
    ProbeRequest,
    reply_from_wire,
    reply_to_wire,
)
from repro.measure.sanitize import inspect_reply
from repro.obs import DEBUG, Obs

__all__ = [
    "BudgetExceeded",
    "MeasurementPolicy",
    "TraceBudget",
    "ProbeService",
]


class BudgetExceeded(RuntimeError):
    """A probe would exceed a configured probe budget.

    Carries the offending scope (``"campaign"`` for the global
    budget), the configured limit, and the probes already spent — so
    orchestrators can report a clean partial result.
    """

    def __init__(self, scope: str, budget: int, spent: int) -> None:
        super().__init__(
            f"probe budget exhausted in scope {scope!r}: "
            f"{spent} of {budget} probes spent"
        )
        self.scope = scope  #: budget scope that tripped
        self.budget = budget  #: configured probe limit
        self.spent = spent  #: probes already charged to the scope


@dataclass(frozen=True)
class MeasurementPolicy:
    """Declarative measurement policy, consumed by the service.

    The defaults are maximally permissive — no budgets, no retries, no
    deadlines, no caching — so a bare service behaves exactly like the
    backend underneath it.  Campaigns install their policy via
    :meth:`ProbeService.configure`.
    """

    #: Global probe budget; None = unlimited.
    probe_budget: Optional[int] = None
    #: Per-scope probe budgets, e.g. ``{"revelation": 500}``.  A scope
    #: is entered via :meth:`ProbeService.scope`; nested scopes all
    #: charge.  None = no per-scope limits.
    scope_budgets: Optional[Mapping[str, int]] = None
    #: Retries per probe when the reply times out (``*`` hop).
    max_retries: int = 0
    #: Base wall-clock backoff between retries, doubled per attempt.
    #: 0 disables sleeping (the right setting for the simulator).
    retry_backoff_ms: float = 0.0
    #: Replies slower than this (simulated RTT, ms) count as timeouts.
    probe_deadline_ms: Optional[float] = None
    #: Cap on cumulative reply RTT per trace (simulated ms); the
    #: composer truncates the trace once exceeded.
    trace_deadline_ms: Optional[float] = None
    #: Response-cache mode: ``"off"`` (default), ``"ping"`` (cache
    #: full-TTL echo replies, keyed ``(source, dst, flow)``), or
    #: ``"all"`` (additionally cache per-TTL traceroute replies).
    cache_mode: str = "off"
    #: Run :func:`repro.measure.sanitize.inspect_reply` on every
    #: responded reply and quarantine offenders (they become
    #: timeouts; the analyzers never see them).
    sanitize: bool = False
    #: Optional responder-address validator for the sanitizer's
    #: spoofed-source check (e.g. ``asn_of(addr) is not None``).
    address_validator: Optional[Callable[[int], bool]] = None


class TraceBudget:
    """Per-trace deadline accumulator (simulated milliseconds).

    Handed out by :meth:`ProbeService.begin_trace`; the service
    charges each reply's RTT against it and the composer stops the
    trace once :attr:`expired`.
    """

    __slots__ = ("limit_ms", "spent_ms")

    def __init__(self, limit_ms: float) -> None:
        self.limit_ms = limit_ms  #: deadline, in simulated ms
        self.spent_ms = 0.0  #: cumulative reply RTT charged so far

    @property
    def expired(self) -> bool:
        """True once the cumulative RTT reached the deadline."""
        return self.spent_ms >= self.limit_ms

    def charge(self, rtt_ms: float) -> None:
        """Charge one reply's RTT against the deadline."""
        self.spent_ms += rtt_ms


class ProbeService:
    """Budgeted, retrying, caching front end over a probe backend.

    One service per measurement stack: the prober, the techniques, and
    the orchestrator all submit through it, so budgets and the
    response cache see every probe.  The service shares the backend's
    observability bundle when it has one, keeping ``measure.*`` and
    ``probe.*`` counters in the same registry as everything else.
    """

    def __init__(
        self,
        backend: ProbeBackend,
        policy: Optional[MeasurementPolicy] = None,
        obs: Optional[Obs] = None,
    ) -> None:
        self.backend = backend
        self.policy = policy or MeasurementPolicy()
        #: Observability bundle (backend's, unless overridden).
        self.obs: Obs = obs or getattr(backend, "obs", None) or Obs()
        #: Probes actually submitted to the backend (cache hits and
        #: budget denials do not count).
        self.probes_sent = 0
        self._scopes: List[str] = []
        self._scope_spent: Dict[str, int] = {}
        self._cache: Dict[tuple, ProbeReply] = {}
        #: Quarantined-reply records (insertion order), each a
        #: JSON-ready dict with the probe identity and the reason.
        self._quarantine: List[Dict[str, object]] = []
        self._unmetered = False
        # Backends wrapping a simulator invalidate cached replies when
        # the control plane changes under them.
        register = getattr(backend, "add_invalidation_listener", None)
        if callable(register):
            register(self.flush_cache)

    # ------------------------------------------------------------------
    # Policy management

    def configure(self, **overrides: object) -> MeasurementPolicy:
        """Replace policy fields in place; returns the new policy."""
        self.policy = replace(self.policy, **overrides)
        return self.policy

    def exempt_budgets(self) -> None:
        """Stop enforcing budgets on this service instance.

        Used by forked prewarm workers: they inherit the parent's
        spend counters but their probes warm caches rather than
        consume the campaign's budget.
        """
        self._unmetered = True

    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        """Enter a named budget scope (technique or campaign phase).

        Probes submitted inside charge the scope's budget (if one is
        configured in :attr:`MeasurementPolicy.scope_budgets`); scopes
        nest, and every active scope is charged.
        """
        self._scopes.append(name)
        try:
            yield
        finally:
            self._scopes.pop()

    def scope_spent(self, name: str) -> int:
        """Probes charged to scope ``name`` so far."""
        return self._scope_spent.get(name, 0)

    # ------------------------------------------------------------------
    # Single-probe API (the composer surface)

    def traceroute_probe(
        self,
        source: str,
        dst: int,
        ttl: int,
        flow_id: int,
        trace_budget: Optional[TraceBudget] = None,
    ) -> ProbeReply:
        """One TTL-limited echo-request, under full policy."""
        request = ProbeRequest(source, dst, ttl, flow_id, ECHO_REQUEST)
        key = None
        if self.policy.cache_mode == "all":
            key = ("probe", source, dst, flow_id, ttl)
            cached = self._cache.get(key)
            if cached is not None:
                return self._serve_cached(request, cached, trace_budget)
        reply = self._submit_with_retries(
            request, "traceroute", trace_budget
        )
        if key is not None:
            self._cache[key] = reply
        if trace_budget is not None:
            self._charge_trace(trace_budget, reply)
        return reply

    def ping_probe(
        self, source: str, dst: int, flow_id: int, ttl: int = PING_TTL
    ) -> ProbeReply:
        """One full-TTL echo-request, under full policy.

        With caching enabled, a repeated ping of the same
        ``(source, dst, flow)`` is served from the cache — including
        replies seeded from a destination-reached traceroute, which in
        a deterministic dataplane are byte-identical to what a fresh
        ping would observe.
        """
        request = ProbeRequest(source, dst, ttl, flow_id, ECHO_REQUEST)
        key = self._ping_key(request)
        if key is not None:
            cached = self._cache.get(key)
            if cached is not None:
                return self._serve_cached(request, cached, None)
        reply = self._submit_with_retries(request, "ping")
        if key is not None:
            self._cache[key] = reply
        return reply

    def udp_probe(
        self, source: str, dst: int, flow_id: int, ttl: int = PING_TTL
    ) -> ProbeReply:
        """One UDP alias probe, under budget/retry policy (uncached)."""
        request = ProbeRequest(source, dst, ttl, flow_id, UDP_PROBE)
        return self._submit_with_retries(request, "udp")

    def seed_ping(
        self, source: str, dst: int, flow_id: int, reply: ProbeReply
    ) -> None:
        """Pre-populate the ping cache from an equivalent observation.

        A traceroute that reached its destination already holds the
        destination's echo-reply; seeding it here lets a later ping of
        the same ``(source, dst, flow)`` skip the wire entirely.  A
        no-op unless ping caching is enabled.
        """
        key = self._ping_key(
            ProbeRequest(source, dst, PING_TTL, flow_id, ECHO_REQUEST)
        )
        if key is not None and key not in self._cache:
            self._cache[key] = reply
            self.obs.metrics.inc("measure.cache.seeded")

    def begin_trace(self) -> Optional[TraceBudget]:
        """A fresh per-trace deadline, or None when unconfigured."""
        limit = self.policy.trace_deadline_ms
        return None if limit is None else TraceBudget(limit)

    # ------------------------------------------------------------------
    # Batch API

    def traceroute_batch(
        self,
        requests: Sequence[ProbeRequest],
        trace_budget: Optional[TraceBudget] = None,
    ) -> List[ProbeReply]:
        """Batch traceroute probes under full policy.

        The uncached remainder is budget-checked all-or-nothing, then
        submitted through the backend's batch path; timeouts are
        retried individually afterwards.  Replies charge
        ``trace_budget`` exactly as per-probe submissions would.
        """
        keyer: Optional[Callable[[ProbeRequest], Optional[tuple]]] = (
            (lambda r: ("probe", r.source, r.dst, r.flow_id, r.ttl))
            if self.policy.cache_mode == "all"
            else None
        )
        return self._batch(requests, "traceroute", keyer, trace_budget)

    def ping_batch(
        self, requests: Sequence[ProbeRequest]
    ) -> List[ProbeReply]:
        """Batch pings under full policy (cache served first)."""
        keyer = (
            self._ping_key
            if self.policy.cache_mode in ("ping", "all")
            else None
        )
        return self._batch(requests, "ping", keyer)

    # ------------------------------------------------------------------
    # Cache management

    def flush_cache(self) -> None:
        """Drop every cached reply (e.g. after topology changes)."""
        if self._cache:
            self.obs.metrics.inc("measure.cache.flushes")
        self._cache.clear()

    @property
    def cached_replies(self) -> int:
        """Number of replies currently cached."""
        return len(self._cache)

    # ------------------------------------------------------------------
    # Quarantine (see :mod:`repro.measure.sanitize`)

    @property
    def quarantine_records(self) -> List[Dict[str, object]]:
        """The quarantined-reply records accumulated so far."""
        return list(self._quarantine)

    def clear_quarantine(self) -> None:
        """Drop every quarantine record (start of a fresh run)."""
        self._quarantine.clear()

    def export_quarantine(
        self, known: int = 0
    ) -> List[Dict[str, object]]:
        """Records appended since the first ``known`` (for
        delta-style checkpoint exports)."""
        return [dict(record) for record in self._quarantine[known:]]

    def import_quarantine(
        self, entries: Sequence[Mapping[str, object]]
    ) -> int:
        """Append entries exported by :meth:`export_quarantine`."""
        for entry in entries:
            self._quarantine.append(dict(entry))
        return len(entries)

    # ------------------------------------------------------------------
    # Checkpointable state (consumed by :mod:`repro.store`)

    def state_snapshot(self) -> Dict[str, object]:
        """The service's budget accounting as a JSON-ready dict.

        Captures exactly what a resumed campaign must restore for its
        budgets to continue where the interrupted run stopped:
        probes already sent, the per-scope spend, and — when the
        backend injects scheduled faults — the backend's fault clock.
        Policy is *not* included — the resuming campaign installs its
        own.
        """
        state: Dict[str, object] = {
            "probes_sent": self.probes_sent,
            "scope_spent": dict(self._scope_spent),
        }
        fault_state = getattr(self.backend, "fault_state", None)
        if callable(fault_state):
            state["backend"] = fault_state()
        return state

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Restore accounting saved by :meth:`state_snapshot`."""
        self.probes_sent = int(state.get("probes_sent", 0))
        self._scope_spent = {
            str(scope): int(spent)
            for scope, spent in dict(
                state.get("scope_spent") or {}
            ).items()
        }
        restore = getattr(self.backend, "restore_fault_state", None)
        if callable(restore) and isinstance(
            state.get("backend"), Mapping
        ):
            restore(state["backend"])

    def cache_keys(self) -> frozenset:
        """The keys currently cached (for delta-style exports)."""
        return frozenset(self._cache)

    def export_cache(
        self, known: Optional[frozenset] = None
    ) -> List[Dict[str, object]]:
        """Serialize cached replies as JSON-ready entries.

        With ``known`` given, only entries whose key is *not* in it
        are exported — callers that persist the cache incrementally
        (checkpoint records) track the keys they already wrote and
        ship deltas.  Ordering is deterministic (sorted keys).
        """
        entries = []
        for key in sorted(
            k for k in self._cache if known is None or k not in known
        ):
            reply = self._cache[key]
            entries.append(
                {
                    "key": list(key),
                    "probe_ttl": reply.probe_ttl,
                    "reply": reply_to_wire(reply),
                }
            )
        return entries

    def import_cache(
        self, entries: Sequence[Mapping[str, object]]
    ) -> int:
        """Install entries exported by :meth:`export_cache`.

        Returns the number of replies installed.  Existing keys are
        overwritten — in a deterministic stack the replies are
        identical anyway.
        """
        installed = 0
        for entry in entries:
            key = tuple(entry["key"])
            self._cache[key] = reply_from_wire(
                entry.get("reply"), int(entry["probe_ttl"])
            )
            installed += 1
        return installed

    # ------------------------------------------------------------------
    # Internals

    def _ping_key(self, request: ProbeRequest) -> Optional[tuple]:
        """Cache key for a ping (None when ping caching is off).

        Keyed on ``(source, dst, flow)`` but not the TTL: a full-TTL
        echo exchange looks the same whatever headroom the probe had.
        The source is part of the key on purpose — flow identifiers
        are only 16 bits, and two vantage points may collide on one.
        """
        if self.policy.cache_mode not in ("ping", "all"):
            return None
        return ("ping", request.source, request.dst, request.flow_id)

    def _serve_cached(
        self,
        request: ProbeRequest,
        reply: ProbeReply,
        trace_budget: Optional[TraceBudget],
    ) -> ProbeReply:
        """Account one cache hit and return the stored reply."""
        self.obs.metrics.inc("measure.cache.hits")
        events = self.obs.events
        if events.debug:
            events.emit(
                "measure.cache.hit", DEBUG, vp=request.source,
                dst=request.dst, flow=request.flow_id,
            )
        if trace_budget is not None:
            self._charge_trace(trace_budget, reply)
        return reply

    def _charge_budget(self, count: int = 1) -> None:
        """Raise :class:`BudgetExceeded` if ``count`` more probes
        would overrun the global or any active scope budget."""
        if self._unmetered:
            return
        policy = self.policy
        if (
            policy.probe_budget is not None
            and self.probes_sent + count > policy.probe_budget
        ):
            self._deny("campaign", policy.probe_budget, self.probes_sent)
        budgets = policy.scope_budgets
        if budgets:
            # dict.fromkeys dedupes re-entered scope names (a technique
            # scope nested inside the same-named phase scope) while
            # keeping entry order for deterministic denial reporting.
            for scope in dict.fromkeys(self._scopes):
                limit = budgets.get(scope)
                spent = self._scope_spent.get(scope, 0)
                if limit is not None and spent + count > limit:
                    self._deny(scope, limit, spent)

    def _deny(self, scope: str, budget: int, spent: int) -> None:
        """Record and raise one budget denial."""
        self.obs.metrics.inc("measure.budget.denied")
        events = self.obs.events
        if events.info:
            events.emit(
                "measure.budget.denied", scope=scope, budget=budget,
                spent=spent,
            )
        raise BudgetExceeded(scope, budget, spent)

    def _account(self, request: ProbeRequest, probe: str) -> None:
        """Charge budgets and record counters for one submission."""
        self._charge_budget()
        self.probes_sent += 1
        for scope in dict.fromkeys(self._scopes):
            self._scope_spent[scope] = (
                self._scope_spent.get(scope, 0) + 1
            )
        metrics = self.obs.metrics
        metrics.inc("measure.probes")
        metrics.inc("probe.sent." + probe)
        events = self.obs.events
        if events.debug:
            events.emit(
                "probe.sent", DEBUG, vp=request.source,
                dst=request.dst, ttl=request.ttl,
                flow=request.flow_id, probe=probe,
            )

    def _account_batch(
        self, requests: Sequence[ProbeRequest], probe: str
    ) -> None:
        """Bulk :meth:`_account`: same totals, O(1) counter bumps.

        The caller has already admitted the whole batch via
        :meth:`_charge_budget`, so per-probe re-checks (which could
        never trip after an all-or-nothing admission) are skipped.
        """
        count = len(requests)
        if not count:
            return
        self.probes_sent += count
        if self._scopes:
            for scope in dict.fromkeys(self._scopes):
                self._scope_spent[scope] = (
                    self._scope_spent.get(scope, 0) + count
                )
        metrics = self.obs.metrics
        metrics.inc("measure.probes", count)
        metrics.inc("probe.sent." + probe, count)
        events = self.obs.events
        if events.debug:
            for request in requests:
                events.emit(
                    "probe.sent", DEBUG, vp=request.source,
                    dst=request.dst, ttl=request.ttl,
                    flow=request.flow_id, probe=probe,
                )

    def _observe_reply(
        self, request: ProbeRequest, reply: ProbeReply
    ) -> ProbeReply:
        """Apply deadline + sanity checks, record reply counters."""
        reply = self._enforce_probe_deadline(reply)
        if self.policy.sanitize and reply.reply_kind is not None:
            reason = inspect_reply(
                request, reply, self.policy.address_validator
            )
            if reason is not None:
                reply = self._quarantine_reply(request, reply, reason)
        kind = reply.reply_kind or "none"
        self.obs.metrics.inc("probe.reply." + kind)
        events = self.obs.events
        if events.debug:
            events.emit(
                "probe.reply", DEBUG, vp=request.source,
                dst=request.dst, ttl=request.ttl, reply=kind,
                responder=reply.responder,
            )
        return reply

    def _enforce_probe_deadline(self, reply: ProbeReply) -> ProbeReply:
        """Turn an over-deadline reply into a timeout."""
        limit = self.policy.probe_deadline_ms
        if (
            limit is not None
            and reply.reply_kind is not None
            and reply.rtt_ms > limit
        ):
            self.obs.metrics.inc("measure.deadline.probe")
            return ProbeReply(probe_ttl=reply.probe_ttl)
        return reply

    def _quarantine_reply(
        self, request: ProbeRequest, reply: ProbeReply, reason: str
    ) -> ProbeReply:
        """Record one anomalous reply and convert it to a timeout.

        The record order is the probe order, which is deterministic,
        so the quarantine log takes part in the checkpoint/resume
        bit-identity contract like any other measurement artefact.
        """
        self._quarantine.append(
            {
                "vp": request.source,
                "dst": request.dst,
                "ttl": request.ttl,
                "flow": request.flow_id,
                "reason": reason,
                "responder": reply.responder,
                "kind": reply.reply_kind,
            }
        )
        metrics = self.obs.metrics
        metrics.inc("measure.quarantined")
        metrics.inc("measure.quarantined." + reason)
        events = self.obs.events
        if events.info:
            events.emit(
                "measure.quarantine", reason=reason,
                vp=request.source, dst=request.dst, ttl=request.ttl,
                responder=reply.responder,
            )
        return ProbeReply(probe_ttl=reply.probe_ttl)

    def _attempt(self, request: ProbeRequest, probe: str) -> ProbeReply:
        """One accounted submission through the backend."""
        self._account(request, probe)
        return self._observe_reply(request, self.backend.submit(request))

    def _submit_with_retries(
        self,
        request: ProbeRequest,
        probe: str,
        trace_budget: Optional[TraceBudget] = None,
    ) -> ProbeReply:
        """Submit, retrying timeouts up to ``max_retries`` times."""
        reply = self._attempt(request, probe)
        return self._retry_timeouts(request, reply, probe, trace_budget)

    def _retry_timeouts(
        self,
        request: ProbeRequest,
        reply: ProbeReply,
        probe: str,
        trace_budget: Optional[TraceBudget] = None,
    ) -> ProbeReply:
        """The shared retry tail: re-probe while the reply is a ``*``.

        Each retry's backoff charges the active trace deadline (the
        time a real prober would have waited before the re-probe), and
        an already-expired deadline stops the retry loop — retries can
        no longer overshoot a per-trace deadline.
        """
        attempt = 0
        while (
            reply.reply_kind is None
            and attempt < self.policy.max_retries
        ):
            if trace_budget is not None and trace_budget.expired:
                break
            self.obs.metrics.inc("measure.retries")
            delay_ms = self._backoff(attempt)
            if trace_budget is not None and delay_ms > 0:
                already = trace_budget.expired
                trace_budget.charge(delay_ms)
                if trace_budget.expired and not already:
                    self.obs.metrics.inc("measure.deadline.trace")
            attempt += 1
            reply = self._attempt(request, probe)
        if (
            reply.reply_kind is None
            and self.policy.max_retries > 0
            and attempt >= self.policy.max_retries
        ):
            self.obs.metrics.inc("measure.retries_exhausted")
        return reply

    def _backoff(self, attempt: int) -> float:
        """Exponential wall-clock backoff (no-op at 0 ms base).

        Returns the delay in milliseconds so callers can charge it to
        simulated-time deadlines.
        """
        delay_ms = self.policy.retry_backoff_ms * (2 ** attempt)
        if delay_ms > 0:
            time.sleep(delay_ms / 1000.0)
        return delay_ms

    def _charge_trace(
        self, budget: TraceBudget, reply: ProbeReply
    ) -> None:
        """Charge a reply's measurement time to a trace deadline.

        Timeouts charge the probe deadline (the time a real prober
        would have waited) when one is configured, nothing otherwise.
        """
        already = budget.expired
        if reply.reply_kind is not None:
            budget.charge(reply.rtt_ms)
        elif self.policy.probe_deadline_ms is not None:
            budget.charge(self.policy.probe_deadline_ms)
        if budget.expired and not already:
            self.obs.metrics.inc("measure.deadline.trace")

    def _batch(
        self,
        requests: Sequence[ProbeRequest],
        probe: str,
        keyer: Optional[Callable[[ProbeRequest], Optional[tuple]]],
        trace_budget: Optional[TraceBudget] = None,
    ) -> List[ProbeReply]:
        """Shared batch path: cache, budget, batch-submit, retry.

        ``keyer`` is None when response caching cannot apply — the
        whole batch is then pending without a per-request key call.
        """
        policy = self.policy
        # With no probe deadline, no sanitizer, and no debug sink, the
        # per-reply observation reduces to one counter bump per kind.
        per_reply = (
            policy.probe_deadline_ms is not None
            or policy.sanitize
            or self.obs.events.debug
        )
        retries = policy.max_retries
        if (
            keyer is None
            and trace_budget is None
            and not per_reply
            and not retries
        ):
            # Nothing per-reply to do: admit, account, submit, count.
            if type(requests) is not list:
                requests = list(requests)
            self._charge_budget(len(requests))
            self._account_batch(requests, probe)
            # Backends return a fresh list per call — no defensive copy.
            raw = self.backend.submit_batch(requests)
            kind_counts: Dict[str, int] = {}
            for reply in raw:
                kind = reply.reply_kind or "none"
                kind_counts[kind] = kind_counts.get(kind, 0) + 1
            inc = self.obs.metrics.inc
            for kind, total in kind_counts.items():
                inc("probe.reply." + kind, total)
            return raw
        requests = list(requests)
        replies: List[Optional[ProbeReply]] = [None] * len(requests)
        pending: List[Tuple[int, Optional[tuple]]] = []
        if keyer is None:
            pending = [(index, None) for index in range(len(requests))]
        else:
            for index, request in enumerate(requests):
                key = keyer(request)
                if key is not None:
                    cached = self._cache.get(key)
                    if cached is not None:
                        replies[index] = self._serve_cached(
                            request, cached, trace_budget
                        )
                        continue
                pending.append((index, key))
        # All-or-nothing admission: refuse the whole remainder rather
        # than submit a prefix the budget cannot cover.
        self._charge_budget(len(pending))
        submitted = [requests[index] for index, _ in pending]
        self._account_batch(submitted, probe)
        raw = self.backend.submit_batch(submitted)
        kind_counts = {}
        for (index, key), reply in zip(pending, raw):
            request = requests[index]
            if per_reply:
                reply = self._observe_reply(request, reply)
            else:
                kind = reply.reply_kind or "none"
                kind_counts[kind] = kind_counts.get(kind, 0) + 1
            if reply.reply_kind is None and retries:
                reply = self._retry_timeouts(
                    request, reply, probe, trace_budget
                )
            if key is not None:
                self._cache[key] = reply
            if trace_budget is not None:
                self._charge_trace(trace_budget, reply)
            replies[index] = reply
        if kind_counts:
            inc = self.obs.metrics.inc
            for kind, total in kind_counts.items():
                inc("probe.reply." + kind, total)
        return replies
