"""``repro.fleet`` — fault-tolerant fleets of monitor chains.

One monitor chain (:mod:`repro.monitor`) tracks one churning
internet.  A production deployment runs *many* — and expects them to
survive crashes.  This package supplies that layer:

* :class:`FleetSupervisor` / :class:`ChainWorker` — N concurrent
  chains over one shared rendered topology, each churning a private
  **copy-on-churn** twin checked out of the serve-layer snapshot
  registry (one ``internet_build`` per fleet, frozen-snapshot
  guarantees intact for served tenants);
* supervision — per-chain probe-tick watchdogs
  (:class:`WatchdogExpired`), injected hard kills
  (:class:`WorkerKilled`), exponential-backoff restarts resuming
  bit-identically from campaign checkpoints, and a restart-budget
  breaker that *parks* a repeatedly dying chain, downgrading the
  fleet's data-quality grade instead of failing the run;
* graceful drain — :meth:`FleetSupervisor.request_drain` finishes
  in-flight epochs and persists resumable state (the CLI wires it
  to SIGTERM);
* aggregation + alerting — the warehouse folds into one
  ``repro.fleet/1`` document (:mod:`repro.store.fleet`): per-AS
  churn baselines and deterministic churn-spike alerts.

Counters live under the ``fleet.*`` family (execution events only:
restarts and kills must never leak into measurement counters).
"""

from repro.fleet.supervisor import (
    ChainOutcome,
    ChainWorker,
    FleetConfig,
    FleetReport,
    FleetSupervisor,
    WatchdogExpired,
    WorkerKilled,
)

__all__ = [
    "ChainOutcome",
    "ChainWorker",
    "FleetConfig",
    "FleetReport",
    "FleetSupervisor",
    "WatchdogExpired",
    "WorkerKilled",
]
