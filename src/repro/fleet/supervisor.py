"""The fleet supervisor: N monitor chains, supervised end to end.

One :class:`FleetSupervisor` runs ``chains`` concurrent monitor
chains (:class:`~repro.monitor.loop.MonitorLoop`) over one shared
warehouse and one shared rendered topology.  Three layers make it a
*fleet* rather than a for-loop:

**Copy-on-churn.**  Each chain checks a private, unfrozen twin of
the shared frozen render out of the serve-layer
:class:`~repro.serve.registry.SnapshotRegistry`
(:meth:`~repro.serve.registry.SnapshotRegistry.checkout`), so the
expensive ``internet_build`` is paid once per fleet while every
chain still churns its own topology — lifting the old restriction
that churn needs a freshly built private internet.  Served tenants
attached to the same render keep their
:class:`~repro.net.topology.FrozenNetworkError` guarantees.

**Supervision.**  Each chain runs under a harness that counts every
probe its campaign submits: a *watchdog* (simulated clock — probe
ticks, not wall time) kills an epoch that exceeds
``epoch_deadline`` probes, and a kill plan injects one-shot
:class:`WorkerKilled` crashes for fault drills.  A killed chain is
restarted with exponential backoff from its PR-4 checkpoints — each
attempt on a **fresh** twin, because the monitor loop replays
completed epochs' churn and a reused twin would double-apply it —
and converges to timelines byte-identical to an unfailed run
(pinned by test).  A chain that dies more than ``restart_budget``
times is *parked*: the fleet keeps going and the parked chain's
missing epochs downgrade the fleet's data-quality grade
(:func:`repro.campaign.degrade.assess_fleet_quality`) instead of
failing the run.

**Drain + aggregation.**  :meth:`FleetSupervisor.request_drain` is
signal-handler safe (the ``repro fleet`` CLI wires it to SIGTERM,
mirroring :meth:`repro.serve.server.CampaignServer.drain`): every
chain finishes its in-flight epoch, persists resumable state, and
stops at the next epoch boundary.  Whatever the chains leave in the
warehouse, the supervisor folds into one ``repro.fleet/1`` document
(:func:`repro.store.fleet.fold_fleet`) — per-AS churn baselines and
deterministic churn-spike alerts included — and writes it as
``fleet.json``.  The document is a pure function of warehouse
content; restarts, backoff and kills live only in the
:class:`FleetReport` ledger and the ``fleet.*`` counters.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.monitor.loop import MonitorConfig, MonitorLoop, chain_id
from repro.obs import Obs
from repro.serve.registry import SnapshotRegistry, TopologySpec
from repro.store.fleet import fold_fleet
from repro.store.layout import write_json
from repro.synth.churn import ChurnProfile

__all__ = [
    "ChainOutcome",
    "ChainWorker",
    "FleetConfig",
    "FleetReport",
    "FleetSupervisor",
    "WatchdogExpired",
    "WorkerKilled",
]


class WorkerKilled(RuntimeError):
    """A chain worker was killed mid-epoch (injected fault drill)."""


class WatchdogExpired(RuntimeError):
    """A chain's epoch exceeded its probe deadline (simulated clock)."""


class _ChainHarness:
    """Probe-counting supervision shim around a chain's backend.

    Installed via :class:`~repro.monitor.loop.MonitorLoop`'s
    ``backend_wrapper`` hook, so it wraps *outermost* and sees every
    probe the campaign submits (fault-injected ones included).  Two
    jobs:

    * **kill switch** — raise :class:`WorkerKilled` once the
      cumulative probe count reaches ``kill_after`` (one-shot: the
      switch disarms after firing, and a restarted attempt gets a
      fresh harness without one);
    * **watchdog** — raise :class:`WatchdogExpired` when a single
      epoch submits more than ``epoch_deadline`` probes.  The clock
      is *simulated* (probe ticks, not wall time) so deadline
      behaviour is deterministic and testable; the supervisor resets
      it at every epoch boundary via :meth:`start_epoch`.  Restarts
      make progress because resumed epochs replay completed records
      with ~zero live probes.

    Both exceptions deliberately escape ``Campaign.run`` (which
    catches only budget stops), leaving a valid flushed checkpoint
    prefix behind — that is the whole crash-recovery contract.
    """

    def __init__(
        self,
        kill_after: Optional[int] = None,
        epoch_deadline: Optional[int] = None,
    ) -> None:
        self._inner = None
        self.kill_after = kill_after
        self.epoch_deadline = epoch_deadline
        self.total_probes = 0
        self.epoch_probes = 0

    def wrap(self, backend):
        """``backend_wrapper`` hook: adopt the chain's backend."""
        self._inner = backend
        return self

    def start_epoch(self) -> None:
        """Epoch boundary: rewind the watchdog's simulated clock."""
        self.epoch_probes = 0

    def _tick(self, count: int) -> None:
        self.total_probes += count
        self.epoch_probes += count
        if (
            self.kill_after is not None
            and self.total_probes >= self.kill_after
        ):
            self.kill_after = None
            raise WorkerKilled(
                f"injected worker kill after probe {self.total_probes}"
            )
        if (
            self.epoch_deadline is not None
            and self.epoch_probes > self.epoch_deadline
        ):
            raise WatchdogExpired(
                f"epoch exceeded its watchdog deadline of "
                f"{self.epoch_deadline} probes"
            )

    def submit(self, request):
        """Count one probe, then delegate (or die)."""
        self._tick(1)
        return self._inner.submit(request)

    def submit_batch(self, requests):
        """Count a batch, then delegate (or die before submitting)."""
        requests = list(requests)
        self._tick(len(requests))
        return self._inner.submit_batch(requests)

    def __getattr__(self, name):
        # Everything else (fault-state save/restore, cache hooks)
        # passes through to the wrapped backend.
        return getattr(self._inner, name)


@dataclass(frozen=True)
class FleetConfig:
    """Everything a reproducible fleet run needs.

    The per-chain identity knobs mirror
    :class:`~repro.monitor.loop.MonitorConfig`; chain ``i`` gets
    ``churn_seed + i`` so every chain shares one rendered topology
    (one ``internet_build`` per fleet) while churning it
    differently.  Chain 0's config is byte-for-byte what a
    standalone ``repro monitor`` run with the same knobs would use,
    so its chain id — and its snapshots — are shared between the
    two front ends.

    Supervision knobs (``restart_budget``, backoff, deadline,
    ``max_workers``) steer execution only: they are absent from
    chain ids, so a crashed fleet resumes into the same snapshots
    whatever supervision it restarts under.
    """

    warehouse: str
    chains: int = 3
    epochs: int = 3
    scale: float = 0.3
    seed: int = 2017
    vantage_points: int = 4
    stubs_per_transit: int = 3
    churn_profile: Union[str, ChurnProfile] = "gentle"
    #: Base churn seed; chain ``i`` churns with ``base + i``.
    #: Defaults to ``seed``.
    churn_seed: Optional[int] = None
    fault_profile: Optional[str] = None
    incremental: bool = True
    probe_budget: Optional[int] = None
    max_retries: int = 0
    breaker_threshold: Optional[int] = None
    te_tunnels_per_transit: int = 0
    te_ttl_propagate: bool = False
    compiled_plane: bool = False
    batch_window: int = 1
    #: Deaths tolerated per chain before it is parked.
    restart_budget: int = 3
    backoff_base_ms: float = 25.0
    backoff_cap_ms: float = 2000.0
    #: Watchdog: max probes one epoch may submit (None = no watchdog).
    epoch_deadline: Optional[int] = None
    #: Worker threads; None runs every chain concurrently.
    max_workers: Optional[int] = None
    alert_factor: float = 2.0
    alert_min_events: int = 2

    def __post_init__(self) -> None:
        if self.chains < 1:
            raise ValueError("fleet needs at least one chain")
        if self.restart_budget < 0:
            raise ValueError("restart_budget must be >= 0")
        if (
            self.epoch_deadline is not None
            and self.epoch_deadline < 1
        ):
            raise ValueError("epoch_deadline must be >= 1")

    def monitor_config(self, index: int) -> MonitorConfig:
        """Chain ``index``'s monitor config (distinct churn seed)."""
        base = (
            self.seed if self.churn_seed is None else self.churn_seed
        )
        return MonitorConfig(
            warehouse=self.warehouse,
            epochs=self.epochs,
            scale=self.scale,
            seed=self.seed,
            vantage_points=self.vantage_points,
            stubs_per_transit=self.stubs_per_transit,
            churn_profile=self.churn_profile,
            churn_seed=base + index,
            incremental=self.incremental,
            fault_profile=self.fault_profile,
            probe_budget=self.probe_budget,
            max_retries=self.max_retries,
            breaker_threshold=self.breaker_threshold,
            te_tunnels_per_transit=self.te_tunnels_per_transit,
            te_ttl_propagate=self.te_ttl_propagate,
            compiled_plane=self.compiled_plane,
            batch_window=self.batch_window,
        )

    def topology_spec(self) -> TopologySpec:
        """The shared render every chain checks its twin out of."""
        return TopologySpec(
            scale=self.scale,
            seed=self.seed,
            vantage_points=self.vantage_points,
            stubs_per_transit=self.stubs_per_transit,
            te_tunnels_per_transit=self.te_tunnels_per_transit,
            te_ttl_propagate=self.te_ttl_propagate,
        )

    def chain_ids(self) -> List[str]:
        """Every chain's deterministic id, in index order."""
        return [
            chain_id(self.monitor_config(index))
            for index in range(self.chains)
        ]


class ChainWorker:
    """One run attempt of one chain: twin checkout + monitor loop.

    Built fresh per attempt: the monitor loop replays completed
    epochs' churn on resume, so a twin that already churned must
    never be reused — a second run over it would double-apply churn
    and break byte-identity.
    """

    def __init__(
        self,
        config: FleetConfig,
        index: int,
        registry: SnapshotRegistry,
        kill_after: Optional[int] = None,
        drain: Optional[threading.Event] = None,
    ) -> None:
        self.index = index
        self.monitor_config = config.monitor_config(index)
        self._drain = drain
        self.harness = _ChainHarness(
            kill_after=kill_after,
            epoch_deadline=config.epoch_deadline,
        )
        twin = registry.checkout(
            config.topology_spec(),
            compiled_plane=config.compiled_plane,
            batch_window=config.batch_window,
        )
        self.loop = MonitorLoop(
            self.monitor_config,
            internet=twin,
            backend_wrapper=self.harness.wrap,
            stop_before_epoch=self._epoch_boundary,
        )
        self.chain = self.loop.chain

    def _epoch_boundary(self, epoch: int) -> bool:
        """Per-epoch hook: rewind the watchdog, honour a drain."""
        self.harness.start_epoch()
        return self._drain is not None and self._drain.is_set()

    def run(self):
        """Run the chain; crash exceptions propagate to the
        supervisor's retry loop."""
        return self.loop.run()


@dataclass
class ChainOutcome:
    """One chain's ledger row in a :class:`FleetReport`."""

    index: int
    chain: str
    #: ``completed`` | ``partial`` | ``drained`` | ``parked``
    status: str = "completed"
    epochs_completed: int = 0
    restarts: int = 0
    injected_kills: int = 0
    watchdog_kills: int = 0
    backoff_ms_total: float = 0.0
    #: Every death's message, in order (crash forensics).
    failures: List[str] = field(default_factory=list)
    stop_reason: Optional[str] = None
    #: The last attempt's monitor report (None when every attempt
    #: died before returning one).
    report: Optional[object] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready row for the CLI ledger."""
        return {
            "index": self.index,
            "chain": self.chain,
            "status": self.status,
            "epochs_completed": self.epochs_completed,
            "restarts": self.restarts,
            "injected_kills": self.injected_kills,
            "watchdog_kills": self.watchdog_kills,
            "backoff_ms_total": round(self.backoff_ms_total, 3),
            "failures": list(self.failures),
            "stop_reason": self.stop_reason,
        }


@dataclass
class FleetReport:
    """A fleet run's outcome: per-chain ledger plus the aggregate."""

    chains: List[ChainOutcome] = field(default_factory=list)
    drained: bool = False
    #: The folded ``repro.fleet/1`` document (also on disk as
    #: ``fleet.json`` in the warehouse).
    document: Optional[dict] = None

    @property
    def parked(self) -> List[ChainOutcome]:
        """Chains that exhausted their restart budget."""
        return [
            outcome
            for outcome in self.chains
            if outcome.status == "parked"
        ]

    @property
    def completed(self) -> bool:
        """Did every chain finish every epoch?"""
        return all(
            outcome.status == "completed"
            for outcome in self.chains
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (the CLI's ``--json`` output)."""
        return {
            "drained": self.drained,
            "completed": self.completed,
            "chains": [
                outcome.to_dict() for outcome in self.chains
            ],
            "document": self.document,
        }


class FleetSupervisor:
    """Runs and supervises a fleet of monitor chains.

    ``kill_plan`` maps chain index to a cumulative probe count at
    which that chain's *first* attempt is hard-killed
    (:class:`WorkerKilled`) — the fault-drill hook behind the CLI's
    ``--kill-chain`` and the soak harness.  ``registry`` may be
    shared with a live :class:`~repro.serve.server.CampaignServer`:
    checkouts reuse its renders without thawing them.
    """

    def __init__(
        self,
        config: FleetConfig,
        registry: Optional[SnapshotRegistry] = None,
        obs: Optional[Obs] = None,
        kill_plan: Optional[Mapping[int, int]] = None,
    ) -> None:
        self.config = config
        self.obs = obs if obs is not None else Obs()
        self.registry = (
            registry
            if registry is not None
            else SnapshotRegistry(obs=self.obs)
        )
        self.kill_plan = dict(kill_plan or {})
        self._drain = threading.Event()

    # ------------------------------------------------------------------

    def request_drain(self) -> None:
        """Signal-handler-safe graceful stop (does not block).

        Every chain finishes its in-flight epoch, persists resumable
        state, and stops at the next epoch boundary; dead chains are
        not restarted.  Mirrors ``CampaignServer.drain`` for the
        fleet's thread-based workers.
        """
        self._drain.set()

    @property
    def draining(self) -> bool:
        """Has a drain been requested?"""
        return self._drain.is_set()

    # ------------------------------------------------------------------

    def _backoff_ms(self, deaths: int) -> float:
        """Exponential backoff for restart attempt ``deaths``."""
        return min(
            self.config.backoff_cap_ms,
            self.config.backoff_base_ms * (2 ** (deaths - 1)),
        )

    def _run_chain(self, index: int) -> ChainOutcome:
        """One chain's supervised lifecycle (worker thread).

        Retry loop: run, and on a death (injected kill, watchdog,
        or any other crash) restart from the warehouse checkpoints
        with exponential backoff — on a *fresh* twin — until the
        chain finishes, a drain lands, or the restart budget is
        exhausted and the chain parks.
        """
        config = self.config
        outcome = ChainOutcome(
            index=index,
            chain=chain_id(config.monitor_config(index)),
        )
        kill_after = self.kill_plan.get(index)
        deaths = 0
        while True:
            try:
                worker = ChainWorker(
                    config,
                    index,
                    self.registry,
                    kill_after=kill_after,
                    drain=self._drain,
                )
            except Exception:
                if deaths == 0:
                    # First construction failed: a config error, not
                    # a crash — restarting cannot help.  Fail fast.
                    raise
                deaths += 1
                outcome.failures.append(
                    "worker construction failed on restart"
                )
                worker = None
            if worker is None:
                report = None
            else:
                kill_after = None  # one-shot: never re-arm
                try:
                    report = worker.run()
                except WorkerKilled as exc:
                    deaths += 1
                    outcome.injected_kills += 1
                    outcome.failures.append(str(exc))
                    report = None
                except WatchdogExpired as exc:
                    deaths += 1
                    outcome.watchdog_kills += 1
                    outcome.failures.append(str(exc))
                    report = None
                except Exception as exc:  # noqa: BLE001 - supervised
                    deaths += 1
                    outcome.failures.append(
                        f"{type(exc).__name__}: {exc}"
                    )
                    report = None
            if report is not None:
                outcome.report = report
                outcome.epochs_completed = report.completed_epochs
                if report.partial:
                    reason = report.stop_reason or ""
                    outcome.status = (
                        "drained" if "drained" in reason else "partial"
                    )
                    outcome.stop_reason = report.stop_reason
                else:
                    outcome.status = "completed"
                return outcome
            # A death landed.  Park, drain, or back off and retry.
            if deaths > config.restart_budget:
                outcome.status = "parked"
                outcome.stop_reason = (
                    f"parked after {deaths} deaths (restart budget "
                    f"{config.restart_budget}); completed epochs stay "
                    "in the warehouse and degrade the fleet grade"
                )
                return outcome
            if self._drain.is_set():
                outcome.status = "drained"
                outcome.stop_reason = (
                    "drain requested while the chain was down; "
                    "resume the fleet to continue"
                )
                return outcome
            outcome.restarts += 1
            backoff = self._backoff_ms(deaths)
            outcome.backoff_ms_total += backoff
            time.sleep(backoff / 1000.0)

    # ------------------------------------------------------------------

    def run(self) -> FleetReport:
        """Run every chain to its end state and fold the fleet.

        Always writes ``fleet.json``: whatever the chains managed —
        including a crash-storm where some parked — the warehouse
        fold and its data-quality grade reflect it.
        """
        config = self.config
        workers = config.max_workers or config.chains
        with ThreadPoolExecutor(
            max_workers=max(1, workers),
            thread_name_prefix="repro-fleet",
        ) as pool:
            futures = [
                pool.submit(self._run_chain, index)
                for index in range(config.chains)
            ]
            outcomes = [future.result() for future in futures]

        document = fold_fleet(
            config.warehouse,
            chains=[outcome.chain for outcome in outcomes],
            expected_epochs=config.epochs,
            alert_factor=config.alert_factor,
            alert_min_events=config.alert_min_events,
        )
        write_json(
            Path(config.warehouse) / "fleet.json", document
        )
        # Backfill epoch coverage from the fold: a parked chain's
        # attempts may all have died, yet its completed epochs are
        # in the warehouse and should show in the ledger.
        by_chain = {
            row["chain"]: row for row in document["chains"]
        }
        for outcome in outcomes:
            row = by_chain.get(outcome.chain)
            if row is not None:
                outcome.epochs_completed = int(
                    row["epochs_completed"]
                )

        metrics = self.obs.metrics
        metrics.inc("fleet.chains", len(outcomes))
        for status in ("completed", "partial", "drained", "parked"):
            count = sum(
                1
                for outcome in outcomes
                if outcome.status == status
            )
            if count:
                metrics.inc(f"fleet.chains_{status}", count)
        metrics.inc(
            "fleet.restarts",
            sum(outcome.restarts for outcome in outcomes),
        )
        metrics.inc(
            "fleet.injected_kills",
            sum(outcome.injected_kills for outcome in outcomes),
        )
        metrics.inc(
            "fleet.watchdog_kills",
            sum(outcome.watchdog_kills for outcome in outcomes),
        )
        metrics.inc(
            "fleet.epochs_completed",
            sum(outcome.epochs_completed for outcome in outcomes),
        )
        metrics.inc("fleet.alerts", len(document["alerts"]))

        return FleetReport(
            chains=outcomes,
            drained=self._drain.is_set(),
            document=document,
        )
