"""The asyncio campaign server and its in-process client.

:class:`CampaignServer` is the control plane of ``repro.serve``: it
owns the snapshot registry, the fair scheduler, and the session
table, and multiplexes tenant campaigns over a bounded pool of
executor threads.  Sessions beyond ``max_active`` queue; the
scheduler turnstile interleaves the active ones batch-by-batch.

Admission control happens at :meth:`CampaignServer.submit`: unknown
chaos profiles, network-mutating profiles (illegal against frozen
shared snapshots), prewarm workers (fork-from-thread), and
non-positive weights are rejected with :class:`AdmissionError`
before any resources are committed.

Shutdown is a **graceful drain**: :meth:`CampaignServer.drain` stops
admission, optionally cancels still-queued sessions, lets active
campaigns run to completion, and resolves every waiter — the
behaviour ``tools/serve_soak.py`` wires to SIGTERM.

:class:`ServeClient` is the thin in-process client: it runs the
server's event loop on a background thread and exposes synchronous
``submit``/``wait``/``drain`` for tests, the ``repro serve`` CLI,
and the soak harness.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Set

from repro.obs import Obs
from repro.serve.registry import SnapshotRegistry
from repro.serve.scheduler import FairScheduler
from repro.serve.session import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    AdmissionError,
    CampaignSession,
    TenantSpec,
)

__all__ = ["CampaignServer", "ServeClient", "SessionHandle"]


class CampaignServer:
    """Async multi-tenant campaign service.

    ``max_active`` bounds concurrently *running* sessions (each holds
    one executor thread); ``concurrency`` is the scheduler turnstile
    width (1 = strictly serialized probe batches, the deterministic
    default).  ``stream_sink`` (an object with ``write(record)``)
    receives every session's events tagged with its tenant name —
    the combined JSONL stream the CLI writes.
    """

    def __init__(
        self,
        registry: Optional[SnapshotRegistry] = None,
        obs: Optional[Obs] = None,
        max_active: int = 4,
        concurrency: int = 1,
        stream_sink=None,
    ) -> None:
        if max_active < 1:
            raise ValueError("max_active must be >= 1")
        self.obs = obs if obs is not None else Obs()
        self.registry = (
            registry if registry is not None
            else SnapshotRegistry(obs=self.obs)
        )
        self.scheduler = FairScheduler(
            obs=self.obs, concurrency=concurrency
        )
        self.max_active = max_active
        self.sessions: List[CampaignSession] = []
        self._pending: Deque[CampaignSession] = deque()
        self._running: Set[CampaignSession] = set()
        self._draining = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor = None
        self._idle: Optional[asyncio.Event] = None
        self._stream_sink = stream_sink
        self._stream_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle

    async def start(self) -> None:
        """Bind to the running loop and spin up the thread pool."""
        from concurrent.futures import ThreadPoolExecutor

        if self._loop is not None:
            return
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_active,
            thread_name_prefix="repro-serve",
        )
        self._idle = asyncio.Event()
        self._idle.set()

    async def __aenter__(self) -> "CampaignServer":
        """``async with`` entry: start the server."""
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        """``async with`` exit: drain (keeping queued work) and stop."""
        await self.close()

    async def close(self) -> None:
        """Drain everything submitted, then release the thread pool."""
        await self.drain()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Admission + submission

    def _admit(self, spec: TenantSpec) -> None:
        """Validate a spec; raise :class:`AdmissionError` if unsafe."""
        if self._loop is None:
            raise AdmissionError("server is not started")
        if self._draining:
            raise AdmissionError("server is draining; not admitting")
        if spec.workers != 1:
            raise AdmissionError(
                f"tenant {spec.tenant!r} asked for workers="
                f"{spec.workers}; served campaigns run workers=1 "
                "(prewarm forks are unsafe from server threads, and "
                "workers=1 is the byte-identity configuration)"
            )
        if spec.weight <= 0:
            raise AdmissionError(
                f"tenant {spec.tenant!r} weight must be positive"
            )
        if spec.batch_window < 1:
            raise AdmissionError(
                f"tenant {spec.tenant!r} batch_window must be >= 1"
            )
        if spec.fault_profile is not None:
            from repro.faults import fault_profile

            try:
                profile = fault_profile(spec.fault_profile)
            except ValueError as exc:
                raise AdmissionError(str(exc)) from None
            if profile.mutates_network:
                raise AdmissionError(
                    f"fault profile {spec.fault_profile!r} fires "
                    "network-mutating flaps and cannot run against a "
                    "shared frozen snapshot; run it standalone "
                    "(repro chaos), or run a monitoring fleet "
                    "(repro fleet) — each fleet chain churns a "
                    "private copy-on-churn twin of the shared render"
                )

    async def submit(self, spec: TenantSpec) -> CampaignSession:
        """Admit a tenant and queue its campaign session."""
        self._admit(spec)
        session = CampaignSession(
            spec,
            self.registry,
            self.scheduler,
            self._loop,
            shared_sink=self._stream_sink,
            shared_sink_lock=self._stream_lock,
        )
        self.sessions.append(session)
        self._pending.append(session)
        self.obs.metrics.inc("serve.sessions.submitted")
        self._pump()
        return session

    # ------------------------------------------------------------------
    # Dispatch (loop thread)

    def _pump(self) -> None:
        """Start queued sessions while thread slots are free."""
        while self._pending and len(self._running) < self.max_active:
            session = self._pending.popleft()
            if session.status != QUEUED:
                continue
            session.status = RUNNING
            self._running.add(session)
            # Lanes open at start-of-run, not submission: a queued
            # tenant without a thread must never pace the turnstile.
            self.scheduler.register(
                session.spec.tenant, session.spec.weight
            )
            future = self._loop.run_in_executor(
                self._executor, session._run
            )
            future.add_done_callback(
                lambda fut, s=session: self._finalize(s, fut)
            )
        self.obs.metrics.set_gauge(
            "serve.sessions.queued", len(self._pending)
        )
        self.obs.metrics.set_gauge(
            "serve.sessions.running", len(self._running)
        )
        self._update_idle()

    def _finalize(
        self, session: CampaignSession, future: "asyncio.Future"
    ) -> None:
        """Record a finished session's outcome (loop thread)."""
        self._running.discard(session)
        try:
            session.result = future.result()
            session.status = DONE
            self.obs.metrics.inc("serve.sessions.completed")
            if session.result.partial:
                self.obs.metrics.inc("serve.sessions.partial")
        except BaseException as exc:  # noqa: B036 - faithfully recorded
            session.error = exc
            session.status = FAILED
            self.obs.metrics.inc("serve.sessions.failed")
        if session.metrics is not None:
            denied = session.metrics.get("measure.budget.denied")
            if denied:
                self.obs.metrics.inc("serve.budget_denials", denied)
        session.grant_snapshot = self.scheduler.stats()
        self.scheduler.retire(session.spec.tenant)
        session._finalize_stream()
        session._done_event.set()
        self._pump()

    def _cancel(self, session: CampaignSession) -> None:
        """Cancel a still-queued session (loop thread)."""
        session.status = CANCELLED
        self.obs.metrics.inc("serve.sessions.cancelled")
        session.grant_snapshot = self.scheduler.stats()
        session._finalize_stream()
        session._done_event.set()

    def _update_idle(self) -> None:
        """Track whether any work remains (drain waits on this)."""
        if self._idle is None:
            return
        if not self._pending and not self._running:
            self._idle.set()
        else:
            self._idle.clear()

    # ------------------------------------------------------------------
    # Drain + introspection

    async def drain(self, cancel_queued: bool = False) -> None:
        """Stop admission and wait for submitted work to settle.

        ``cancel_queued=False`` (the default) lets everything already
        submitted run to completion; ``cancel_queued=True`` cancels
        sessions that have not started yet — active campaigns still
        finish cleanly either way.
        """
        self._draining = True
        if cancel_queued:
            while self._pending:
                self._cancel(self._pending.popleft())
            self._update_idle()
        if self._idle is not None:
            await self._idle.wait()

    def stats(self) -> Dict[str, object]:
        """Server summary: sessions, scheduler lanes, registry reuse."""
        by_status: Dict[str, int] = {}
        for session in self.sessions:
            by_status[session.status] = (
                by_status.get(session.status, 0) + 1
            )
        return {
            "sessions": by_status,
            "queued": len(self._pending),
            "running": len(self._running),
            "draining": self._draining,
            "scheduler": self.scheduler.stats(),
            "registry": self.registry.stats(),
        }


class SessionHandle:
    """Synchronous view of a session for :class:`ServeClient` users."""

    def __init__(self, client: "ServeClient",
                 session: CampaignSession) -> None:
        self._client = client
        self.session = session

    @property
    def spec(self) -> TenantSpec:
        """The submitted tenant spec."""
        return self.session.spec

    @property
    def status(self) -> str:
        """Current lifecycle state."""
        return self.session.status

    @property
    def events(self) -> List[Dict[str, object]]:
        """Structured events buffered so far."""
        return self.session.events

    def wait(self, timeout: Optional[float] = None):
        """Block until the campaign finishes; returns its result."""
        return self._client.wait(self.session, timeout=timeout)


class ServeClient:
    """Thread-backed synchronous client around a private server.

    Spins the server's asyncio loop on a daemon thread so ordinary
    (synchronous) callers — tests, the CLI, the soak tool — can
    submit specs and wait on results without touching asyncio.
    """

    def __init__(self, **server_kwargs) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self.server = CampaignServer(**server_kwargs)
        self._call(self.server.start())

    def _run_loop(self) -> None:
        """Loop-thread body."""
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def _call(self, coro, timeout: Optional[float] = None):
        """Run a coroutine on the server loop and wait for it."""
        return asyncio.run_coroutine_threadsafe(
            coro, self._loop
        ).result(timeout)

    # ------------------------------------------------------------------

    def submit(self, spec: TenantSpec) -> SessionHandle:
        """Admit and queue one tenant campaign."""
        session = self._call(self.server.submit(spec))
        return SessionHandle(self, session)

    def wait(self, session, timeout: Optional[float] = None):
        """Wait for a session (or handle) and return its result."""
        if isinstance(session, SessionHandle):
            session = session.session
        return self._call(session.wait(), timeout=timeout)

    def drain(self, cancel_queued: bool = False,
              timeout: Optional[float] = None) -> None:
        """Synchronous :meth:`CampaignServer.drain`."""
        self._call(self.server.drain(cancel_queued), timeout=timeout)

    def request_drain(self, cancel_queued: bool = True) -> None:
        """Signal-handler-safe drain trigger (does not block).

        A no-op once the loop is gone (a late signal during interpreter
        shutdown must not raise from the handler).
        """
        coro = self.server.drain(cancel_queued)
        try:
            asyncio.run_coroutine_threadsafe(coro, self._loop)
        except RuntimeError:
            coro.close()

    def stats(self) -> Dict[str, object]:
        """Server summary (see :meth:`CampaignServer.stats`)."""
        async def _stats():
            return self.server.stats()

        return self._call(_stats())

    def close(self) -> None:
        """Drain, stop the server, and tear the loop down."""
        try:
            self._call(self.server.close())
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
            self._loop.close()
