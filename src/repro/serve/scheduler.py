"""Weighted fair scheduling of probe batches across tenants.

The scheduler is a *turnstile*: at most ``concurrency`` grants (one,
by default) are outstanding at any moment, and the next grant always
goes to the waiting tenant with the smallest **virtual time** —
probes charged divided by weight, the classic weighted-fair-queueing
invariant.  A tenant with weight 10 therefore moves ten probes for
every one a weight-1 tenant moves while both are backlogged, and a
tenant that got lucky while its competitor was briefly idle
automatically waits longer afterwards (virtual times reconverge).

Campaign sessions run in worker threads; the scheduler's state lives
on the server's asyncio loop.  :class:`ScheduledBackend` is the
bridge: a transparent :class:`~repro.measure.backend.ProbeBackend`
wrapper that blocks the session thread on a grant before forwarding
each ``submit``/``submit_batch`` to the real backend, then releases
the turnstile.  Because grants are serialized, the shared simulator
is never entered concurrently — which is also what keeps a served
campaign byte-identical to a standalone run: scheduling decides
*when* a batch runs, never what it probes.

Counters (server registry, ``serve.*`` family): queue depth gauge
``serve.queue_depth``, ``serve.batches_dispatched``,
``serve.probes_granted``, and per-tenant
``serve.tenant.<name>.batches`` / ``.probes``.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.obs import Obs

__all__ = ["FairScheduler", "ScheduledBackend"]


class _Lane(object):
    """Per-tenant scheduler state (loop-thread only)."""

    __slots__ = (
        "name", "weight", "charged", "granted_probes",
        "granted_batches", "waiters", "refs",
    )

    def __init__(self, name: str, weight: float) -> None:
        self.name = name
        self.weight = weight
        #: Probes charged so far; ``charged / weight`` is the lane's
        #: virtual time.
        self.charged = 0.0
        self.granted_probes = 0
        self.granted_batches = 0
        #: FIFO of ``(cost, future)`` waiting for a grant.
        self.waiters: Deque[Tuple[int, asyncio.Future]] = deque()
        #: Running sessions referencing this lane; a lane with no
        #: refs is *retired* — it keeps its totals for stats but no
        #: longer holds the turnstile for its virtual time.
        self.refs = 0

    @property
    def virtual_time(self) -> float:
        """Weighted consumption — the quantity the scheduler levels."""
        return self.charged / self.weight


class FairScheduler:
    """Deficit-weighted turnstile over tenant lanes.

    All state mutation happens on the owning asyncio loop;
    :meth:`acquire` is a coroutine, :meth:`release` is loop-thread
    sync (sessions call it via ``call_soon_threadsafe``).
    """

    def __init__(
        self, obs: Optional[Obs] = None, concurrency: int = 1
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.obs = obs if obs is not None else Obs()
        self.concurrency = concurrency
        self._lanes: Dict[str, _Lane] = {}
        self._active = 0

    # ------------------------------------------------------------------
    # Lane lifecycle (loop thread)

    def register(self, tenant: str, weight: float = 1.0) -> None:
        """Open (or re-enter) the lane for a starting session.

        Called when a session *starts running* — never at submission,
        so queued tenants without a thread can never become the
        turnstile's pace-setting laggard.  A newcomer starts at the
        minimum live virtual time (it owes nothing, is owed nothing);
        repeat registration bumps the refcount and re-applies the
        weight.
        """
        if weight <= 0:
            raise ValueError(f"weight must be positive: {weight}")
        lane = self._lanes.get(tenant)
        if lane is None:
            lane = _Lane(tenant, weight)
            floor = min(
                (
                    other.virtual_time
                    for other in self._lanes.values()
                    if other.refs > 0
                ),
                default=0.0,
            )
            lane.charged = floor * weight
            self._lanes[tenant] = lane
        else:
            lane.weight = weight
        lane.refs += 1

    def retire(self, tenant: str) -> None:
        """A session on this lane finished; release its pacing hold.

        The lane keeps its grant totals for stats, but once no
        running session references it the scheduler stops waiting for
        it to catch up, and any stranded waiters are granted so the
        owning thread can unwind.
        """
        lane = self._lanes.get(tenant)
        if lane is None:
            return
        lane.refs = max(0, lane.refs - 1)
        if lane.refs == 0:
            while lane.waiters:
                _, future = lane.waiters.popleft()
                if not future.done():
                    future.set_result(None)
        self._dispatch()

    # ------------------------------------------------------------------
    # The turnstile

    async def acquire(self, tenant: str, cost: int) -> None:
        """Wait for this tenant's turn to move ``cost`` probes."""
        lane = self._lanes[tenant]
        future = asyncio.get_running_loop().create_future()
        lane.waiters.append((max(1, int(cost)), future))
        self._dispatch()
        await future

    def release(self, tenant: str, cost: int) -> None:
        """Return the grant taken by :meth:`acquire` (loop thread)."""
        self._active -= 1
        self._dispatch()

    def _dispatch(self) -> None:
        """Grant free turnstile slots, pacing by virtual time.

        The grant always goes to the globally minimum-virtual-time
        *live* lane.  If that lane is momentarily between probes (not
        waiting), the turnstile deliberately idles until it shows up
        or retires — without this hold, two alternating tenants
        degrade to 1:1 round-robin no matter their weights, because
        at each release the other tenant is the only waiter.  The
        hold is bounded by the laggard's between-probe compute (or
        its session teardown), so throughput stays intact while the
        10:1 weighted ratio becomes exact.
        """
        metrics = self.obs.metrics
        while self._active < self.concurrency:
            live = [
                lane for lane in self._lanes.values() if lane.refs > 0
            ]
            waiting = [lane for lane in live if lane.waiters]
            if not waiting:
                break
            floor = min(
                (lane.virtual_time, lane.name) for lane in live
            )
            lane = min(
                waiting,
                key=lambda lane: (lane.virtual_time, lane.name),
            )
            if (lane.virtual_time, lane.name) > floor:
                break  # hold the slot for the pace-setting laggard
            cost, future = lane.waiters.popleft()
            if future.done():  # cancelled while queued
                continue
            self._active += 1
            lane.charged += cost
            lane.granted_probes += cost
            lane.granted_batches += 1
            metrics.inc("serve.batches_dispatched")
            metrics.inc("serve.probes_granted", cost)
            metrics.inc(f"serve.tenant.{lane.name}.batches")
            metrics.inc(f"serve.tenant.{lane.name}.probes", cost)
            future.set_result(None)
        metrics.set_gauge("serve.queue_depth", self.queue_depth())

    # ------------------------------------------------------------------
    # Introspection

    def queue_depth(self) -> int:
        """Probe batches currently waiting for a grant."""
        return sum(len(lane.waiters) for lane in self._lanes.values())

    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant grant totals (snapshot; loop thread)."""
        return {
            lane.name: {
                "weight": lane.weight,
                "granted_probes": lane.granted_probes,
                "granted_batches": lane.granted_batches,
                "virtual_time": round(lane.virtual_time, 3),
            }
            for lane in self._lanes.values()
        }


class ScheduledBackend:
    """Probe backend that waits its turn at the fair scheduler.

    Transparent to the whole measurement stack: every attribute the
    :class:`~repro.measure.service.ProbeService`, prober, campaign, or
    prewarm machinery probes for (``engine``, ``obs``, ``name``,
    trajectory hooks, ``fault_state``…) delegates to the wrapped
    backend, so wrapping changes scheduling and nothing else.  The
    blocking handshake runs the scheduler coroutine on the server's
    loop from the session's worker thread.
    """

    def __init__(self, inner, scheduler: FairScheduler, tenant: str,
                 loop: asyncio.AbstractEventLoop) -> None:
        self._inner = inner
        self._scheduler = scheduler
        self._tenant = tenant
        self._loop = loop

    def __getattr__(self, name: str):
        """Delegate everything but the turnstile to the inner backend."""
        return getattr(self._inner, name)

    # ------------------------------------------------------------------

    def _turn(self, cost: int) -> None:
        """Block this thread until the scheduler grants ``cost``."""
        asyncio.run_coroutine_threadsafe(
            self._scheduler.acquire(self._tenant, cost), self._loop
        ).result()

    def _done(self, cost: int) -> None:
        """Release the grant back to the turnstile."""
        self._loop.call_soon_threadsafe(
            self._scheduler.release, self._tenant, cost
        )

    def submit(self, request):
        """One probe, after a one-probe grant."""
        self._turn(1)
        try:
            return self._inner.submit(request)
        finally:
            self._done(1)

    def submit_batch(self, requests):
        """One batch, charged by its probe count."""
        batch = list(requests)
        cost = max(1, len(batch))
        self._turn(cost)
        try:
            return self._inner.submit_batch(batch)
        finally:
            self._done(cost)
