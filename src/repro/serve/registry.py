"""Snapshot registry: render a topology once, attach many engines.

The registry is the materialisation cache of the serve subsystem.  A
:class:`TopologySpec` names everything that determines the *measured*
network — scale, seed, vantage points, stub fan-out, TTL-propagation
policy — and :func:`topology_key` hashes it with the same
canonical-JSON SHA-256 idiom the campaign warehouse uses for snapshot
content keys (:mod:`repro.store.layout`).  The first request for a
key pays ``internet_build``; the rendered internet is then frozen
(:meth:`repro.net.topology.Network.freeze`) and every subsequent
request gets a fresh :meth:`~repro.synth.internet.SyntheticInternet.attach`
handle over the shared topology: private engine, prober, caches, and
counters, shared routers, links, and route memos.

Thread-safety: sessions render from worker threads, so rendering is
serialised per registry under one lock; attaches are cheap and also
taken under the lock (the shared control plane's listener list is the
only cross-attachment mutation).

Counters (in the registry's observability bundle, ``serve.*`` family):

* ``serve.snapshot.renders`` — topologies actually built;
* ``serve.snapshot.attach_hits`` — attaches served from an already
  rendered snapshot (the builds avoided);
* ``serve.snapshot.attaches`` — every attach, hit or not;
* ``serve.snapshot.checkouts`` — private copy-on-churn twins handed
  out to monitoring fleets (see :meth:`SnapshotRegistry.checkout`).
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.obs import Obs
from repro.synth.internet import (
    AttachedInternet,
    InternetConfig,
    SyntheticInternet,
    build_internet,
)
from repro.synth.profiles import scaled_profiles

__all__ = [
    "SnapshotRegistry",
    "TopologySpec",
    "default_registry",
    "render_internet",
    "topology_key",
]


@dataclass(frozen=True)
class TopologySpec:
    """Everything that determines a rendered internet's topology.

    Mirrors the topology descriptor the campaign warehouse keys
    snapshots on (``CampaignContext._build_checkpoint``): execution
    knobs — compiled plane, batch window, budgets — deliberately stay
    out, because they configure *attachments*, not the shared render.
    """

    scale: float = 1.0
    seed: int = 2017
    vantage_points: int = 10
    stubs_per_transit: int = 6
    ttl_propagate_everywhere: bool = False
    te_tunnels_per_transit: int = 0
    te_ttl_propagate: bool = False

    def descriptor(self) -> Dict[str, object]:
        """The JSON-ready topology descriptor (checkpoint-compatible).

        TE fields are stamped only when non-default so every pre-TE
        key (and stored checkpoint descriptor) stays valid.
        """
        return {
            "kind": "synthetic-internet",
            "scale": self.scale,
            "seed": self.seed,
            "vantage_points": self.vantage_points,
            "stubs_per_transit": self.stubs_per_transit,
            "ttl_propagate_everywhere": self.ttl_propagate_everywhere,
            **(
                {
                    "te_tunnels_per_transit": self.te_tunnels_per_transit,
                    "te_ttl_propagate": self.te_ttl_propagate,
                }
                if self.te_tunnels_per_transit
                else {}
            ),
        }


def topology_key(spec: TopologySpec) -> str:
    """Content key of a topology spec (full SHA-256 hex).

    Same canonicalisation as :func:`repro.store.layout.campaign_key`:
    sorted keys, compact separators, ASCII — so the key is stable
    across processes and Python versions.
    """
    return hashlib.sha256(
        json.dumps(
            spec.descriptor(), sort_keys=True, separators=(",", ":")
        ).encode("ascii")
    ).hexdigest()


def render_internet(spec: TopologySpec) -> SyntheticInternet:
    """Build the internet a spec describes (private, unfrozen).

    The render path is byte-compatible with the experiment harness:
    profiles come from :func:`repro.synth.profiles.scaled_profiles`,
    so a registry snapshot and a standalone experiment context with
    the same spec hold identical topologies.
    """
    profiles = scaled_profiles(
        spec.scale, spec.ttl_propagate_everywhere
    )
    return build_internet(
        InternetConfig(
            profiles=tuple(profiles),
            vantage_points=spec.vantage_points,
            stubs_per_transit=spec.stubs_per_transit,
            seed=spec.seed,
            te_tunnels_per_transit=spec.te_tunnels_per_transit,
            te_ttl_propagate=spec.te_ttl_propagate,
        )
    )


class _Snapshot:
    """One rendered, frozen internet plus its bookkeeping."""

    def __init__(self, spec: TopologySpec, internet: SyntheticInternet,
                 render_seconds: float) -> None:
        self.spec = spec
        self.internet = internet
        self.render_seconds = render_seconds
        self.attach_count = 0


class SnapshotRegistry:
    """Render-once, attach-many cache of synthetic internets.

    ``obs`` receives the ``serve.snapshot.*`` counters; by default the
    registry gets its own bundle so snapshot bookkeeping never leaks
    into a tenant's measurement registry.
    """

    def __init__(self, obs: Optional[Obs] = None) -> None:
        self.obs = obs if obs is not None else Obs()
        self._lock = threading.Lock()
        self._snapshots: Dict[str, _Snapshot] = {}

    # ------------------------------------------------------------------

    def rendered(self, spec: TopologySpec) -> Optional[SyntheticInternet]:
        """The shared internet for ``spec`` if already rendered."""
        snapshot = self._snapshots.get(topology_key(spec))
        return None if snapshot is None else snapshot.internet

    def attach(
        self,
        spec: TopologySpec,
        compiled_plane: bool = False,
        batch_window: int = 1,
        obs: Optional[Obs] = None,
    ) -> AttachedInternet:
        """An attach handle over the (rendered-on-demand) snapshot.

        First call per key renders and freezes the topology; every
        later call is an attach hit.  The handle's engine/prober are
        private; pass ``obs`` to route the tenant's counters and
        events into an isolated bundle.
        """
        key = topology_key(spec)
        with self._lock:
            snapshot = self._snapshots.get(key)
            if snapshot is None:
                start = time.perf_counter()
                internet = render_internet(spec)
                seconds = time.perf_counter() - start
                internet.network.freeze()
                snapshot = _Snapshot(spec, internet, seconds)
                self._snapshots[key] = snapshot
                self.obs.metrics.inc("serve.snapshot.renders")
                self.obs.metrics.observe(
                    "serve.snapshot.render_ms", seconds * 1000.0
                )
            else:
                self.obs.metrics.inc("serve.snapshot.attach_hits")
            snapshot.attach_count += 1
            self.obs.metrics.inc("serve.snapshot.attaches")
            return snapshot.internet.attach(
                compiled_plane=compiled_plane,
                probe_batch_window=batch_window,
                obs=obs,
            )

    def checkout(
        self,
        spec: TopologySpec,
        compiled_plane: bool = False,
        batch_window: int = 1,
    ) -> SyntheticInternet:
        """A private, **unfrozen** copy-on-churn twin of the snapshot.

        Where :meth:`attach` hands out a read-only view of the shared
        frozen render, ``checkout`` clones it
        (:meth:`~repro.synth.internet.SyntheticInternet.clone`): the
        caller gets a mutable twin it may churn freely — the
        monitoring-fleet path — while the shared render stays frozen
        for every attached tenant.  The render itself is still paid
        only once per key; every checkout after the first reuses it.
        """
        key = topology_key(spec)
        with self._lock:
            snapshot = self._snapshots.get(key)
            if snapshot is None:
                start = time.perf_counter()
                internet = render_internet(spec)
                seconds = time.perf_counter() - start
                internet.network.freeze()
                snapshot = _Snapshot(spec, internet, seconds)
                self._snapshots[key] = snapshot
                self.obs.metrics.inc("serve.snapshot.renders")
                self.obs.metrics.observe(
                    "serve.snapshot.render_ms", seconds * 1000.0
                )
            else:
                self.obs.metrics.inc("serve.snapshot.attach_hits")
            start = time.perf_counter()
            twin = snapshot.internet.clone(
                compiled_plane=compiled_plane,
                probe_batch_window=batch_window,
            )
            self.obs.metrics.inc("serve.snapshot.checkouts")
            self.obs.metrics.observe(
                "serve.snapshot.checkout_ms",
                (time.perf_counter() - start) * 1000.0,
            )
            return twin

    # ------------------------------------------------------------------
    # Introspection

    @property
    def renders(self) -> int:
        """Topologies actually built by this registry."""
        return self.obs.metrics.get("serve.snapshot.renders")

    @property
    def attach_hits(self) -> int:
        """Attaches that avoided an ``internet_build``."""
        return self.obs.metrics.get("serve.snapshot.attach_hits")

    @property
    def builds_avoided(self) -> int:
        """Alias for :attr:`attach_hits` (reporting vocabulary)."""
        return self.attach_hits

    @property
    def checkouts(self) -> int:
        """Copy-on-churn twins handed out (fleet chains)."""
        return self.obs.metrics.get("serve.snapshot.checkouts")

    def mean_render_seconds(self) -> float:
        """Mean observed render cost (0.0 before the first render)."""
        with self._lock:
            snapshots = list(self._snapshots.values())
        if not snapshots:
            return 0.0
        return sum(s.render_seconds for s in snapshots) / len(snapshots)

    def stats(self) -> Dict[str, object]:
        """Registry summary: keys, renders, attach reuse, savings."""
        mean_seconds = self.mean_render_seconds()
        return {
            "snapshots": len(self._snapshots),
            "renders": self.renders,
            "attaches": self.obs.metrics.get("serve.snapshot.attaches"),
            "attach_hits": self.attach_hits,
            "builds_avoided": self.builds_avoided,
            "checkouts": self.checkouts,
            "mean_render_ms": round(mean_seconds * 1000.0, 3),
            "saved_ms": round(
                self.builds_avoided * mean_seconds * 1000.0, 3
            ),
        }


#: Process-wide registry shared by the CLI, the experiment harness,
#: and any server that does not bring its own.
_DEFAULT_REGISTRY = SnapshotRegistry()


def default_registry() -> SnapshotRegistry:
    """The process-wide snapshot registry."""
    return _DEFAULT_REGISTRY
