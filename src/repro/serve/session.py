"""Per-tenant campaign sessions: spec, isolated stack, streaming.

A :class:`TenantSpec` is everything a tenant submits: which topology
to measure (a :class:`~repro.serve.registry.TopologySpec`, resolved
through the shared snapshot registry), its scheduler weight, and the
campaign policy knobs the standalone CLI already exposes (probe
budget, retries, chaos profile, circuit breaker, compiled plane,
batch window, warehouse checkpoint).

A :class:`CampaignSession` runs the **unmodified**
:class:`~repro.campaign.orchestrator.Campaign` in a worker thread
over a fully private measurement stack — engine, prober, service,
metrics registry, event log — attached to the shared snapshot, with a
:class:`~repro.serve.scheduler.ScheduledBackend` turnstile between
the service and the backend.  Isolation plus an unmodified
orchestrator is the whole determinism argument: the served run
executes exactly the standalone code path, so
:func:`run_standalone` (the private-internet twin used by tests and
``tools/serve_soak.py --verify-standalone``) produces byte-identical
results, measurement counters included.

Streaming: each session's structured events (phase starts, probes,
revelation verdicts, the final ``campaign.metrics`` record) are
buffered on the session, optionally mirrored to a per-session JSONL
file and to the server's combined tagged stream, and can be consumed
live through :meth:`CampaignSession.stream`.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.campaign.orchestrator import (
    Campaign,
    CampaignConfig,
    CampaignResult,
)
from repro.measure import SimBackend
from repro.obs import EventLog, JsonlSink, MetricsRegistry, Obs, Tracer
from repro.probing.prober import Prober
from repro.serve.registry import (
    SnapshotRegistry,
    TopologySpec,
    render_internet,
    topology_key,
)
from repro.serve.scheduler import FairScheduler, ScheduledBackend

__all__ = [
    "AdmissionError",
    "CampaignSession",
    "TenantSpec",
    "run_standalone",
]

#: Session lifecycle states.
QUEUED, RUNNING, DONE, FAILED, CANCELLED = (
    "queued", "running", "done", "failed", "cancelled",
)


class AdmissionError(ValueError):
    """Raised when the server refuses a tenant spec.

    Admission is the contract that keeps shared snapshots safe and
    results deterministic: specs asking for prewarm workers (fork
    from a thread) or network-mutating chaos profiles (flaps against
    a frozen shared topology) are rejected up front with an
    actionable message instead of failing mid-campaign.
    """


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's campaign request."""

    tenant: str
    topology: TopologySpec = TopologySpec()
    #: Fair-scheduler weight: probes granted per unit virtual time,
    #: relative to other tenants.
    weight: float = 1.0
    #: Global probe budget (clean partial result when exhausted).
    probe_budget: Optional[int] = None
    max_retries: int = 0
    #: Shipped chaos profile injected for this tenant only; profiles
    #: that mutate the network are refused on shared snapshots.
    fault_profile: Optional[str] = None
    breaker_threshold: Optional[int] = None
    compiled_plane: bool = False
    batch_window: int = 1
    #: Warehouse root for checkpoint/resume (same machinery and
    #: snapshot keys as ``repro campaign --checkpoint/--resume``).
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    #: Truncate the campaign target list (soak/test sizing knob);
    #: None probes every campaign target.
    max_targets: Optional[int] = None
    #: Prewarm workers — must stay 1 under the server (admission
    #: enforces it); kept as a field so the spec mirrors the CLI.
    workers: int = 1
    #: Mirror this session's events to a JSONL file at this path.
    events_path: Optional[str] = None

    def campaign_config(self, internet) -> CampaignConfig:
        """The orchestrator config this spec maps to (identical to
        the standalone ``CampaignContext`` construction)."""
        return CampaignConfig(
            suspicious_asns=tuple(internet.transit_asns),
            workers=1,
            probe_budget=self.probe_budget,
            max_retries=self.max_retries,
            breaker_threshold=self.breaker_threshold,
        )

    def checkpoint_topology(self) -> Dict[str, object]:
        """The warehouse topology descriptor (checkpoint-compatible
        with ``repro campaign`` so serve and CLI runs share
        snapshots)."""
        descriptor = self.topology.descriptor()
        if self.fault_profile is not None:
            descriptor["fault_profile"] = self.fault_profile
            if self.batch_window > 1:
                descriptor["batch_window"] = self.batch_window
        return descriptor


class _BufferSink:
    """Event sink buffering records and feeding the live stream."""

    def __init__(self, session: "CampaignSession") -> None:
        self._session = session

    def write(self, record: Dict[str, object]) -> None:
        """Buffer one record and push it to any live consumer."""
        self._session._on_event(record)


class _TaggedSink:
    """Thread-safe wrapper adding a ``tenant`` field to records bound
    for a sink shared across sessions (the server's combined
    stream)."""

    def __init__(self, sink, tenant: str, lock: threading.Lock) -> None:
        self._sink = sink
        self._tenant = tenant
        self._lock = lock

    def write(self, record: Dict[str, object]) -> None:
        """Tag and forward one record under the shared lock."""
        tagged = dict(record)
        tagged["tenant"] = self._tenant
        with self._lock:
            self._sink.write(tagged)


class CampaignSession:
    """One tenant's campaign running under the server.

    Created by :meth:`repro.serve.server.CampaignServer.submit`;
    consumers hold it to await the result (:meth:`wait`), stream
    events (:meth:`stream`), and read post-run state (``result``,
    ``metrics``, ``grant_snapshot``).
    """

    def __init__(
        self,
        spec: TenantSpec,
        registry: SnapshotRegistry,
        scheduler: FairScheduler,
        loop: asyncio.AbstractEventLoop,
        shared_sink=None,
        shared_sink_lock: Optional[threading.Lock] = None,
    ) -> None:
        self.spec = spec
        self.status = QUEUED
        self.result: Optional[CampaignResult] = None
        self.error: Optional[BaseException] = None
        #: Buffered structured events (dicts, emission order).
        self.events: List[Dict[str, object]] = []
        #: Scheduler grant totals captured the moment this session
        #: finished (fairness tests read cross-tenant state here).
        self.grant_snapshot: Optional[Dict[str, Dict[str, object]]] = None
        #: The session's private metrics registry (set once the stack
        #: is built; measurement counters land here).
        self.metrics: Optional[MetricsRegistry] = None
        self.topology_key = topology_key(spec.topology)
        self._registry = registry
        self._scheduler = scheduler
        self._loop = loop
        self._shared_sink = shared_sink
        self._shared_sink_lock = shared_sink_lock
        self._done_event = asyncio.Event()
        self._stream_queue: "asyncio.Queue" = asyncio.Queue()
        self._stream_closed = False

    # ------------------------------------------------------------------
    # Consumer API (loop thread)

    async def wait(self) -> CampaignResult:
        """Await completion; returns the result or re-raises the
        session's failure."""
        await self._done_event.wait()
        if self.error is not None:
            raise self.error
        if self.status == CANCELLED:
            raise asyncio.CancelledError(
                f"session {self.spec.tenant!r} was cancelled"
            )
        assert self.result is not None
        return self.result

    async def stream(self):
        """Yield structured event records live until completion.

        Events already buffered are yielded first, so late consumers
        see the full stream.
        """
        for record in list(self.events):
            yield record
        while True:
            record = await self._stream_queue.get()
            if record is None:
                return
            yield record

    # ------------------------------------------------------------------
    # Event plumbing

    def _on_event(self, record: Dict[str, object]) -> None:
        """Buffer a record and feed the live stream (worker thread)."""
        self.events.append(record)
        self._loop.call_soon_threadsafe(self._push_stream, record)

    def _push_stream(self, record) -> None:
        """Enqueue a record for :meth:`stream` (loop thread)."""
        if not self._stream_closed:
            self._stream_queue.put_nowait(record)

    def _finalize_stream(self) -> None:
        """Close the live stream with a sentinel (loop thread)."""
        if not self._stream_closed:
            self._stream_closed = True
            self._stream_queue.put_nowait(None)

    # ------------------------------------------------------------------
    # Execution (worker thread)

    def _run(self) -> CampaignResult:
        """Build the isolated stack and run the campaign.

        Runs on an executor thread; everything it touches is either
        session-private or explicitly thread-safe (registry lock,
        scheduler handshake, tagged shared sink).
        """
        spec = self.spec
        events = EventLog()
        events.attach(_BufferSink(self))
        file_sink = None
        if spec.events_path is not None:
            file_sink = JsonlSink(spec.events_path)
            events.attach(file_sink)
        if self._shared_sink is not None:
            events.attach(
                _TaggedSink(
                    self._shared_sink, spec.tenant,
                    self._shared_sink_lock or threading.Lock(),
                )
            )
        obs = Obs(MetricsRegistry(), events, Tracer(events))
        self.metrics = obs.metrics
        attached = self._registry.attach(
            spec.topology,
            compiled_plane=spec.compiled_plane,
            batch_window=spec.batch_window,
            obs=obs,
        )
        backend = SimBackend(attached.engine)
        if spec.fault_profile is not None:
            from repro.faults import FaultyBackend, fault_profile

            backend = FaultyBackend(
                backend, fault_profile(spec.fault_profile)
            )
        gate = ScheduledBackend(
            backend, self._scheduler, spec.tenant, self._loop
        )
        prober = Prober(gate, batch_window=spec.batch_window)
        campaign = Campaign(
            prober,
            attached.vps,
            attached.asn_of_address,
            spec.campaign_config(attached),
        )
        checkpoint = None
        if spec.checkpoint_dir is not None:
            from repro.store import CampaignCheckpoint

            checkpoint = CampaignCheckpoint(
                spec.checkpoint_dir,
                topology=self.spec.checkpoint_topology(),
                resume=spec.resume,
            )
        targets = attached.campaign_targets()
        if spec.max_targets is not None:
            targets = targets[: spec.max_targets]
        try:
            result = campaign.run(targets, checkpoint=checkpoint)
            events.emit(
                "campaign.metrics",
                counters=obs.metrics.counters_snapshot(),
            )
            return result
        finally:
            service = getattr(prober, "service", None)
            if service is not None:
                attached.control.remove_invalidation_listener(
                    service.flush_cache
                )
            attached.detach()
            if file_sink is not None:
                file_sink.close()
            events.detach_all()


def run_standalone(spec: TenantSpec):
    """The standalone-orchestrator twin of a served session.

    Renders a **private** internet for ``spec.topology`` (no sharing,
    no freeze — network-mutating chaos profiles are legal here),
    builds the same measurement stack a session builds minus the
    scheduler turnstile, and runs the same campaign.  Returns
    ``(result, metrics_registry)``; tests and the soak harness assert
    the served twin is byte-identical, measurement counters included.
    """
    internet = render_internet(spec.topology)
    obs = Obs(MetricsRegistry(), EventLog())
    attached = internet.attach(
        compiled_plane=spec.compiled_plane,
        probe_batch_window=spec.batch_window,
        obs=obs,
    )
    backend = SimBackend(attached.engine)
    if spec.fault_profile is not None:
        from repro.faults import FaultyBackend, fault_profile

        backend = FaultyBackend(
            backend, fault_profile(spec.fault_profile)
        )
    prober = Prober(backend, batch_window=spec.batch_window)
    campaign = Campaign(
        prober,
        attached.vps,
        attached.asn_of_address,
        spec.campaign_config(attached),
    )
    targets = attached.campaign_targets()
    if spec.max_targets is not None:
        targets = targets[: spec.max_targets]
    result = campaign.run(targets)
    return result, obs.metrics
