"""``repro.serve`` — async multi-tenant campaign service.

Turns the one-process-per-campaign CLI model into a long-lived
service: many tenants run full measurement campaigns concurrently
over a sharded pool of **shared, read-only rendered internets**.

The subsystem has four legs:

* :mod:`repro.serve.registry` — the snapshot registry: renders a
  topology once per content key (the ``repro.store`` hashing idiom),
  freezes it, and hands out immutable attach handles so fresh engines
  ride the lazy-attach path instead of paying ``internet_build``;
* :mod:`repro.serve.scheduler` — the weighted fair scheduler and the
  :class:`~repro.serve.scheduler.ScheduledBackend` turnstile that
  interleaves probe batches across tenants;
* :mod:`repro.serve.session` — per-tenant session lifecycle: spec,
  isolated measurement stack, JSONL event streaming, checkpoint
  resume, and the standalone twin used for bit-identity checks;
* :mod:`repro.serve.server` — the asyncio :class:`CampaignServer`
  (admission control, drain) and the thread-backed in-process
  :class:`ServeClient` used by tests, the ``repro serve`` CLI, and
  ``tools/serve_soak.py``.

Determinism contract: a campaign executed through the server with
``workers=1`` is byte-identical to the standalone orchestrator —
traces, pings, revelations, *and* measurement counters.  The
scheduler only decides *when* a tenant's next batch enters the
simulator, never what is probed; per-tenant engines keep every cache
and counter private; and ``serve.*`` counters live in the server's
own registry, in the execution-prefixed namespace.
"""

from repro.serve.registry import (
    SnapshotRegistry,
    TopologySpec,
    default_registry,
    topology_key,
)
from repro.serve.scheduler import FairScheduler, ScheduledBackend
from repro.serve.session import (
    AdmissionError,
    CampaignSession,
    TenantSpec,
    run_standalone,
)
from repro.serve.server import CampaignServer, ServeClient

__all__ = [
    "AdmissionError",
    "CampaignServer",
    "CampaignSession",
    "FairScheduler",
    "ScheduledBackend",
    "ServeClient",
    "SnapshotRegistry",
    "TenantSpec",
    "TopologySpec",
    "default_registry",
    "run_standalone",
    "topology_key",
]
