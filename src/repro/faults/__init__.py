"""repro.faults — chaos for the measurement plane.

Dynamic, deterministic fault injection between the measurement service
and whatever backend actually answers probes:

* :mod:`repro.faults.profile` — :class:`FaultProfile`, the seeded,
  JSON-ready description of one chaos scenario, plus the shipped
  registry (:data:`FAULT_PROFILES`) and the loss-intensity ladder;
* :mod:`repro.faults.backend` — :class:`FaultyBackend`, the
  :class:`~repro.measure.backend.ProbeBackend` decorator that applies
  a profile (probe loss, latency spikes, rate-limit windows,
  blackouts, flaps, malformed replies) while staying bit-reproducible
  under checkpoint/resume.

The graceful-degradation counterpart lives where the campaign does:
:mod:`repro.measure.sanitize` quarantines anomalous replies and
:mod:`repro.campaign.degrade` parks repeatedly dead targets and grades
the run's ``data_quality``.
"""

from repro.faults.backend import FaultyBackend, spoofed_address
from repro.faults.profile import (
    FAULT_PROFILES,
    FLAP_ACTIONS,
    LOSS_LADDER,
    FaultProfile,
    fault_profile,
    profile_names,
)

__all__ = [
    "FAULT_PROFILES",
    "FLAP_ACTIONS",
    "LOSS_LADDER",
    "FaultProfile",
    "FaultyBackend",
    "fault_profile",
    "profile_names",
    "spoofed_address",
]
