"""Fault profiles: declarative, seeded descriptions of chaos.

A :class:`FaultProfile` says *what* goes wrong during a campaign —
probe loss, latency spikes, ICMP rate-limit windows, vantage-point
blackouts, mid-campaign flaps, malformed replies — without saying how
probes are sent.  :class:`~repro.faults.backend.FaultyBackend` applies
a profile deterministically: stateless faults are pure crc32 hashes of
(profile seed, probe identity), windowed faults are functions of the
backend's probe clock, and flaps fire at fixed clock positions — so
the same profile over the same probe sequence always injects the same
faults, which is what keeps checkpoint/resume bit-identical under
chaos.

The shipped registry (:data:`FAULT_PROFILES`) maps the paper's
real-Internet failure classes (Sec. 4–5: rate-limited LSRs, silent
routers, mid-campaign route changes behind the 8% cross-validation
failures and 9,407 non-rediscovered pairs) onto concrete profiles,
including an intensity ladder (:data:`LOSS_LADDER`) the chaos soak
uses to assert that revelation recall degrades monotonically.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Dict, List, Tuple

__all__ = [
    "FLAP_ACTIONS",
    "FaultProfile",
    "FAULT_PROFILES",
    "LOSS_LADDER",
    "fault_profile",
    "profile_names",
]

#: Supported flap actions (see ``FaultyBackend._fire_flap``):
#: ``route-change`` perturbs an intra-AS IGP weight and invalidates
#: the control plane (driving the trajectory-cache invalidation
#: hooks); ``router-down``/``router-up`` toggle ICMP on a
#: deterministically chosen core router.
FLAP_ACTIONS = ("route-change", "router-down", "router-up")


@dataclass(frozen=True)
class FaultProfile:
    """One chaos scenario, fully determined by its fields.

    Every rate is a probability in ``[0, 1]`` sampled per probe via a
    seeded hash; every window is measured in probes submitted through
    the faulty backend (its *probe clock*), not wall time — simulated
    campaigns have no meaningful wall clock, and clock-positioned
    faults are what survives checkpoint/resume exactly.
    """

    name: str = "custom"
    seed: int = 0  #: salt for every per-probe/per-victim hash

    # -- per-router probe loss (stateless) -----------------------------
    #: Probability a victim router's reply is dropped.
    loss_rate: float = 0.0
    #: Fraction of routers that are loss victims (hash-selected).
    loss_router_fraction: float = 0.0

    # -- bursty loss (probe-clock windows) -----------------------------
    #: Every ``burst_period`` probes, the first ``burst_length`` lose
    #: their replies regardless of responder.  0 disables.
    burst_period: int = 0
    burst_length: int = 0

    # -- latency spikes (stateless) ------------------------------------
    #: Added RTT for spiked replies, in simulated milliseconds.
    latency_spike_ms: float = 0.0
    #: Probability a reply is spiked.
    latency_rate: float = 0.0

    # -- ICMP rate-limit windows (probe-clock + stateless sampling) ----
    #: Every ``rate_limit_period`` probes, a window of
    #: ``rate_limit_width`` probes opens during which victim routers
    #: drop TIME_EXCEEDED replies with ``rate_limit_rate`` probability.
    rate_limit_period: int = 0
    rate_limit_width: int = 0
    rate_limit_rate: float = 0.0
    #: Fraction of routers subject to rate limiting (hash-selected).
    rate_limit_router_fraction: float = 1.0

    # -- vantage-point blackouts (probe-clock windows) -----------------
    #: Every ``blackout_period`` probes, affected vantage points see
    #: nothing for ``blackout_length`` probes.
    blackout_period: int = 0
    blackout_length: int = 0
    #: Fraction of vantage points affected (hash-selected by name).
    blackout_vp_fraction: float = 0.0

    # -- malformed replies (stateless) ---------------------------------
    #: Probability an RFC 4950 label stack is truncated to nothing.
    truncate_labels_rate: float = 0.0
    #: Probability a quoted label TTL is replaced with a bogus value.
    bogus_quoted_ttl_rate: float = 0.0
    #: Probability the reply's source address is spoofed (rewritten
    #: into unallocated space).
    spoof_source_rate: float = 0.0

    # -- scheduled flaps (probe-clock positions) -----------------------
    #: ``(at_probe, action)`` pairs, fired once when the probe clock
    #: reaches ``at_probe``; actions are in :data:`FLAP_ACTIONS`.
    flaps: Tuple[Tuple[int, str], ...] = ()

    def __post_init__(self) -> None:
        for rate_field in (
            "loss_rate", "loss_router_fraction", "latency_rate",
            "rate_limit_rate", "rate_limit_router_fraction",
            "blackout_vp_fraction", "truncate_labels_rate",
            "bogus_quoted_ttl_rate", "spoof_source_rate",
        ):
            value = getattr(self, rate_field)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{rate_field} out of [0, 1]: {value}"
                )
        for position, action in self.flaps:
            if action not in FLAP_ACTIONS:
                raise ValueError(
                    f"unknown flap action {action!r} at probe "
                    f"{position} (expected one of {FLAP_ACTIONS})"
                )

    # ------------------------------------------------------------------

    @property
    def inert(self) -> bool:
        """True when the profile injects nothing at all — a
        :class:`~repro.faults.backend.FaultyBackend` carrying an inert
        profile is transparent (byte-identical probe logs)."""
        return (
            self.loss_rate == 0.0
            and self.burst_period == 0
            and self.latency_rate == 0.0
            and (
                self.rate_limit_period == 0
                or self.rate_limit_rate == 0.0
            )
            and (
                self.blackout_period == 0
                or self.blackout_vp_fraction == 0.0
            )
            and self.truncate_labels_rate == 0.0
            and self.bogus_quoted_ttl_rate == 0.0
            and self.spoof_source_rate == 0.0
            and not self.flaps
        )

    @property
    def mutates_network(self) -> bool:
        """True when the profile fires flaps that change the simulated
        network mid-run (disables the parallel prewarm — forked
        workers would fire flaps at shard-local clock positions)."""
        return bool(self.flaps)

    # ------------------------------------------------------------------

    def to_wire(self) -> Dict[str, object]:
        """JSON-ready form (flaps become lists)."""
        wire = asdict(self)
        wire["flaps"] = [list(flap) for flap in self.flaps]
        return wire

    @classmethod
    def from_wire(cls, wire: Dict[str, object]) -> "FaultProfile":
        """Rebuild a profile from :meth:`to_wire` output; unknown
        keys are rejected so typos in hand-written profiles fail
        loudly."""
        known = {entry.name for entry in fields(cls)}
        unknown = set(wire) - known
        if unknown:
            raise ValueError(
                f"unknown fault-profile fields: {sorted(unknown)}"
            )
        data = dict(wire)
        data["flaps"] = tuple(
            (int(position), str(action))
            for position, action in data.get("flaps", ())
        )
        return cls(**data)


#: Shipped chaos scenarios, each mapped to a paper failure class (the
#: DESIGN §11 taxonomy table documents the mapping).
FAULT_PROFILES: Dict[str, FaultProfile] = {
    profile.name: profile
    for profile in (
        FaultProfile(name="none"),
        FaultProfile(
            name="loss-light",
            loss_rate=0.08, loss_router_fraction=0.35,
        ),
        FaultProfile(
            name="loss-heavy",
            loss_rate=0.35, loss_router_fraction=0.7,
        ),
        FaultProfile(
            name="bursty-loss",
            burst_period=60, burst_length=6,
        ),
        FaultProfile(
            name="latency",
            latency_spike_ms=150.0, latency_rate=0.25,
        ),
        FaultProfile(
            name="rate-limit",
            rate_limit_period=80, rate_limit_width=32,
            rate_limit_rate=0.6, rate_limit_router_fraction=0.6,
        ),
        FaultProfile(
            name="blackout",
            blackout_period=300, blackout_length=45,
            blackout_vp_fraction=0.5,
        ),
        FaultProfile(
            name="flap",
            flaps=(
                (120, "route-change"),
                (320, "router-down"),
                (520, "router-up"),
            ),
        ),
        FaultProfile(
            name="malformed",
            truncate_labels_rate=0.3,
            bogus_quoted_ttl_rate=0.2,
            spoof_source_rate=0.15,
        ),
        FaultProfile(
            name="hostile",
            loss_rate=0.1, loss_router_fraction=0.4,
            burst_period=90, burst_length=5,
            latency_spike_ms=120.0, latency_rate=0.1,
            rate_limit_period=100, rate_limit_width=30,
            rate_limit_rate=0.5, rate_limit_router_fraction=0.5,
            truncate_labels_rate=0.15,
            bogus_quoted_ttl_rate=0.1,
            spoof_source_rate=0.05,
        ),
    )
}

#: Intensity ladder with nested drop sets (same seed, growing rates):
#: every reply lost under ``loss-light`` is also lost under
#: ``loss-heavy``, so candidate pairs and revelation recall are
#: monotonically non-increasing along the ladder.
LOSS_LADDER: Tuple[str, ...] = ("none", "loss-light", "loss-heavy")


def profile_names() -> List[str]:
    """Shipped profile names, registry order."""
    return list(FAULT_PROFILES)


def fault_profile(name: str) -> FaultProfile:
    """Look up a shipped profile by name."""
    try:
        return FAULT_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {name!r} "
            f"(shipped: {', '.join(FAULT_PROFILES)})"
        ) from None
