"""FaultyBackend: deterministic fault injection at the probe layer.

Wraps any :class:`~repro.measure.backend.ProbeBackend` and applies a
:class:`~repro.faults.profile.FaultProfile` to the replies.  The inner
backend always sees every probe — a lost reply is still a walk the
dataplane performed, so trajectory caches and LDP label allocation
stay identical to a fault-free run — and the wrapper only rewrites
what comes back:

* *stateless* faults (per-router loss, latency spikes, malformed
  replies) are pure crc32 hashes of the profile seed and the probe's
  identity, so they replay identically whatever execution strategy
  runs the probes;
* *windowed* faults (bursty loss, rate-limit windows, blackouts)
  depend only on the wrapper's probe clock — the count of probes
  submitted through it — which is checkpointed via
  :meth:`fault_state` and restored on resume;
* *flaps* fire once when the clock crosses their position: a
  ``route-change`` perturbs an intra-AS IGP weight and invalidates
  the control plane (exactly the event the trajectory-cache and
  response-cache invalidation hooks exist for), ``router-down`` /
  ``router-up`` toggle ICMP on a deterministically chosen router.

With an inert profile the wrapper is fully transparent: replies pass
through unchanged (same objects, no copies) and :attr:`name` reports
the inner backend's name, so even probe-log headers are byte-identical
to running the inner backend bare.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Mapping, Optional, Sequence

from repro.faults.profile import FaultProfile
from repro.measure.backend import (
    TIME_EXCEEDED,
    ProbeBackend,
    ProbeReply,
    ProbeRequest,
)
from repro.obs import DEBUG, Obs

__all__ = ["FaultyBackend", "spoofed_address"]

#: Spoofed sources are rewritten into this prefix (multicast space —
#: never allocated by the synthetic Internet), keeping the bogus
#: address deterministic per victim while guaranteed to fail any
#: IP-to-AS lookup.
_SPOOF_BASE = 0xE0000000

#: Quoted-TTL value injected by the ``bogus_quoted_ttl`` fault;
#: RFC 4950 label-stack entries carry a TTL in [1, 255], so 0 is
#: unambiguously malformed.
_BOGUS_QUOTED_TTL = 0


def spoofed_address(responder: int) -> int:
    """The deterministic spoofed source for a genuine responder."""
    return _SPOOF_BASE | (responder & 0x0FFFFFFF)


class FaultyBackend(ProbeBackend):
    """Probe backend decorator that injects profile-driven faults."""

    def __init__(
        self,
        inner: ProbeBackend,
        profile: FaultProfile,
        obs: Optional[Obs] = None,
    ) -> None:
        self.inner = inner
        self.profile = profile
        #: Shares the inner backend's observability bundle so
        #: ``faults.*`` counters land in the campaign registry.
        self.obs: Obs = obs or getattr(inner, "obs", None) or Obs()
        #: The simulated engine, when the inner backend wraps one —
        #: needed for flaps, and re-exported so label checkpointing
        #: and perf stats keep working through the wrapper.
        self.engine = getattr(inner, "engine", None)
        #: Probes submitted through this wrapper (the fault clock).
        self.clock = 0
        self._flaps = sorted(profile.flaps)
        self._flaps_fired = 0
        self._downed: List[str] = []
        # Transparent wrappers advertise the inner backend's name so
        # recorded probe-log headers stay byte-identical.
        self.name = (
            getattr(inner, "name", "backend")
            if profile.inert
            else f"faulty+{getattr(inner, 'name', 'backend')}"
        )

    # ------------------------------------------------------------------
    # ProbeBackend protocol

    def submit(self, request: ProbeRequest) -> ProbeReply:
        """Submit through the inner backend, then apply the profile.

        The inner backend is *always* consulted (even for probes whose
        reply will be dropped): the dataplane walk must happen so
        trajectory caches and label allocation march in lockstep with
        a fault-free run.
        """
        position = self.clock
        self.clock += 1
        self._fire_due_flaps(position)
        reply = self.inner.submit(request)
        if self.profile.inert or reply.reply_kind is None:
            return reply
        return self._apply(position, request, reply)

    def submit_batch(
        self, requests: Sequence[ProbeRequest]
    ) -> List[ProbeReply]:
        """Batch submission with serial-identical fault application.

        Faults are a pure function of each probe's clock position, so
        the batch is chunked at the positions where flaps are due:
        within a chunk no flap can fire, the inner backend sees the
        chunk as one batch, and each reply is faulted at the exact
        position a serial :meth:`submit` loop would have used.
        """
        replies: List[ProbeReply] = []
        total = len(requests)
        index = 0
        while index < total:
            position = self.clock
            self._fire_due_flaps(position)
            chunk_end = total
            if self._flaps_fired < len(self._flaps):
                due = self._flaps[self._flaps_fired][0]
                chunk_end = min(total, index + (due - position))
            chunk = requests[index:chunk_end]
            self.clock += len(chunk)
            raw = self.inner.submit_batch(chunk)
            if self.profile.inert:
                replies.extend(raw)
            else:
                for offset, (request, reply) in enumerate(
                    zip(chunk, raw)
                ):
                    replies.append(
                        reply
                        if reply.reply_kind is None
                        else self._apply(position + offset, request, reply)
                    )
            index = chunk_end
        return replies

    def close(self) -> None:
        self.inner.close()

    # ------------------------------------------------------------------
    # Checkpointable state (threaded through ProbeService snapshots)

    def fault_state(self) -> Dict[str, int]:
        """Probe clock and fired-flap count, JSON-ready.

        Everything else the wrapper does is stateless (pure hashes),
        so this dict is all a resume needs to continue injecting the
        exact fault sequence the interrupted run would have seen.
        """
        return {
            "clock": self.clock,
            "flaps_fired": self._flaps_fired,
        }

    def restore_fault_state(self, state: Mapping[str, object]) -> None:
        """Restore :meth:`fault_state` onto a fresh stack.

        Flaps the interrupted run already fired are re-applied to the
        (freshly built) inner engine so the resumed network matches
        the one the interrupted run was probing.
        """
        self.clock = int(state.get("clock", 0))
        fired = int(state.get("flaps_fired", 0))
        while self._flaps_fired < min(fired, len(self._flaps)):
            position, action = self._flaps[self._flaps_fired]
            self._fire_flap(position, action)
            self._flaps_fired += 1

    # ------------------------------------------------------------------
    # Trajectory-cache hooks (delegated; prewarm disabled under flaps)

    @property
    def trajectory_cache(self) -> bool:
        """Whether the parallel prewarm may use this backend.

        Reply-level faults never touch the engine, so worker-built
        trajectories stay valid; flaps mutate the network mid-run and
        would fire at shard-local clock positions inside forked
        workers, so profiles with flaps opt out of prewarm entirely.
        """
        if self.profile.mutates_network:
            return False
        return bool(getattr(self.inner, "trajectory_cache", False))

    def trajectory_snapshot(self):
        """Delegate to the inner backend's trajectory snapshot."""
        return self.inner.trajectory_snapshot()

    def export_trajectories(self, known=frozenset()):
        """Delegate trajectory export to the inner backend."""
        return self.inner.export_trajectories(known)

    def install_trajectories(self, wires) -> int:
        """Delegate trajectory install to the inner backend."""
        return self.inner.install_trajectories(wires)

    def add_invalidation_listener(self, listener) -> None:
        """Register ``listener`` on the inner backend's control
        plane (no-op for backends without invalidation hooks) — flap
        route-changes fire it."""
        register = getattr(
            self.inner, "add_invalidation_listener", None
        )
        if callable(register):
            register(listener)

    # ------------------------------------------------------------------
    # Fault application

    def _ratio(self, *parts: object) -> float:
        """Deterministic uniform sample in [0, 1) for a fault site."""
        text = "|".join(str(part) for part in (self.profile.seed,) + parts)
        return zlib.crc32(text.encode("ascii")) / 0x100000000

    def _victim(self, salt: str, key: object, fraction: float) -> bool:
        """Hash-select whether ``key`` belongs to a victim set."""
        if fraction <= 0.0:
            return False
        if fraction >= 1.0:
            return True
        return self._ratio(salt, key) < fraction

    def _apply(
        self, position: int, request: ProbeRequest, reply: ProbeReply
    ) -> ProbeReply:
        """Apply every configured fault, in a fixed order."""
        profile = self.profile
        site = (request.source, request.dst, request.ttl,
                request.flow_id, request.kind)
        responder_key = reply.responder_router or reply.responder

        # Vantage-point blackout: the VP hears nothing at all.
        if (
            profile.blackout_period > 0
            and profile.blackout_vp_fraction > 0.0
            and position % profile.blackout_period
            < profile.blackout_length
            and self._victim(
                "blackout", request.source,
                profile.blackout_vp_fraction,
            )
        ):
            return self._drop("blackout", request, reply)

        # Bursty loss: clock-window drops, responder-agnostic.
        if (
            profile.burst_period > 0
            and position % profile.burst_period < profile.burst_length
        ):
            return self._drop("burst", request, reply)

        # Per-router probe loss.
        if (
            profile.loss_rate > 0.0
            and self._victim(
                "loss-victim", responder_key,
                profile.loss_router_fraction,
            )
            and self._ratio("loss", *site) < profile.loss_rate
        ):
            return self._drop("loss", request, reply)

        # ICMP rate-limit windows (TIME_EXCEEDED only, like real
        # routers throttling their ICMP generation path).
        if (
            profile.rate_limit_period > 0
            and profile.rate_limit_rate > 0.0
            and reply.reply_kind == TIME_EXCEEDED
            and position % profile.rate_limit_period
            < profile.rate_limit_width
            and self._victim(
                "rl-victim", responder_key,
                profile.rate_limit_router_fraction,
            )
            and self._ratio("rate-limit", *site)
            < profile.rate_limit_rate
        ):
            return self._drop("rate-limit", request, reply)

        # Non-destructive faults mutate a copy, never the inner
        # backend's reply object (it may be cached downstream).
        mutated = None

        if (
            profile.latency_rate > 0.0
            and self._ratio("latency", *site) < profile.latency_rate
        ):
            mutated = mutated or self._copy(reply)
            mutated.rtt_ms = reply.rtt_ms + profile.latency_spike_ms
            self._count("latency", request)

        if reply.quoted_labels:
            if (
                profile.truncate_labels_rate > 0.0
                and self._ratio("truncate", *site)
                < profile.truncate_labels_rate
            ):
                mutated = mutated or self._copy(reply)
                mutated.quoted_labels = []
                self._count("truncate-labels", request)
            elif (
                profile.bogus_quoted_ttl_rate > 0.0
                and self._ratio("bogus-ttl", *site)
                < profile.bogus_quoted_ttl_rate
            ):
                mutated = mutated or self._copy(reply)
                mutated.quoted_labels = [
                    (label, _BOGUS_QUOTED_TTL)
                    for label, _ in reply.quoted_labels
                ]
                self._count("bogus-quoted-ttl", request)

        if (
            profile.spoof_source_rate > 0.0
            and reply.responder is not None
            and self._ratio("spoof", *site) < profile.spoof_source_rate
        ):
            mutated = mutated or self._copy(reply)
            mutated.responder = spoofed_address(reply.responder)
            mutated.responder_router = None
            self._count("spoof-source", request)

        return mutated if mutated is not None else reply

    @staticmethod
    def _copy(reply: ProbeReply) -> ProbeReply:
        return ProbeReply(
            probe_ttl=reply.probe_ttl,
            reply_kind=reply.reply_kind,
            responder=reply.responder,
            responder_router=reply.responder_router,
            reply_ttl=reply.reply_ttl,
            quoted_labels=list(reply.quoted_labels),
            rtt_ms=reply.rtt_ms,
        )

    def _drop(
        self, kind: str, request: ProbeRequest, reply: ProbeReply
    ) -> ProbeReply:
        """Replace a reply with a timeout, accounting the injection."""
        self._count(kind, request)
        return ProbeReply(probe_ttl=reply.probe_ttl)

    def _count(self, kind: str, request: ProbeRequest) -> None:
        metrics = self.obs.metrics
        metrics.inc("faults.injected")
        metrics.inc("faults.injected." + kind)
        events = self.obs.events
        if events.debug:
            events.emit(
                "fault.injected", DEBUG, fault=kind,
                vp=request.source, dst=request.dst, ttl=request.ttl,
            )

    # ------------------------------------------------------------------
    # Flaps

    def _fire_due_flaps(self, position: int) -> None:
        while (
            self._flaps_fired < len(self._flaps)
            and position >= self._flaps[self._flaps_fired][0]
        ):
            at_probe, action = self._flaps[self._flaps_fired]
            self._fire_flap(at_probe, action)
            self._flaps_fired += 1
            self.obs.metrics.inc("faults.flaps")
            self.obs.metrics.inc("faults.flaps." + action)
            if self.obs.events.info:
                self.obs.events.emit(
                    "fault.flap", action=action, at_probe=at_probe,
                )

    def _fire_flap(self, position: int, action: str) -> None:
        """Apply one flap to the inner engine (no-op without one)."""
        engine = self.engine
        network = getattr(engine, "network", None)
        if network is None:
            return
        if getattr(network, "frozen", False):
            raise RuntimeError(
                f"fault profile {self.profile.name!r} fired a "
                f"{action!r} flap against a frozen shared snapshot; "
                "network-mutating profiles need a private internet "
                "(serve admission should have rejected this profile)"
            )
        if action == "route-change":
            links = [
                link
                for asn in sorted(network.asns())
                for link in network.intra_as_links(asn)
            ]
            if not links:
                return
            index = zlib.crc32(
                f"{self.profile.seed}|flap|{position}".encode("ascii")
            ) % len(links)
            link = links[index]
            # A metric change large enough to move best paths in the
            # scale-free weights the builder assigns.
            link.weight_ab += 7
            link.weight_ba += 7
            control = getattr(engine, "control", None)
            if control is not None:
                control.invalidate()
        elif action == "router-down":
            names = sorted(network.routers)
            if not names:
                return
            index = zlib.crc32(
                f"{self.profile.seed}|down|{position}".encode("ascii")
            ) % len(names)
            router = network.routers[names[index]]
            router.icmp_enabled = False
            self._downed.append(router.name)
        elif action == "router-up":
            for name in self._downed:
                network.routers[name].icmp_enabled = True
            self._downed = []
