"""Campaign orchestration, post-processing, cross-validation."""

from repro.campaign.crossval import (
    CrossValOutcome,
    cross_validate,
    extract_explicit_tunnels,
)
from repro.campaign.degrade import CircuitBreaker, assess_data_quality
from repro.campaign.hdn_driven import run_hdn_driven_campaign
from repro.campaign.orchestrator import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    CandidatePair,
    PerfStats,
)
from repro.campaign.postprocess import Aggregator
from repro.campaign.report import render_report
from repro.campaign.targets import select_targets, split_among_teams

__all__ = [
    "Aggregator",
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "CandidatePair",
    "CircuitBreaker",
    "CrossValOutcome",
    "PerfStats",
    "assess_data_quality",
    "cross_validate",
    "extract_explicit_tunnels",
    "render_report",
    "run_hdn_driven_campaign",
    "select_targets",
    "split_among_teams",
]
