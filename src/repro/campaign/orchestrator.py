"""Measurement campaign orchestration (Sec. 4).

A :class:`Campaign` drives the full measurement pipeline over a
synthetic Internet:

1. traceroute every (vantage point, destination) pair — Paris
   traceroute with ICMP echo probes starting at TTL 2;
2. ping every address discovered, for TTL fingerprinting;
3. extract candidate Ingress–Egress pairs from trace tails
   (``..., X, Y, D`` with X and Y in the same suspicious AS);
4. run the DPR/BRPR revelation recursion on each pair.

The result object carries raw traces, pings, revelations, and ready
analyzers (signatures, FRPLA, RTLA) for the experiment code.

With ``CampaignConfig.workers > 1`` each phase is preceded by a
parallel *prewarm*: the (vp, destination) work items are sharded
across forked worker processes that execute the same probing code,
discard the measurement results, and ship back only the forwarding
engine's memoised trajectories (see
:mod:`repro.dataplane.trajectory`).  The parent installs those and
then replays the phase serially against a warm cache — so the
measurement results are produced by exactly the same serial code path
and are bit-identical to a ``workers=1`` run, while the expensive
symbolic walks happen concurrently.  Flow identifiers are a pure
function of (vp, destination) (see ``Prober._flow_for``), which is
what makes worker-built trajectories line up with the parent's cache
keys.

:meth:`Campaign.run` optionally takes a *checkpoint* (see
:mod:`repro.store`): every completed traceroute, fingerprint ping,
and pair revelation is persisted as it finishes, and a resumed run
replays the restored prefix of each phase before probing the
remainder live — producing a result bit-identical to an
uninterrupted run, measurement counters included.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.campaign.degrade import CircuitBreaker, assess_data_quality
from repro.core.frpla import FrplaAnalyzer
from repro.core.revelation import (
    Revelation,
    candidate_endpoints,
    reveal_tunnel,
)
from repro.core.rtla import RtlaAnalyzer
from repro.core.signatures import SignatureInventory
from repro.core.technique import (
    TechniqueRegistry,
    TriggerContext,
    default_techniques,
)
from repro.measure.service import BudgetExceeded
from repro.net.router import Router
from repro.obs import EventLog, MetricsRegistry, Obs, Tracer
from repro.probing.prober import PingResult, Prober, Trace

__all__ = [
    "CampaignConfig", "CandidatePair", "PerfStats", "CampaignResult",
    "Campaign",
]

logger = logging.getLogger(__name__)

#: Campaign forked prewarm workers read their work context from here
#: (set just before the fork, cleared right after).
_WORKER_CAMPAIGN: Optional["Campaign"] = None

#: Registry counters (under ``engine.``) snapshotted into
#: :class:`PerfStats` as whole-run deltas.
_ENGINE_COUNTERS = (
    "trajectory_hits", "trajectory_misses", "hops_walked",
    "packets_simulated",
)

#: Compiled-plane registry counters snapshotted into
#: :attr:`PerfStats.compiled` as whole-run deltas (keyed by the
#: suffix after ``dataplane.compiled.``).
_COMPILED_COUNTERS = (
    "dataplane.compiled.builds",
    "dataplane.compiled.invalidations",
    "dataplane.compiled.batches",
    "dataplane.compiled.fallback_to_scalar",
)

#: Measurement counters whose whole-run deltas feed the data-quality
#: grade (see :func:`repro.campaign.degrade.assess_data_quality`).
_QUALITY_COUNTERS = (
    "measure.probes",
    "probe.reply.none",
    "measure.quarantined",
    "faults.injected",
    "measure.retries",
    "measure.retries_exhausted",
    "campaign.pings_parked",
)


def _prewarm_worker(
    tasks: List[tuple],
) -> Tuple[Dict[tuple, dict], Dict[str, int]]:
    """Run ``tasks`` in a forked worker.

    Returns the trajectory wires the worker built plus its metrics
    counter deltas (the fork inherited the parent's registry, so only
    growth since the fork is shipped back).  Event sinks are detached
    first: a forked worker must never write into the parent's trace
    file.
    """
    campaign = _WORKER_CAMPAIGN
    backend = campaign.prober.backend
    campaign.obs.events.detach_all()
    service = getattr(campaign.prober, "service", None)
    if service is not None:
        # Worker probes warm caches; they must not consume (or trip)
        # the campaign's probe budgets, whose spend counters the fork
        # inherited from the parent.
        service.exempt_budgets()
    base = campaign.obs.metrics.counters_snapshot()
    known = backend.trajectory_snapshot()
    for task in tasks:
        campaign._execute_prewarm(task)
    return (
        backend.export_trajectories(known),
        campaign.obs.metrics.counter_deltas(base),
    )


@dataclass(frozen=True)
class CampaignConfig:
    """Campaign parameters."""

    start_ttl: int = 2  #: the paper starts probing at TTL 2
    teams: int = 5  #: VP teams sharing the destination set
    probing_rate_pps: float = 25.0  #: scamper rate in the paper
    max_revelation_steps: int = 12
    #: Only keep candidate pairs whose endpoints both map to one of
    #: these ASes (the "suspicious" MPLS transits).  None = any AS.
    suspicious_asns: Optional[Tuple[int, ...]] = None
    #: Optional HDN address filter: when set, X and Y must be in it.
    hdn_addresses: Optional[frozenset] = None
    ping_discovered: bool = True
    #: Worker processes for the parallel trajectory prewarm; 1 = fully
    #: serial.  Results are bit-identical either way.
    workers: int = 1
    #: Global probe budget for the whole campaign; None = unlimited.
    #: An exhausted budget stops the run cleanly with a partial result
    #: (``CampaignResult.partial``).
    probe_budget: Optional[int] = None
    #: Per-scope probe budgets as (scope, limit) pairs — scopes are
    #: the phase names plus the technique registry's scopes
    #: ("revelation"/"dpr"/"brpr", "tnt" for the TNT pipeline).
    scope_budgets: Optional[Tuple[Tuple[str, int], ...]] = None
    #: Retries per probe on timeout (``*`` hops), applied by the
    #: measurement service.
    max_retries: int = 0
    #: Base wall-clock backoff between retries, doubled per attempt.
    retry_backoff_ms: float = 0.0
    #: Response-cache mode for the measurement service.  ``"ping"``
    #: dedupes cross-phase re-pings of addresses whose replies were
    #: already observed (see ``campaign.pings_saved``).
    cache_mode: str = "ping"
    #: Quarantine anomalous replies (malformed RFC 4950 stacks, bogus
    #: TTLs, spoofed sources) before they reach the analyzers — see
    #: :mod:`repro.measure.sanitize`.
    sanitize_replies: bool = True
    #: Consecutive fingerprint-ping losses before the circuit breaker
    #: parks a target (revisited once at phase end); None disables
    #: parking.
    breaker_threshold: Optional[int] = None
    #: Registry name of the revelation technique driving the
    #: revelation phase.  None keeps the classic behaviour — the
    #: untriggered combined DPR/BRPR recursion on every candidate
    #: pair.  A named technique (e.g. ``"tnt"``) runs its trigger on
    #: each pair first and only reveals the pairs that fire; skipped
    #: pairs get an empty, technique-stamped revelation so checkpoint
    #: indices stay aligned with the pair list.
    revelation_technique: Optional[str] = None
    #: Candidate pairs whose revelation the caller carries forward
    #: from an earlier snapshot (the monitor's incremental path):
    #: listed ``(ingress, egress)`` pairs skip the revelation
    #: recursion and get an empty revelation stamped
    #: ``technique="carried"`` — the monitor substitutes the prior
    #: epoch's revelation afterwards.  None (the default) reveals
    #: every pair; the field is omitted from the snapshot identity
    #: when None so pre-monitor campaign keys are preserved.
    carried_pairs: Optional[Tuple[Tuple[int, int], ...]] = None


@dataclass
class PerfStats:
    """Performance observability for one campaign run.

    Populated from the campaign's :class:`~repro.obs.metrics.\
MetricsRegistry` (whole-run ``engine.*`` counter deltas, plus the
    per-phase attribution recorded by ``Campaign._phase``); the public
    field shape is stable so reports and older callers keep working.
    Wall-clock is recorded per pipeline phase; the engine counters are
    deltas over the run (they include any parallel prewarm replay the
    parent performed, so ``hit_rate`` directly shows how much of the
    serial replay was served from the trajectory cache).
    """

    workers: int = 1  #: worker processes the campaign ran with
    #: Phase name ("trace", "ping", "extract", "revelation") to
    #: wall-clock seconds spent in it (prewarm included).
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Phase name to its engine counter deltas (currently
    #: ``trajectory_hits`` / ``trajectory_misses``) — the per-phase
    #: cache attribution the registry records as
    #: ``phase.<name>.trajectory_hits`` etc.
    phase_counters: Dict[str, Dict[str, int]] = field(
        default_factory=dict
    )
    trajectory_hits: int = 0  #: engine cache hits during the run
    trajectory_misses: int = 0  #: engine cache misses during the run
    hops_walked: int = 0  #: per-hop walk steps executed
    packets_simulated: int = 0  #: packets simulated (probes + replies)
    retries: int = 0  #: timeout re-probes issued by the service
    retries_exhausted: int = 0  #: probes still unanswered after them
    #: Compiled-plane counter deltas (``builds``, ``invalidations``,
    #: ``batches``, ``fallback_to_scalar``); all zero when the engine
    #: runs without a compiled plane.
    compiled: Dict[str, int] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Trajectory-cache hit fraction (0.0 when unused)."""
        total = self.trajectory_hits + self.trajectory_misses
        return self.trajectory_hits / total if total else 0.0

    @property
    def total_seconds(self) -> float:
        """Wall-clock total across all recorded phases."""
        return sum(self.phase_seconds.values())


@dataclass
class CandidatePair:
    """One candidate invisible tunnel: trace tail ``X, Y, D``."""

    vp: str  #: observing vantage point (router name)
    ingress: int  #: X
    egress: int  #: Y
    asn: int  #: common AS of X and Y
    trace: Trace  #: the original transit trace


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    traces: List[Trace] = field(default_factory=list)
    pings: Dict[int, PingResult] = field(default_factory=dict)
    pairs: List[CandidatePair] = field(default_factory=list)
    #: (ingress, egress) -> revelation outcome
    revelations: Dict[Tuple[int, int], Revelation] = field(
        default_factory=dict
    )
    inventory: SignatureInventory = field(default_factory=SignatureInventory)
    rtla: RtlaAnalyzer = field(default_factory=RtlaAnalyzer)
    probes_sent: int = 0
    revelation_probes: int = 0
    #: Quarantined-reply records, in measurement order (see
    #: :mod:`repro.measure.sanitize`) — part of result equality so a
    #: resumed run must reproduce them exactly.
    quarantine: List[dict] = field(default_factory=list)
    #: Data-quality annotation (``repro.quality/1``) graded from this
    #: run's measurement counters — see
    #: :func:`repro.campaign.degrade.assess_data_quality`.
    data_quality: Dict[str, object] = field(default_factory=dict)
    #: True when the run stopped early (probe budget exhausted); the
    #: populated phases still hold valid partial measurements.
    partial: bool = False
    #: Human-readable reason the run stopped early, when it did.
    stop_reason: Optional[str] = None
    #: Snapshot directory when the run was checkpointed (excluded
    #: from equality: a resumed result must equal its uninterrupted
    #: twin, which never had a checkpoint).
    checkpoint_dir: Optional[str] = field(default=None, compare=False)
    #: Timings and cache counters; excluded from equality so parallel
    #: and serial runs of the same campaign still compare equal.
    perf: PerfStats = field(default_factory=PerfStats, compare=False)

    # ------------------------------------------------------------------

    def successful_revelations(self) -> List[Revelation]:
        """Revelations that exposed at least one hidden hop."""
        return [r for r in self.revelations.values() if r.success]

    def revealed_addresses(self) -> Set[int]:
        """All addresses surfaced by revelation."""
        revealed: Set[int] = set()
        for revelation in self.revelations.values():
            revealed.update(revelation.revealed)
        return revealed

    def revelation_for_pair(
        self, ingress: int, egress: int
    ) -> Optional[Revelation]:
        """Lookup by endpoint pair."""
        return self.revelations.get((ingress, egress))

    def duration_estimate_seconds(
        self, rate_pps: float = 25.0, teams: int = 5
    ) -> float:
        """Wall-clock estimate for the whole campaign.

        Teams probe concurrently at ``rate_pps`` each (the paper ran
        scamper at 25 packets/second per VP set; its five sets took 11
        to 18 days over 1.3M destinations).
        """
        if rate_pps <= 0 or teams < 1:
            raise ValueError("rate and team count must be positive")
        total = self.probes_sent + self.revelation_probes
        return total / (rate_pps * teams)

    def stop_summary(self) -> Optional[str]:
        """One-line account of an early stop, with a resume hint.

        None for complete runs.  When the run was checkpointed the
        summary says where the snapshot lives and how to resume it;
        otherwise it points at ``--checkpoint`` so the *next*
        interruption is recoverable.
        """
        if not self.partial:
            return None
        reason = self.stop_reason or "stopped early"
        if self.checkpoint_dir:
            root = os.path.dirname(
                self.checkpoint_dir.rstrip("/")
            ) or self.checkpoint_dir
            return (
                f"{reason}; progress is checkpointed in "
                f"{self.checkpoint_dir} — resume with: "
                f"repro campaign --resume {root}"
            )
        return (
            f"{reason}; progress was not checkpointed — add "
            "--checkpoint DIR to make interrupted runs resumable"
        )


class Campaign:
    """Runs the Sec. 4 pipeline against a simulated Internet."""

    def __init__(
        self,
        prober: Prober,
        vantage_points: Sequence[Router],
        asn_of: Callable[[int], Optional[int]],
        config: Optional[CampaignConfig] = None,
        techniques: Optional[TechniqueRegistry] = None,
    ) -> None:
        if not vantage_points:
            raise ValueError("campaign needs at least one vantage point")
        self.prober = prober
        self.vps = list(vantage_points)
        self.asn_of = asn_of
        self.config = config or CampaignConfig()
        #: The technique registry everything per-technique routes
        #: through: revelation dispatch, degrade grading, analyzers.
        self.techniques = (
            techniques if techniques is not None else default_techniques()
        )
        name = self.config.revelation_technique
        if name is not None:
            technique = self.techniques.get(name)  # raises on unknown
            if technique.reveal is None:
                raise ValueError(
                    f"technique {name!r} has no revelation strategy"
                )
        self._vp_by_name = {vp.name: vp for vp in self.vps}
        #: One observability bundle for the whole campaign stack —
        #: shared with the prober/engine when they have one, so every
        #: layer records into a single metrics registry.
        self.obs: Obs = getattr(prober, "obs", None) or Obs()
        #: The prober's measurement service (None for duck-typed
        #: probers); the campaign installs its policy on it.
        self.service = getattr(prober, "service", None)
        if self.service is not None:
            self.service.configure(
                probe_budget=self.config.probe_budget,
                scope_budgets=(
                    dict(self.config.scope_budgets)
                    if self.config.scope_budgets
                    else None
                ),
                max_retries=self.config.max_retries,
                retry_backoff_ms=self.config.retry_backoff_ms,
                cache_mode=self.config.cache_mode,
                sanitize=self.config.sanitize_replies,
                address_validator=(
                    self._known_address
                    if self.config.sanitize_replies
                    else None
                ),
            )

    def _known_address(self, address: int) -> bool:
        """Does ``address`` belong to the campaign's address space?
        (The sanitizer's spoofed-source check — a responder outside
        the IP-to-AS view cannot be a real router of the measured
        Internet.)"""
        return self.asn_of(address) is not None

    # ------------------------------------------------------------------
    # Phases

    def run(
        self, destinations: Sequence[int], checkpoint=None
    ) -> CampaignResult:
        """Full pipeline: trace, ping, extract pairs, reveal.

        ``checkpoint`` (a
        :class:`repro.store.checkpoint.CampaignCheckpoint`, duck
        typed to keep the layering one-way) persists each completed
        work item and, when resuming, replays the restored prefix of
        every phase so only the remainder is probed live.  The
        resumed result — revelations, analyzers, probe counts, and
        measurement counters alike — is bit-identical to an
        uninterrupted run.
        """
        logger.info(
            "campaign start: %d destinations, %d VPs, workers=%d",
            len(destinations), len(self.vps), self.config.workers,
        )
        result = CampaignResult()
        result.perf.workers = max(1, self.config.workers)
        result.rtla.bind_obs(self.obs)
        metrics = self.obs.metrics
        metrics.inc("campaign.runs")
        if self.service is not None:
            # Response caching is per run: a fresh run must never
            # serve replies measured by a previous one — likewise the
            # quarantine log (a resume re-imports the interrupted
            # run's records below).
            self.service.flush_cache()
            self.service.clear_quarantine()
        cache_hits_before = metrics.get("measure.cache.hits")
        # Baselines for the data-quality grade: taken before a resume
        # restores the interrupted run's counters, so the final deltas
        # cover the *whole* logical run either way.
        quality_before = {
            name: metrics.get(name) for name in _QUALITY_COUNTERS
        }
        if checkpoint is not None:
            # After the flush (a resume *re-imports* the interrupted
            # run's cache) and after the cache-hit baseline (restored
            # hit counters must land in the ``pings_saved`` window).
            checkpoint.begin(self, destinations, result)
        counters = self._engine_counters()
        compiled_before = {
            name: metrics.get(name) for name in _COMPILED_COUNTERS
        }
        with self.obs.tracer.span(
            "campaign.run", destinations=len(destinations),
            workers=self.config.workers,
        ):
            try:
                skip = self._restored(checkpoint, "trace")
                with self._phase(result, "trace"):
                    self._prewarm([
                        ("trace", vp.name, dst)
                        for vp, dst in self._team_assignment(
                            destinations
                        )
                    ][skip:])
                    self.trace_phase(destinations, result, checkpoint)
                if self.config.ping_discovered:
                    skip = self._restored(checkpoint, "ping")
                    with self._phase(result, "ping"):
                        self._prewarm([
                            ("ping", vp_name, address)
                            for vp_name, address in sorted(
                                self._ping_pairs(result)
                            )
                        ][skip:])
                        self.ping_phase(result, checkpoint)
                with self._phase(result, "extract"):
                    self.extract_pairs(result)
                    if checkpoint is not None:
                        checkpoint.record_pairs(result)
                skip = self._restored(checkpoint, "revelation")
                carried = frozenset(self.config.carried_pairs or ())
                with self._phase(result, "revelation"):
                    self._prewarm([
                        ("reveal", pair.vp, pair.ingress, pair.egress)
                        for index, pair in enumerate(result.pairs)
                        if index >= skip
                        and (pair.ingress, pair.egress) not in carried
                    ])
                    self.revelation_phase(result, checkpoint)
            except BudgetExceeded as exc:
                # A clean early stop: keep everything measured so far
                # and report why the remainder is missing.
                result.partial = True
                result.stop_reason = str(exc)
                metrics.inc("campaign.partial_runs")
                if self.obs.events.info:
                    self.obs.events.emit(
                        "campaign.partial", reason=str(exc),
                        scope=exc.scope, budget=exc.budget,
                    )
                logger.warning("campaign stopped early: %s", exc)
        for name, end in self._engine_counters().items():
            setattr(result.perf, name, end - counters[name])
        result.perf.compiled = {
            name.rsplit(".", 1)[-1]:
                metrics.get(name) - compiled_before[name]
            for name in _COMPILED_COUNTERS
        }
        metrics.inc(
            "campaign.pings_saved",
            metrics.get("measure.cache.hits") - cache_hits_before,
        )
        metrics.inc("campaign.traces", len(result.traces))
        metrics.inc("campaign.pings", len(result.pings))
        metrics.inc("campaign.pairs", len(result.pairs))
        metrics.inc(
            "campaign.revelations.success",
            len(result.successful_revelations()),
        )
        metrics.inc("campaign.probes", result.probes_sent)
        metrics.inc("campaign.revelation_probes", result.revelation_probes)
        if self.service is not None:
            result.quarantine = [
                dict(record)
                for record in self.service.quarantine_records
            ]
        quality_deltas = {
            name: metrics.get(name) - quality_before[name]
            for name in _QUALITY_COUNTERS
        }
        result.data_quality = assess_data_quality(
            result, quality_deltas, techniques=self.techniques
        )
        result.perf.retries = quality_deltas["measure.retries"]
        result.perf.retries_exhausted = quality_deltas[
            "measure.retries_exhausted"
        ]
        if checkpoint is not None:
            checkpoint.finish(result)
        logger.info(
            "campaign done: %d traces, %d pairs, %d revealed, %.3fs",
            len(result.traces), len(result.pairs),
            len(result.successful_revelations()),
            result.perf.total_seconds,
        )
        return result

    @staticmethod
    def _restored(checkpoint, phase: str) -> int:
        """Restored-record count for ``phase`` (0 without one)."""
        if checkpoint is None:
            return 0
        return checkpoint.restored_count(phase)

    @contextmanager
    def _quiet_replay(self, result: CampaignResult):
        """Replay restored observations without re-counting them.

        The RTLA analyzer increments measurement counters inside
        ``add_trace``/``add_ping``; a resumed run restores those
        totals from the checkpoint, so the replayed prefix must feed
        the analyzers through a throwaway registry or every restored
        observation would be counted twice.
        """
        scratch_events = EventLog()
        result.rtla.bind_obs(
            Obs(MetricsRegistry(), scratch_events, Tracer(scratch_events))
        )
        try:
            yield
        finally:
            result.rtla.bind_obs(self.obs)

    def trace_phase(
        self,
        destinations: Sequence[int],
        result: CampaignResult,
        checkpoint=None,
    ) -> None:
        """Traceroute each destination from its team's VPs.

        With a checkpoint, traces restored from the snapshot are
        replayed through the analyzers first (no probing), and each
        live trace is recorded as soon as it completes — probe
        accounting is brought up to date *before* the record is
        written so the checkpointed state matches the result state.
        """
        teams = self._team_assignment(destinations)
        restored = self._restored(checkpoint, "trace")
        if restored:
            with self._quiet_replay(result):
                for index in range(min(restored, len(teams))):
                    trace = checkpoint.restored_trace(index)
                    result.traces.append(trace)
                    result.inventory.observe_trace(trace)
                    result.rtla.add_trace(trace)
        before = self.prober.probes_sent
        try:
            for index, (vp, dst) in enumerate(teams):
                if index < restored:
                    continue
                trace = self.prober.traceroute(
                    vp, dst, start_ttl=self.config.start_ttl
                )
                result.probes_sent += self.prober.probes_sent - before
                before = self.prober.probes_sent
                result.traces.append(trace)
                result.inventory.observe_trace(trace)
                result.rtla.add_trace(trace)
                if checkpoint is not None:
                    checkpoint.record_trace(index, trace)
        finally:
            # Account even when a probe budget stops the phase early
            # (probes spent on the aborted item are real spend, but
            # are never checkpointed — a resume re-runs that item).
            result.probes_sent += self.prober.probes_sent - before

    def ping_phase(
        self, result: CampaignResult, checkpoint=None
    ) -> None:
        """Ping every address seen in the traces (fingerprinting).

        Each address is pinged from *every* vantage point that saw it:
        RTLA pairs time-exceeded and echo-reply observations per VP,
        so a ping from a different VP would be useless to it.

        ``result.pings`` keeps the *first responsive* ping per address
        (an unresponsive placeholder is upgraded once), so the mapping
        is deterministic under any shard/merge order.

        The pair set includes trace *destinations*, whose echo-replies
        the trace phase already observed — historically those were
        re-probed on the wire.  With ping caching on (the campaign
        default) the measurement service serves them from replies
        seeded during the trace phase; the saved probes surface as the
        ``campaign.pings_saved`` counter.

        With ``CampaignConfig.breaker_threshold`` set, a per-target
        circuit breaker parks addresses that missed that many pings in
        a row: parked targets get a synthesized timeout instead of a
        probe (``campaign.pings_parked``), and every parked address is
        revisited with one real probe at phase end
        (``campaign.pings_revisited``) — so a transiently blacked-out
        router still gets a chance to upgrade its placeholder.  Parked
        and revisit pings are checkpointed like any other; a resume
        re-derives the breaker's decisions from the recorded outcomes.
        """
        pairs = sorted(self._ping_pairs(result))
        restored = self._restored(checkpoint, "ping")
        breaker = (
            CircuitBreaker(self.config.breaker_threshold)
            if self.config.breaker_threshold is not None
            else None
        )
        parked: List[Tuple[str, int]] = []
        metrics = self.obs.metrics
        if restored:
            with self._quiet_replay(result):
                for index in range(restored):
                    vp_name, address, ping = (
                        checkpoint.restored_ping(index)
                    )
                    if index < len(pairs) and breaker is not None:
                        # Re-derive the interrupted run's breaker
                        # decisions from the recorded outcomes — the
                        # breaker is deterministic, so the parked set
                        # rebuilds exactly (counters were restored
                        # from the checkpoint, so none are re-bumped
                        # here).
                        if breaker.tripped(address):
                            parked.append((vp_name, address))
                        breaker.record(address, ping.responded)
                    self._take_ping(result, address, ping)
        before = self.prober.probes_sent
        try:
            for index, (vp_name, address) in enumerate(pairs):
                if index < restored:
                    continue
                if breaker is not None and breaker.tripped(address):
                    # Parked: synthesize the loss without burning a
                    # probe; the phase-end revisit below is its one
                    # real retry.
                    ping = PingResult(
                        dst=address, responded=False, source=vp_name
                    )
                    parked.append((vp_name, address))
                    metrics.inc("campaign.pings_parked")
                else:
                    ping = self.prober.ping(
                        self._vp_by_name[vp_name], address
                    )
                result.probes_sent += self.prober.probes_sent - before
                before = self.prober.probes_sent
                if breaker is not None:
                    breaker.record(address, ping.responded)
                self._take_ping(result, address, ping)
                if checkpoint is not None:
                    checkpoint.record_ping(index, vp_name, address, ping)
            # Phase-end revisit: one real probe per parked address
            # (dedup by address, first-park order).  Revisit records
            # continue the phase's checkpoint indices past the pair
            # list, so resume replays them like any other ping.
            seen_parked: Set[int] = set()
            revisit: List[Tuple[str, int]] = []
            for vp_name, address in parked:
                if address not in seen_parked:
                    seen_parked.add(address)
                    revisit.append((vp_name, address))
            revisit_restored = max(0, restored - len(pairs))
            for offset, (vp_name, address) in enumerate(revisit):
                if offset < revisit_restored:
                    continue
                ping = self.prober.ping(
                    self._vp_by_name[vp_name], address
                )
                result.probes_sent += self.prober.probes_sent - before
                before = self.prober.probes_sent
                metrics.inc("campaign.pings_revisited")
                self._take_ping(result, address, ping)
                if checkpoint is not None:
                    checkpoint.record_ping(
                        len(pairs) + offset, vp_name, address, ping
                    )
        finally:
            result.probes_sent += self.prober.probes_sent - before

    @staticmethod
    def _take_ping(
        result: CampaignResult, address: int, ping: PingResult
    ) -> None:
        """Fold one fingerprint ping into the result (first
        responsive observation wins) and the analyzers."""
        existing = result.pings.get(address)
        if existing is None or (
            ping.responded and not existing.responded
        ):
            result.pings[address] = ping
        result.inventory.observe_ping(ping)
        result.rtla.add_ping(ping)

    def _ping_pairs(self, result: CampaignResult) -> Set[Tuple[str, int]]:
        """The (vp name, address) pairs the ping phase will probe."""
        pairs: Set[Tuple[str, int]] = set()
        for trace in result.traces:
            for address in trace.addresses:
                pairs.add((trace.source, address))
        return pairs

    def extract_pairs(self, result: CampaignResult) -> None:
        """Trace tails ``X, Y, D`` with X, Y in one suspicious AS."""
        seen: Set[Tuple[int, int]] = set()
        suspicious = (
            set(self.config.suspicious_asns)
            if self.config.suspicious_asns is not None
            else None
        )
        for trace in result.traces:
            pair = candidate_endpoints(trace)
            if pair is None:
                continue
            x, y = pair
            if (x, y) in seen:
                continue
            asn_x = self.asn_of(x)
            asn_y = self.asn_of(y)
            if asn_x is None or asn_x != asn_y:
                continue
            if suspicious is not None and asn_x not in suspicious:
                continue
            if self.config.hdn_addresses is not None and (
                x not in self.config.hdn_addresses
                or y not in self.config.hdn_addresses
            ):
                continue
            seen.add((x, y))
            result.pairs.append(
                CandidatePair(
                    vp=trace.source,
                    ingress=x,
                    egress=y,
                    asn=asn_x,
                    trace=trace,
                )
            )

    def revelation_phase(
        self, result: CampaignResult, checkpoint=None
    ) -> None:
        """Run the configured revelation strategy on every pair.

        The classic campaign (``revelation_technique=None``) runs the
        combined DPR/BRPR recursion unconditionally; a named registry
        technique gates each pair on its trigger first.
        """
        self._reveal_pairs(result, checkpoint)

    def _reveal_pairs(
        self, result: CampaignResult, checkpoint=None
    ) -> None:
        """The revelation loop proper (split out for accounting).

        Probe accounting is per pair (``revelation_probes`` grows as
        each pair finishes, with a ``finally`` catch-all for the pair
        a budget aborts) so a checkpoint record always reflects the
        completed pairs exactly.
        """
        restored = self._restored(checkpoint, "revelation")
        if restored:
            with self._quiet_replay(result):
                for index in range(
                    min(restored, len(result.pairs))
                ):
                    ingress, egress, revelation, pings = (
                        checkpoint.restored_revelation(index)
                    )
                    result.revelations[(ingress, egress)] = revelation
                    for address, ping in pings:
                        result.pings[address] = ping
                        result.inventory.observe_ping(ping)
                        result.rtla.add_ping(ping)
        technique_name = self.config.revelation_technique
        technique = (
            self.techniques.get(technique_name)
            if technique_name is not None
            else None
        )
        metrics = self.obs.metrics
        carried = frozenset(self.config.carried_pairs or ())
        before = self.prober.probes_sent
        try:
            for index, pair in enumerate(result.pairs):
                if index < restored:
                    continue
                if (pair.ingress, pair.egress) in carried:
                    # Carried forward from a prior snapshot by the
                    # monitor's staleness engine: record an empty,
                    # stamped revelation so checkpoint indices stay
                    # aligned; the caller merges the prior epoch's
                    # revelation into the result afterwards.
                    metrics.inc("campaign.pairs_carried")
                    revelation = Revelation(
                        ingress=pair.ingress,
                        egress=pair.egress,
                        technique="carried",
                    )
                    result.revelations[
                        (pair.ingress, pair.egress)
                    ] = revelation
                    if checkpoint is not None:
                        checkpoint.record_revelation(
                            index, revelation, []
                        )
                    continue
                vp = self._vp_by_name[pair.vp]
                if technique is not None and technique.trigger is not None:
                    context = TriggerContext(
                        pair=pair, result=result, config=self.config
                    )
                    if not technique.trigger(context):
                        # Untriggered: record an empty, stamped
                        # revelation so checkpoint indices stay
                        # aligned with the pair list.
                        metrics.inc(
                            f"technique.{technique_name}.skipped"
                        )
                        revelation = Revelation(
                            ingress=pair.ingress,
                            egress=pair.egress,
                            technique=technique_name,
                        )
                        result.revelations[
                            (pair.ingress, pair.egress)
                        ] = revelation
                        if checkpoint is not None:
                            checkpoint.record_revelation(
                                index, revelation, []
                            )
                        continue
                    metrics.inc(f"technique.{technique_name}.triggered")
                try:
                    if technique is not None:
                        revelation = technique.reveal(
                            self.prober,
                            vp,
                            ingress=pair.ingress,
                            egress=pair.egress,
                            max_steps=self.config.max_revelation_steps,
                            start_ttl=self.config.start_ttl,
                        )
                    else:
                        revelation = reveal_tunnel(
                            self.prober,
                            vp,
                            ingress=pair.ingress,
                            egress=pair.egress,
                            max_steps=self.config.max_revelation_steps,
                            start_ttl=self.config.start_ttl,
                        )
                except BudgetExceeded as exc:
                    # Keep what the aborted recursion did reveal,
                    # flagged incomplete.  The pair is deliberately
                    # *not* checkpointed: a resume re-runs it whole,
                    # replacing the partial revelation.
                    partial = getattr(exc, "partial_revelation", None)
                    if partial is not None:
                        result.revelations[
                            (pair.ingress, pair.egress)
                        ] = partial
                    raise
                result.revelations[(pair.ingress, pair.egress)] = (
                    revelation
                )
                follow_ups = []
                for trace_address in revelation.revealed:
                    # Fingerprint newly surfaced routers too.
                    if (
                        self.config.ping_discovered
                        and trace_address not in result.pings
                    ):
                        ping = self.prober.ping(vp, trace_address)
                        result.pings[trace_address] = ping
                        result.inventory.observe_ping(ping)
                        result.rtla.add_ping(ping)
                        follow_ups.append((trace_address, ping))
                result.revelation_probes += (
                    self.prober.probes_sent - before
                )
                before = self.prober.probes_sent
                if checkpoint is not None:
                    checkpoint.record_revelation(
                        index, revelation, follow_ups
                    )
        finally:
            result.revelation_probes += (
                self.prober.probes_sent - before
            )

    # ------------------------------------------------------------------
    # Parallel prewarm

    def _prewarm(self, tasks: List[tuple]) -> None:
        """Shard ``tasks`` across worker processes to warm the cache.

        Workers fork from the current process, execute the probing for
        their shard (discarding the measurement results), and return
        the trajectories their engines built; the parent installs them
        so the serial phase replay mostly hits the cache.  A no-op for
        ``workers <= 1``, an uncached engine, or when forking is
        unavailable — the phase then simply runs serially cold.
        """
        workers = self.config.workers
        backend = getattr(self.prober, "backend", None)
        if (
            workers <= 1
            or not tasks
            or backend is None
            or not getattr(backend, "trajectory_cache", False)
            or not hasattr(backend, "export_trajectories")
        ):
            return
        shards = [tasks[i::workers] for i in range(workers)]
        shards = [shard for shard in shards if shard]
        global _WORKER_CAMPAIGN
        _WORKER_CAMPAIGN = self
        try:
            context = multiprocessing.get_context("fork")
            with context.Pool(len(shards)) as pool:
                wire_sets = pool.map(_prewarm_worker, shards)
        except (OSError, ValueError):
            return
        finally:
            _WORKER_CAMPAIGN = None
        metrics = self.obs.metrics
        installed = 0
        for wires, delta in wire_sets:
            installed += len(wires)
            backend.install_trajectories(wires)
            # Worker-side counters land under ``prewarm.`` so they stay
            # attributable (and out of the measurement namespace — see
            # ``measurement_counters``).
            metrics.merge_counters(delta, prefix="prewarm.")
        metrics.inc("prewarm.rounds")
        metrics.inc("prewarm.trajectories_installed", installed)
        logger.debug(
            "prewarm: %d tasks over %d workers, %d trajectories",
            len(tasks), len(shards), installed,
        )

    def _execute_prewarm(self, task: tuple) -> None:
        """Run one prewarm work item (inside a worker process)."""
        kind = task[0]
        vp = self._vp_by_name[task[1]]
        if kind == "trace":
            self.prober.traceroute(
                vp, task[2], start_ttl=self.config.start_ttl
            )
        elif kind == "ping":
            self.prober.ping(vp, task[2])
        else:
            revelation = reveal_tunnel(
                self.prober,
                vp,
                ingress=task[2],
                egress=task[3],
                max_steps=self.config.max_revelation_steps,
                start_ttl=self.config.start_ttl,
            )
            if self.config.ping_discovered:
                for address in revelation.revealed:
                    self.prober.ping(vp, address)

    @contextmanager
    def _phase(self, result: CampaignResult, phase: str):
        """One pipeline phase: timing, events, cache attribution.

        Replaces the old ad-hoc ``_timed`` helper: wall-clock still
        accumulates into ``result.perf.phase_seconds``, but the phase
        now also runs under a tracer span, emits ``phase.start`` /
        ``phase.end`` events, and attributes the engine's trajectory
        hit/miss deltas to the phase (both in ``perf.phase_counters``
        and as ``phase.<name>.*`` registry counters).
        """
        metrics = self.obs.metrics
        events = self.obs.events
        hits0 = metrics.get("engine.trajectory_hits")
        misses0 = metrics.get("engine.trajectory_misses")
        if events.info:
            events.emit("phase.start", phase=phase)
        start = time.perf_counter()
        try:
            with self.obs.tracer.span("campaign.phase", phase=phase):
                if self.service is not None:
                    with self.service.scope(phase):
                        yield
                else:
                    yield
        finally:
            elapsed = time.perf_counter() - start
            seconds = result.perf.phase_seconds
            seconds[phase] = seconds.get(phase, 0.0) + elapsed
            hits = metrics.get("engine.trajectory_hits") - hits0
            misses = metrics.get("engine.trajectory_misses") - misses0
            metrics.inc(f"phase.{phase}.trajectory_hits", hits)
            metrics.inc(f"phase.{phase}.trajectory_misses", misses)
            metrics.set_gauge(f"phase.{phase}.seconds", round(elapsed, 6))
            counters = result.perf.phase_counters.setdefault(
                phase, {"trajectory_hits": 0, "trajectory_misses": 0}
            )
            counters["trajectory_hits"] += hits
            counters["trajectory_misses"] += misses
            if events.info:
                events.emit(
                    "phase.end", phase=phase, seconds=round(elapsed, 6),
                    trajectory_hits=hits, trajectory_misses=misses,
                )
            logger.debug(
                "phase %s: %.3fs, %d cache hits, %d misses",
                phase, elapsed, hits, misses,
            )

    def _engine_counters(self) -> Dict[str, int]:
        """Snapshot the engine's perf counters (0 when absent)."""
        engine = getattr(self.prober, "engine", None)
        return {
            name: getattr(engine, name, 0) for name in _ENGINE_COUNTERS
        }

    # ------------------------------------------------------------------

    def frpla(
        self,
        result: CampaignResult,
        classify: Optional[Callable[[int], str]] = None,
    ) -> FrplaAnalyzer:
        """Build an FRPLA analyzer over the campaign's traces.

        The factory comes from the technique registry when it carries
        an ``frpla`` entry, so a swapped-in analyzer implementation
        rides the same campaign plumbing.
        """
        if "frpla" in self.techniques:
            make = self.techniques.get("frpla").make_analyzer
            analyzer = make(self.asn_of, classify, obs=self.obs)
        else:
            analyzer = FrplaAnalyzer(self.asn_of, classify, obs=self.obs)
        analyzer.add_traces(result.traces)
        return analyzer

    def _team_assignment(
        self, destinations: Sequence[int]
    ) -> List[Tuple[Router, int]]:
        """Pair each destination with one VP, team-style (Sec. 4)."""
        teams = min(self.config.teams, len(self.vps))
        assignment = []
        ordered = sorted(destinations)
        for index, destination in enumerate(ordered):
            team = index % teams
            vp = self.vps[team % len(self.vps)]
            assignment.append((vp, destination))
        return assignment
