"""Campaign report generation.

Renders a complete, self-describing markdown report for one campaign:
probing volumes and duration estimate, per-AS revelation and
deployment tables, technique shares, tunnel-length statistics, and the
FRPLA/RTLA summaries — everything an operator or researcher would want
from a run, in one artefact.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.campaign.orchestrator import CampaignResult
from repro.campaign.postprocess import Aggregator
from repro.core.frpla import FrplaAnalyzer
from repro.core.revelation import RevelationMethod
from repro.experiments.common import format_table
from repro.stats.distributions import Distribution

__all__ = ["render_report", "render_perf_section"]


def render_perf_section(result: CampaignResult) -> str:
    """Render the performance/observability section for ``result``.

    Shows worker count, per-phase wall-clock *and* per-phase
    trajectory-cache deltas (hits/misses attributed to each phase by
    the metrics registry), plus the engine counters accumulated over
    the whole run.
    """
    perf = result.perf
    lines: List[str] = ["## Performance", ""]
    rows: List[tuple] = [("workers", perf.workers)]
    for phase, seconds in perf.phase_seconds.items():
        cell = f"{seconds:.3f} s"
        counters = perf.phase_counters.get(phase)
        if counters is not None:
            cell += (
                f" ({counters.get('trajectory_hits', 0)} hits, "
                f"{counters.get('trajectory_misses', 0)} misses)"
            )
        rows.append((f"{phase} phase", cell))
    if perf.phase_seconds:
        rows.append(("total", f"{perf.total_seconds:.3f} s"))
    rows.extend(
        [
            ("trajectory cache hits", perf.trajectory_hits),
            ("trajectory cache misses", perf.trajectory_misses),
            ("cache hit rate", f"{perf.hit_rate:.1%}"),
            ("hops walked", perf.hops_walked),
            ("packets simulated", perf.packets_simulated),
            ("probe retries", perf.retries),
            ("retries exhausted", perf.retries_exhausted),
        ]
    )
    if any(perf.compiled.values()):
        rows.extend(
            (f"compiled plane {name.replace('_', ' ')}", count)
            for name, count in perf.compiled.items()
        )
    lines.append(format_table(["metric", "value"], rows))
    lines.append("")
    return "\n".join(lines)


def _method_counts(result: CampaignResult) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for revelation in result.revelations.values():
        label = revelation.method.value
        counts[label] = counts.get(label, 0) + 1
    return counts


def render_report(
    result: CampaignResult,
    aggregator: Aggregator,
    frpla: Optional[FrplaAnalyzer] = None,
    as_names: Optional[Dict[int, str]] = None,
    title: str = "Invisible MPLS tunnel campaign report",
) -> str:
    """Render the markdown report for ``result``."""
    names = as_names or {}
    lines: List[str] = [f"# {title}", ""]
    if result.partial:
        lines.append(
            f"> **Partial run** — {result.stop_summary()}. The "
            "tables below cover only what was measured before the "
            "stop."
        )
        lines.append("")

    # ------------------------------------------------------------------
    lines.append("## Campaign volume")
    lines.append("")
    revealed = result.successful_revelations()
    duration = result.duration_estimate_seconds()
    volume_rows = [
        ("traceroutes", len(result.traces)),
        ("addresses pinged", len(result.pings)),
        ("candidate I-E pairs", len(result.pairs)),
        ("tunnels revealed", len(revealed)),
        ("probes (trace+ping)", result.probes_sent),
        ("probes (revelation)", result.revelation_probes),
        (
            "est. duration @25pps x5 teams",
            f"{duration / 3600:.1f} h",
        ),
    ]
    lines.append(format_table(["metric", "value"], volume_rows))
    lines.append("")

    # ------------------------------------------------------------------
    quality = result.data_quality
    if quality:
        lines.append("## Data quality")
        lines.append("")
        counters = quality.get("counters", {})
        techniques = quality.get("techniques", {})
        quality_rows = [
            ("grade", quality.get("grade")),
            ("confidence", quality.get("confidence")),
            ("response rate", quality.get("response_rate")),
            ("quarantined replies", counters.get("quarantined", 0)),
            (
                "faults injected",
                counters.get("faults_injected", 0),
            ),
            ("retries exhausted", counters.get("retries_exhausted", 0)),
            ("pings parked", counters.get("pings_parked", 0)),
        ]
        # Whatever the technique registry graded, in its order —
        # nothing hardcoded, so new registry entrants show up here
        # (and in ``result.json``) automatically.
        for technique, score in techniques.items():
            quality_rows.append((f"{technique} confidence", score))
        lines.append(format_table(["metric", "value"], quality_rows))
        lines.append("")

    # ------------------------------------------------------------------
    lines.append("## Revelation methods")
    lines.append("")
    counts = _method_counts(result)
    method_rows = [
        (method.value, counts.get(method.value, 0))
        for method in RevelationMethod
    ]
    lines.append(format_table(["method", "pairs"], method_rows))
    lines.append("")

    if revealed:
        lengths = Distribution(r.tunnel_length for r in revealed)
        lines.append("## Revealed tunnel lengths")
        lines.append("")
        lines.append(
            format_table(
                ["stat", "value"],
                [
                    ("tunnels", len(lengths)),
                    ("median LSRs", f"{lengths.median:g}"),
                    ("mean LSRs", f"{lengths.mean:.2f}"),
                    ("max LSRs", f"{lengths.max:g}"),
                ],
            )
        )
        lines.append("")

    # ------------------------------------------------------------------
    lines.append("## Per-AS summary")
    lines.append("")
    as_rows = []
    for asn in aggregator.asns():
        summary = aggregator.revelation_summary(asn)
        row = aggregator.deployment_row(asn, frpla=frpla)
        label = (
            f"{names[asn]} ({asn})" if asn in names else f"AS{asn}"
        )
        as_rows.append(
            (
                label,
                summary.ie_pairs,
                f"{summary.pct_revealed:.0%}",
                summary.lsr_ips,
                f"{summary.density_before:.3f}",
                f"{summary.density_after:.3f}",
                "-" if row.frpla_median is None else f"{row.frpla_median:g}",
                "-" if row.rtla_median is None else f"{row.rtla_median:g}",
                "-" if row.ftl_median is None else f"{row.ftl_median:g}",
            )
        )
    lines.append(
        format_table(
            [
                "AS", "pairs", "%rev", "LSR IPs",
                "dens.before", "dens.after", "FRPLA", "RTLA", "FTL",
            ],
            as_rows,
        )
    )
    lines.append("")

    # ------------------------------------------------------------------
    lines.append(render_perf_section(result))
    return "\n".join(lines)
