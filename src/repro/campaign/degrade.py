"""Graceful degradation: circuit breakers and data-quality grading.

Two pieces the campaign uses to keep producing *trustworthy partial*
results when the measurement plane misbehaves (see
:mod:`repro.faults`):

* :class:`CircuitBreaker` — parks a target after N consecutive losses
  so a blacked-out or silent address stops burning probe budget; the
  ping phase revisits every parked target once at phase end (the
  paper's campaigns similarly deprioritise persistently silent
  addresses rather than retrying them forever);
* :func:`assess_data_quality` — turns the run's measurement counter
  deltas into the ``data_quality`` annotation carried by
  :class:`~repro.campaign.orchestrator.CampaignResult`, reports, and
  the ``repro.store.diff/1`` document: an overall grade, a confidence
  score, per-technique confidence enumerated from the technique
  registry (see :mod:`repro.core.technique`), and per-AS breakdowns,
  so downstream consumers can tell a clean run's numbers from ones
  measured through loss, quarantine, and rate limiting.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set

from repro.core.technique import (
    BRPR_METHODS,
    DPR_METHODS,
    TechniqueRegistry,
    default_techniques,
)

__all__ = [
    "DATA_QUALITY_SCHEMA",
    "CircuitBreaker",
    "assess_data_quality",
    "assess_fleet_quality",
]

#: Schema tag on every ``data_quality`` document.
DATA_QUALITY_SCHEMA = "repro.quality/1"

#: Backward-compatible aliases (the method sets now live with the
#: technique registry, next to the confidence scorers that use them).
_DPR_METHODS = DPR_METHODS
_BRPR_METHODS = BRPR_METHODS


class CircuitBreaker:
    """Per-target consecutive-loss breaker.

    ``record`` feeds each probe outcome; once a target misses
    ``threshold`` times in a row, ``tripped`` returns True and the
    caller parks the target instead of probing it.  A successful
    response resets the streak (the breaker never re-closes on its
    own — the campaign's phase-end revisit is the single retry).
    A ``threshold`` of None disables the breaker entirely.
    """

    def __init__(self, threshold: Optional[int]) -> None:
        if threshold is not None and threshold < 1:
            raise ValueError(
                f"breaker threshold must be >= 1, got {threshold}"
            )
        self.threshold = threshold
        self._misses: Dict[object, int] = {}
        #: Targets that tripped at least once, in trip order.
        self.tripped_keys: List[object] = []
        self._tripped: Set[object] = set()

    def tripped(self, key: object) -> bool:
        """Is ``key`` currently parked?"""
        return key in self._tripped

    def record(self, key: object, ok: bool) -> None:
        """Feed one probe outcome for ``key``."""
        if self.threshold is None:
            return
        if ok:
            self._misses[key] = 0
            return
        misses = self._misses.get(key, 0) + 1
        self._misses[key] = misses
        if misses >= self.threshold and key not in self._tripped:
            self._tripped.add(key)
            self.tripped_keys.append(key)


def _grade(confidence: float) -> str:
    if confidence >= 0.9:
        return "high"
    if confidence >= 0.6:
        return "degraded"
    return "poor"


def assess_data_quality(
    result,
    deltas: Mapping[str, int],
    techniques: Optional[TechniqueRegistry] = None,
) -> Dict[str, object]:
    """Grade one campaign run's measurements.

    ``result`` is the (fully populated) campaign result; ``deltas``
    holds this run's measurement counter deltas (probes sent, timeout
    replies, quarantined replies, injected faults, retries); the
    per-AS breakdown uses the AS each candidate pair was extracted
    from.  ``techniques`` supplies the per-technique confidence
    scorers (the shipped registry when omitted), so the ``techniques``
    section enumerates whatever is registered instead of a hardcoded
    name list.  The returned
    document is JSON-ready and deterministic (sorted keys, rounded
    floats) so it checkpoints and diffs cleanly.
    """
    if techniques is None:
        techniques = default_techniques()
    probes = int(deltas.get("measure.probes", 0))
    timeouts = int(deltas.get("probe.reply.none", 0))
    quarantined = int(deltas.get("measure.quarantined", 0))
    response_rate = (
        (probes - timeouts) / probes if probes > 0 else 1.0
    )
    quarantine_rate = quarantined / probes if probes > 0 else 0.0
    confidence = max(
        0.0, min(1.0, response_rate * (1.0 - quarantine_rate))
    )

    # Per-technique confidence: each registered technique scores the
    # fraction of its inputs that arrived intact (registration order
    # is preserved so reports and diffs stay stable).
    technique_confidence = {
        name: round(score, 4)
        for name, score in techniques.confidences(result).items()
    }

    # Per-AS breakdown over the candidate pairs: how well did
    # revelation and fingerprinting do inside each suspicious AS?
    per_as: Dict[str, Dict[str, object]] = {}
    by_asn: Dict[int, List] = {}
    for pair in result.pairs:
        by_asn.setdefault(pair.asn, []).append(pair)
    for asn in sorted(by_asn):
        as_pairs = by_asn[asn]
        revealed = sum(
            1
            for pair in as_pairs
            if (pair.ingress, pair.egress) in result.revelations
            and result.revelations[
                (pair.ingress, pair.egress)
            ].success
        )
        reveal_rate = revealed / len(as_pairs)
        as_pings = [
            result.pings[address]
            for address in {
                endpoint
                for pair in as_pairs
                for endpoint in (pair.ingress, pair.egress)
            }
            if address in result.pings
        ]
        ping_rate = (
            sum(1 for p in as_pings if p.responded) / len(as_pings)
            if as_pings
            else 0.0
        )
        per_as[str(asn)] = {
            "pairs": len(as_pairs),
            "revealed": revealed,
            "ping_response_rate": round(ping_rate, 4),
            "confidence": round(
                0.5 * reveal_rate + 0.5 * ping_rate, 4
            ),
        }

    return {
        "schema": DATA_QUALITY_SCHEMA,
        "grade": _grade(confidence),
        "confidence": round(confidence, 4),
        "response_rate": round(response_rate, 4),
        "quarantine_rate": round(quarantine_rate, 4),
        "counters": {
            "probes": probes,
            "timeouts": timeouts,
            "quarantined": quarantined,
            "faults_injected": int(deltas.get("faults.injected", 0)),
            "retries": int(deltas.get("measure.retries", 0)),
            "retries_exhausted": int(
                deltas.get("measure.retries_exhausted", 0)
            ),
            "pings_parked": int(
                deltas.get("campaign.pings_parked", 0)
            ),
        },
        "techniques": technique_confidence,
        "per_as": per_as,
    }


def assess_fleet_quality(
    chains,
    expected_epochs: Optional[int] = None,
) -> Dict[str, object]:
    """Grade a fleet fold from per-chain epoch coverage.

    ``chains`` is the fleet document's per-chain row list (each row
    carrying ``chain`` and ``epochs_completed``).  Coverage per chain
    is ``completed / expected_epochs`` clamped to 1.0; with no
    expectation a chain scores 1.0 once it completed anything.  The
    fleet confidence is the mean coverage and reuses the campaign
    grade bands, which is the whole degradation story: a parked or
    drained chain lowers coverage and *downgrades* the fleet grade
    instead of failing the fleet (pinned by test).
    """
    per_chain: Dict[str, Dict[str, object]] = {}
    coverages: List[float] = []
    incomplete: List[str] = []
    for row in chains:
        chain = str(row["chain"])
        completed = int(row.get("epochs_completed") or 0)
        if expected_epochs:
            coverage = min(1.0, completed / expected_epochs)
        else:
            coverage = 1.0 if completed > 0 else 0.0
        coverages.append(coverage)
        per_chain[chain] = {
            "coverage": round(coverage, 4),
            "grade": _grade(coverage),
        }
        if coverage < 1.0:
            incomplete.append(chain)
    confidence = (
        sum(coverages) / len(coverages) if coverages else 0.0
    )
    return {
        "schema": DATA_QUALITY_SCHEMA,
        "kind": "fleet",
        "grade": _grade(confidence),
        "confidence": round(confidence, 4),
        "chains": per_chain,
        "incomplete": sorted(incomplete),
    }
