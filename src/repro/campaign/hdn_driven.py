"""The full two-phase, HDN-driven campaign of Sec. 4.

Phase 1 (bootstrap): ordinary traceroutes build an ITDK-like router
graph.  Phase 2: High Degree Nodes are flagged, their neighbours (set
A) and neighbours-of-neighbours (set B) become the destination set,
and the revelation campaign runs against those targets with the HDN
filter on candidate pairs — exactly the paper's pipeline, where HDNs
are "a trigger for performing dedicated invisible MPLS tunnel
discovery".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.analysis.itdk import TraceGraph
from repro.campaign.orchestrator import (
    Campaign,
    CampaignConfig,
    CampaignResult,
)
from repro.campaign.targets import TargetSelection, select_targets
from repro.net.router import Router
from repro.probing.prober import Prober, Trace

__all__ = ["HdnCampaignResult", "run_hdn_driven_campaign"]


@dataclass
class HdnCampaignResult:
    """Both phases' artefacts."""

    bootstrap_traces: List[Trace] = field(default_factory=list)
    bootstrap_graph: Optional[TraceGraph] = None
    selection: Optional[TargetSelection] = None
    campaign: Optional[CampaignResult] = None

    @property
    def hdn_count(self) -> int:
        """HDNs the bootstrap flagged."""
        return len(self.selection.hdns) if self.selection else 0


def run_hdn_driven_campaign(
    prober: Prober,
    vantage_points: Sequence[Router],
    bootstrap_targets: Sequence[int],
    asn_of: Callable[[int], Optional[int]],
    hdn_threshold: int,
    alias_of: Optional[Callable[[int], Optional[str]]] = None,
    config: Optional[CampaignConfig] = None,
    restrict_to_asns: Optional[Sequence[int]] = None,
) -> HdnCampaignResult:
    """Run bootstrap + HDN selection + focused revelation campaign.

    ``hdn_threshold`` plays the paper's degree-128 role (scaled down
    to simulation size).  ``restrict_to_asns`` optionally keeps only
    candidate pairs inside given (suspicious) ASes, like the paper's
    same-AS post-processing.
    """
    result = HdnCampaignResult()
    base_config = config or CampaignConfig()

    # Phase 1 — bootstrap sweep from every VP.
    for vp in vantage_points:
        for dst in bootstrap_targets:
            result.bootstrap_traces.append(
                prober.traceroute(
                    vp, dst, start_ttl=base_config.start_ttl
                )
            )
    graph = TraceGraph(alias_of, asn_of)
    graph.add_traces(result.bootstrap_traces)
    result.bootstrap_graph = graph

    # Phase 2 — HDN-driven target selection.
    selection = select_targets(graph, threshold=hdn_threshold)
    result.selection = selection
    if not selection.destinations:
        return result

    focused_config = CampaignConfig(
        start_ttl=base_config.start_ttl,
        teams=base_config.teams,
        probing_rate_pps=base_config.probing_rate_pps,
        max_revelation_steps=base_config.max_revelation_steps,
        suspicious_asns=(
            tuple(restrict_to_asns)
            if restrict_to_asns is not None
            else base_config.suspicious_asns
        ),
        hdn_addresses=frozenset(selection.hdn_addresses),
        ping_discovered=base_config.ping_discovered,
    )
    campaign = Campaign(
        prober, vantage_points, asn_of, focused_config
    )
    result.campaign = campaign.run(selection.destinations)
    return result
