"""Cross-validation of DPR/BRPR on *explicit* tunnels (Sec. 3.3, Table 3).

The paper validates its revelation techniques by running them against
tunnels that are already visible: on traces showing labelled LSRs
between two LERs of one AS, re-running DPR/BRPR must rediscover the
same hops, this time without labels.  Success criteria:

* **DPR** — targeting the Egress LER yields the exact hop count
  between the LERs with every MPLS label gone;
* **BRPR** — each recursion step's last hop carries no label;
* the whole attempt *fails* when the LERs are not re-discovered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.revelation import Revelation
from repro.core.technique import TechniqueRegistry, default_techniques
from repro.net.router import Router
from repro.probing.prober import Prober, Trace

__all__ = [
    "ExplicitTunnel",
    "CrossValOutcome",
    "CrossValResult",
    "extract_explicit_tunnels",
    "cross_validate",
]


@dataclass(frozen=True)
class ExplicitTunnel:
    """A fully revealed LSP observed in a trace (labels quoted)."""

    vp: str
    ingress: int
    egress: int
    asn: int
    lsrs: Tuple[int, ...]  #: labelled hops between the LERs


class CrossValOutcome(Enum):
    """Table 3 classification of one re-run."""

    DPR_SUCCESS = "dpr-successful"
    BRPR_SUCCESS = "brpr-successful"
    HYBRID = "hybrid-dpr-brpr"
    AMBIGUOUS = "dpr-or-brpr"  #: single-LSR tunnel
    FAILED = "fail"
    NOT_REDISCOVERED = "not-rediscovered"  #: dropped before Table 3


@dataclass
class CrossValResult:
    """Aggregated cross-validation campaign result."""

    outcomes: Dict[Tuple[int, int], CrossValOutcome] = field(
        default_factory=dict
    )
    revelations: Dict[Tuple[int, int], Revelation] = field(
        default_factory=dict
    )

    def counts(self) -> Dict[CrossValOutcome, int]:
        """Occurrences per outcome."""
        result: Dict[CrossValOutcome, int] = {}
        for outcome in self.outcomes.values():
            result[outcome] = result.get(outcome, 0) + 1
        return result

    def table3_shares(self) -> Dict[str, float]:
        """Table 3 rows: shares over re-discovered pairs."""
        considered = {
            pair: outcome
            for pair, outcome in self.outcomes.items()
            if outcome is not CrossValOutcome.NOT_REDISCOVERED
        }
        total = len(considered)
        if total == 0:
            return {}
        shares: Dict[str, int] = {}
        for outcome in considered.values():
            shares[outcome.value] = shares.get(outcome.value, 0) + 1
        return {label: count / total for label, count in shares.items()}


def _null_terminated(run: List) -> bool:
    """True when the run's last hop quoted an explicit-null label.

    The RFC 4950 signature of a UHP tail: the dec-TTL happens before
    the pop, so the tail's time-exceeded quotes label 0 — the run
    covers the whole LSP *including* its egress LER.
    """
    return any(label == 0 for label, _ in run[-1].quoted_labels)


def extract_explicit_tunnels(
    traces: Iterable[Trace],
    asn_of: Callable[[int], Optional[int]],
    include_uhp_null: bool = False,
) -> List[ExplicitTunnel]:
    """Find fully revealed LSPs: label runs flanked by same-AS LERs.

    A tunnel counts only when its LSR hops are contiguous (no
    anonymous gaps) and both flanking LERs map to the same AS — the
    paper's selection rule.

    With ``include_uhp_null`` a run whose *last* hop quotes the
    explicit-null label is also accepted when that hop shares the
    ingress AS: under UHP the egress LER itself answers with label 0
    still on the stack, so the LER is the run's final hop and the
    next unlabelled hop may already sit in a neighbour AS (the
    signature RSVP-TE tunnels ending at an AS-exit PE produce).  The
    paper's rule drops these outright, so the default stays off and
    Table 3 is unchanged.
    """
    tunnels: List[ExplicitTunnel] = []
    seen: set = set()
    for trace in traces:
        hops = trace.responsive_hops
        index = 0
        while index < len(hops):
            if not hops[index].has_labels:
                index += 1
                continue
            run_start = index
            while index < len(hops) and hops[index].has_labels:
                index += 1
            run_end = index  # first unlabelled hop after the run
            if run_start == 0:
                continue
            ingress_hop = hops[run_start - 1]
            run = hops[run_start:run_end]
            asn = asn_of(ingress_hop.address)
            if asn is None:
                continue
            egress_hop = None
            lsrs = run
            if (
                run_end < len(hops)
                and asn == asn_of(hops[run_end].address)
            ):
                egress_hop = hops[run_end]
            elif (
                include_uhp_null
                and len(run) >= 2
                and _null_terminated(run)
                and asn == asn_of(run[-1].address)
            ):
                # UHP: the null-quoting last hop *is* the egress LER.
                egress_hop = run[-1]
                lsrs = run[:-1]
            if egress_hop is None:
                continue
            # Contiguity: every TTL present from ingress to egress.
            span = hops[run_start - 1 : run_start - 1 + len(lsrs) + 2]
            ttls = [hop.probe_ttl for hop in span]
            if ttls != list(range(ttls[0], ttls[0] + len(ttls))):
                continue
            key = (ingress_hop.address, egress_hop.address)
            if key in seen:
                continue
            seen.add(key)
            tunnels.append(
                ExplicitTunnel(
                    vp=trace.source,
                    ingress=ingress_hop.address,
                    egress=egress_hop.address,
                    asn=asn,
                    lsrs=tuple(hop.address for hop in lsrs),
                )
            )
    return tunnels


def cross_validate(
    prober: Prober,
    vp_by_name: Dict[str, Router],
    tunnels: Iterable[ExplicitTunnel],
    max_steps: int = 12,
    start_ttl: int = 1,
    techniques: Optional[TechniqueRegistry] = None,
) -> CrossValResult:
    """Re-run DPR then BRPR against explicit tunnels (Sec. 3.3).

    * DPR succeeds when targeting the egress yields the exact hop
      count between the LERs with every MPLS label gone (exact
      addresses may differ under ECMP — footnote 11);
    * BRPR succeeds when the recursion's last hops are all label-less
      and cover the tunnel;
    * a one-LSR tunnel revealed either way is indistinguishable
      ("DPR or BRPR"); partial coverage by both is "hybrid".

    The revelation primitives come from ``techniques`` (the shipped
    registry when omitted) — its ``dpr``/``brpr`` entries supply the
    actual probing callables.
    """
    if techniques is None:
        techniques = default_techniques()
    result = CrossValResult()
    for tunnel in tunnels:
        vp = vp_by_name[tunnel.vp]
        key = (tunnel.ingress, tunnel.egress)
        result.outcomes[key] = _run_one(
            prober, vp, tunnel, max_steps, start_ttl, techniques
        )
    return result


def _run_one(
    prober: Prober,
    vp: Router,
    tunnel: ExplicitTunnel,
    max_steps: int,
    start_ttl: int,
    techniques: TechniqueRegistry,
) -> CrossValOutcome:
    direct_path_revelation = techniques.get("dpr").primitive
    backward_recursive_revelation = techniques.get("brpr").primitive

    expected = len(tunnel.lsrs)
    dpr = direct_path_revelation(
        prober, vp, tunnel.ingress, tunnel.egress, start_ttl=start_ttl
    )
    if not dpr.through_ingress or not dpr.trace.destination_reached:
        return CrossValOutcome.NOT_REDISCOVERED
    dpr_complete = (
        dpr.success and len(dpr.revealed) == expected
    )
    if dpr_complete:
        if expected == 1:
            return CrossValOutcome.AMBIGUOUS
        return CrossValOutcome.DPR_SUCCESS
    brpr = backward_recursive_revelation(
        prober,
        vp,
        tunnel.ingress,
        tunnel.egress,
        max_steps=max_steps,
        start_ttl=start_ttl,
    )
    if brpr.success and len(brpr.revealed) == expected:
        if expected == 1:
            return CrossValOutcome.AMBIGUOUS
        return CrossValOutcome.BRPR_SUCCESS
    combined = set(brpr.revealed)
    if not dpr.labels_seen:
        combined.update(dpr.revealed)
    if len(combined) == expected and expected > 0:
        return CrossValOutcome.HYBRID
    return CrossValOutcome.FAILED
