"""HDN-driven target selection (Sec. 4).

The campaign does not probe blindly: it starts from an ITDK-like
router graph, tags High Degree Nodes (HDNs — degree ≥ threshold, 128
in the paper, lower at simulation scale), and aims at the *neighbours*
(set A) and *neighbours of neighbours* (set B) of HDNs.  Tracing
toward A ∪ B makes probes transit the suspicious AS and terminate just
beyond it, producing the ``X, Y, D`` tails the revelation keys on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from repro.analysis.itdk import TraceGraph

__all__ = ["TargetSelection", "select_targets", "split_among_teams"]


@dataclass
class TargetSelection:
    """Result of HDN-driven target selection."""

    threshold: int
    hdns: List[str]  #: HDN node identifiers
    set_a: Set[str] = field(default_factory=set)  #: HDN neighbours
    set_b: Set[str] = field(default_factory=set)  #: their neighbours
    destinations: List[int] = field(default_factory=list)  #: probe targets
    #: Addresses belonging to HDN nodes (the I/E candidate filter).
    hdn_addresses: Set[int] = field(default_factory=set)

    @property
    def target_nodes(self) -> Set[str]:
        """A ∪ B."""
        return self.set_a | self.set_b


def select_targets(
    graph: TraceGraph,
    threshold: int,
    exclude_asns: Optional[Set[int]] = None,
) -> TargetSelection:
    """Compute HDNs, sets A and B, and the destination address list.

    ``exclude_asns`` drops target nodes in given ASes (e.g. the HDN's
    own AS when one wants strictly external destinations).  One
    representative address per target node is returned, sorted for
    determinism.
    """
    hdns = graph.high_degree_nodes(threshold)
    selection = TargetSelection(threshold=threshold, hdns=hdns)
    hdn_set = set(hdns)
    for hdn in hdns:
        selection.hdn_addresses.update(graph.addresses_of(hdn))
        for neighbor in graph.neighbors(hdn):
            if neighbor not in hdn_set:
                selection.set_a.add(neighbor)
    for node in list(selection.set_a):
        for neighbor in graph.neighbors(node):
            if neighbor not in hdn_set and neighbor not in selection.set_a:
                selection.set_b.add(neighbor)
    destinations: Set[int] = set()
    for node in selection.target_nodes:
        if exclude_asns and graph.asn_of_node(node) in exclude_asns:
            continue
        addresses = graph.addresses_of(node)
        if addresses:
            destinations.add(min(addresses))
    selection.destinations = sorted(destinations)
    return selection


def split_among_teams(
    destinations: Sequence[int], teams: int
) -> List[List[int]]:
    """Partition destinations across VP teams (round robin, Sec. 4).

    The paper keeps each neighbourhood within one team; round-robin on
    the sorted list keeps partitions deterministic and balanced, which
    is the property the analyses rely on.
    """
    if teams < 1:
        raise ValueError("need at least one team")
    buckets: List[List[int]] = [[] for _ in range(teams)]
    for index, destination in enumerate(sorted(destinations)):
        buckets[index % teams].append(destination)
    return buckets
