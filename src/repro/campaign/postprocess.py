"""Campaign post-processing: per-AS aggregation (Tables 4 and 5).

Turns a :class:`CampaignResult` into the paper's per-AS summary rows:
candidate LERs and Ingress–Egress pairs, revelation rates, raw LSP and
LSR counts, the Ingress–Egress graph density before/after correction
(Table 4), and deployment characteristics — signature shares,
technique shares, and the three tunnel-length estimators (Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.itdk import TraceGraph
from repro.campaign.orchestrator import CampaignResult
from repro.core.frpla import FrplaAnalyzer
from repro.core.revelation import Revelation, RevelationMethod
from repro.stats.distributions import Distribution

__all__ = ["AsRevelationSummary", "AsDeploymentRow", "Aggregator"]


@dataclass
class AsRevelationSummary:
    """One Table 4 row."""

    asn: int
    candidate_lers: int  #: distinct addresses seen as X or Y
    ie_pairs: int  #: distinct candidate (X, Y) pairs
    revealed_pairs: int
    raw_lsps: int  #: unique revealed hop sequences
    lsr_ips: int  #: unique revealed addresses
    pct_ips_also_lers: float  #: revealed IPs that also act as LERs
    density_before: float
    density_after: float

    @property
    def pct_revealed(self) -> float:
        """Share of I–E pairs whose tunnel content was revealed."""
        if self.ie_pairs == 0:
            return 0.0
        return self.revealed_pairs / self.ie_pairs


@dataclass
class AsDeploymentRow:
    """One Table 5 row."""

    asn: int
    signature_shares: Dict[str, float] = field(default_factory=dict)
    technique_shares: Dict[str, float] = field(default_factory=dict)
    frpla_median: Optional[float] = None
    rtla_median: Optional[float] = None
    ftl_median: Optional[float] = None  #: revealed forward tunnel length


class Aggregator:
    """Computes per-AS summaries from a campaign result."""

    def __init__(
        self,
        result: CampaignResult,
        asn_of: Callable[[int], Optional[int]],
        alias_of: Optional[Callable[[int], Optional[str]]] = None,
    ) -> None:
        self.result = result
        self.asn_of = asn_of
        self.alias_of = alias_of
        self._pairs_by_as: Dict[int, List[Tuple[int, int]]] = {}
        for pair in result.pairs:
            self._pairs_by_as.setdefault(pair.asn, []).append(
                (pair.ingress, pair.egress)
            )
        self._egress_addresses: Set[int] = {
            pair.egress for pair in result.pairs
        }
        self._ingress_addresses: Set[int] = {
            pair.ingress for pair in result.pairs
        }

    # ------------------------------------------------------------------
    # Role classification (Fig. 7's Ingress / Egress / Others split)

    def role_of(self, address: int) -> str:
        """"egress", "ingress" or "other" — campaign role of an address."""
        if address in self._egress_addresses:
            return "egress"
        if address in self._ingress_addresses:
            return "ingress"
        return "other"

    def egress_addresses(self, asn: Optional[int] = None) -> Set[int]:
        """Egress LER candidates, optionally restricted to one AS."""
        if asn is None:
            return set(self._egress_addresses)
        return {
            a for a in self._egress_addresses if self.asn_of(a) == asn
        }

    # ------------------------------------------------------------------
    # Table 4

    def asns(self) -> List[int]:
        """ASes with at least one candidate pair."""
        return sorted(self._pairs_by_as)

    def revelation_summary(self, asn: int) -> AsRevelationSummary:
        """Compute the Table 4 row for ``asn``."""
        pairs = self._pairs_by_as.get(asn, [])
        lers: Set[int] = set()
        revealed_pairs = 0
        lsps: Set[Tuple[int, ...]] = set()
        lsr_ips: Set[int] = set()
        for ingress, egress in pairs:
            lers.add(ingress)
            lers.add(egress)
            revelation = self.result.revelations.get((ingress, egress))
            if revelation is not None and revelation.success:
                revealed_pairs += 1
                lsps.add(tuple(revelation.revealed))
                lsr_ips.update(revelation.revealed)
        also_lers = sum(1 for address in lsr_ips if address in lers)
        before, after = self._densities(asn, pairs)
        return AsRevelationSummary(
            asn=asn,
            candidate_lers=len(lers),
            ie_pairs=len(pairs),
            revealed_pairs=revealed_pairs,
            raw_lsps=len(lsps),
            lsr_ips=len(lsr_ips),
            pct_ips_also_lers=(
                also_lers / len(lsr_ips) if lsr_ips else 0.0
            ),
            density_before=before,
            density_after=after,
        )

    def _densities(
        self, asn: int, pairs: Sequence[Tuple[int, int]]
    ) -> Tuple[float, float]:
        """I–E subgraph density, with and without revealed content."""
        before = TraceGraph(self.alias_of, self.asn_of)
        after = TraceGraph(self.alias_of, self.asn_of)
        for ingress, egress in pairs:
            before.add_edge_addresses(ingress, egress)
            revelation = self.result.revelations.get((ingress, egress))
            if revelation is not None and revelation.success:
                after.add_path(
                    [ingress, *revelation.revealed, egress]
                )
            else:
                after.add_edge_addresses(ingress, egress)
        return before.density(), after.density()

    # ------------------------------------------------------------------
    # Table 5

    def deployment_row(
        self, asn: int, frpla: Optional[FrplaAnalyzer] = None
    ) -> AsDeploymentRow:
        """Compute the Table 5 row for ``asn``."""
        row = AsDeploymentRow(asn=asn)
        addresses = [
            address
            for address in self.result.inventory.addresses()
            if self.asn_of(address) == asn
        ]
        shares = self.result.inventory.brand_shares(addresses)
        label_of = {
            "cisco": "<255,255>",
            "juniper": "<255,64>",
            "junos-e": "<128,128>",
            "brocade": "<64,64>",
        }
        row.signature_shares = {
            label_of.get(brand, brand): share
            for brand, share in shares.items()
        }
        row.technique_shares = self._technique_shares(asn)
        if frpla is not None:
            row.frpla_median = frpla.shift(asn, role="egress")
        row.rtla_median = self.result.rtla.median_tunnel_length(
            asn_of=self.asn_of, asn=asn
        )
        lengths = [
            revelation.tunnel_length
            for (ingress, _), revelation in self.result.revelations.items()
            if revelation.success and self.asn_of(ingress) == asn
        ]
        if lengths:
            row.ftl_median = Distribution(lengths).median
        return row

    def _technique_shares(self, asn: int) -> Dict[str, float]:
        counts: Dict[str, int] = {}
        total = 0
        for ingress, egress in self._pairs_by_as.get(asn, []):
            revelation = self.result.revelations.get((ingress, egress))
            if revelation is None or not revelation.success:
                continue
            total += 1
            label = revelation.method.value
            counts[label] = counts.get(label, 0) + 1
        if total == 0:
            return {}
        return {label: count / total for label, count in counts.items()}

    # ------------------------------------------------------------------
    # Distributions feeding Figs. 5 and 9b

    def ftl_distribution(
        self, methods: Optional[Set[RevelationMethod]] = None
    ) -> Distribution:
        """Forward tunnel lengths over revealed tunnels (Fig. 5)."""
        lengths = []
        for revelation in self.result.revelations.values():
            if not revelation.success:
                continue
            if methods is not None and revelation.method not in methods:
                continue
            lengths.append(revelation.tunnel_length)
        return Distribution(lengths)

    def tunnel_asymmetry(self) -> Distribution:
        """RTLA return length minus revealed forward length (Fig. 9b)."""
        by_egress: Dict[int, Revelation] = {}
        for (_, egress), revelation in self.result.revelations.items():
            if revelation.success:
                by_egress[egress] = revelation
        deltas = []
        for estimate in self.result.rtla.estimates():
            revelation = by_egress.get(estimate.address)
            if revelation is None:
                continue
            deltas.append(
                estimate.tunnel_length - revelation.tunnel_length
            )
        return Distribution(deltas)
