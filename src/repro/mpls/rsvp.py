"""RSVP-TE explicit-route tunnels.

LDP tunnels are congruent with the IGP; RSVP-TE lets operators pin an
LSP to an *explicit* path for traffic engineering.  The paper's survey
has 42% of operators running RSVP-TE alongside LDP, and UHP — the
configuration that defeats all four techniques — "is generally used
only when the operator implements sophisticated traffic engineering".

A :class:`TeTunnel` is installed at its head-end router; traffic whose
resolved AS egress is the tunnel's tail is label-switched along the
explicit path instead of the LDP/IGP one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.mpls.config import PoppingMode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.topology import Network

__all__ = ["TeTunnel", "TeTunnelRegistry"]


@dataclass(frozen=True)
class TeTunnel:
    """One unidirectional explicit-route LSP.

    Attributes:
        name: operator-facing tunnel identifier.
        path: router names, head-end first, tail last; consecutive
            routers must be adjacent (checked at install time).
        popping: PHP (implicit null at the penultimate hop) or UHP
            (explicit null popped by the tail) — TE tunnels commonly
            use UHP.
        ttl_propagate: copy the IP-TTL into the TE LSE at the head-end
            (off for the invisible case, like LDP's knob).
    """

    name: str
    path: Tuple[str, ...]
    popping: PoppingMode = PoppingMode.UHP
    ttl_propagate: bool = False

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise ValueError(
                f"tunnel {self.name!r}: path needs at least 2 routers"
            )
        if len(set(self.path)) != len(self.path):
            raise ValueError(
                f"tunnel {self.name!r}: path revisits a router"
            )

    @property
    def head(self) -> str:
        """Head-end router name."""
        return self.path[0]

    @property
    def tail(self) -> str:
        """Tail-end router name."""
        return self.path[-1]

    def next_hop(self, router_name: str) -> Optional[str]:
        """The explicit next hop after ``router_name`` (None at tail)."""
        try:
            index = self.path.index(router_name)
        except ValueError:
            return None
        if index + 1 >= len(self.path):
            return None
        return self.path[index + 1]

    def is_penultimate(self, router_name: str) -> bool:
        """True when ``router_name`` is the hop before the tail."""
        return (
            len(self.path) >= 2 and self.path[-2] == router_name
        )


class TeTunnelRegistry:
    """Installed TE tunnels, keyed by (head, tail)."""

    def __init__(self) -> None:
        self._tunnels: Dict[Tuple[str, str], TeTunnel] = {}

    def install(self, tunnel: TeTunnel, network: Network) -> None:
        """Validate the explicit path against ``network`` and install.

        Every consecutive pair must be directly linked, all hops must
        sit in one AS (TE does not cross AS borders here), and the
        head/tail pair must be unused.
        """
        routers = []
        for name in tunnel.path:
            try:
                routers.append(network.router(name))
            except KeyError:
                raise ValueError(
                    f"tunnel {tunnel.name!r}: unknown router {name!r}"
                ) from None
        asns = {router.asn for router in routers}
        if len(asns) != 1:
            raise ValueError(
                f"tunnel {tunnel.name!r}: path crosses AS borders"
            )
        for first, second in zip(routers, routers[1:]):
            if first.interface_toward(second) is None:
                raise ValueError(
                    f"tunnel {tunnel.name!r}: {first.name} and "
                    f"{second.name} are not adjacent"
                )
        key = (tunnel.head, tunnel.tail)
        if key in self._tunnels:
            raise ValueError(
                f"a tunnel from {tunnel.head} to {tunnel.tail} exists"
            )
        self._tunnels[key] = tunnel

    def remove(self, head: str, tail: str) -> None:
        """Tear a tunnel down (KeyError when absent)."""
        del self._tunnels[(head, tail)]

    def tunnel_from(self, head: str, tail: str) -> Optional[TeTunnel]:
        """The installed tunnel for (head, tail), if any."""
        return self._tunnels.get((head, tail))

    def tunnels_at(self, head: str) -> Tuple[TeTunnel, ...]:
        """All tunnels headed at ``head``."""
        return tuple(
            tunnel
            for (tunnel_head, _), tunnel in sorted(self._tunnels.items())
            if tunnel_head == head
        )

    def __len__(self) -> int:
        return len(self._tunnels)
