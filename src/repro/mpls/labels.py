"""MPLS label stack entries (RFC 3032).

A label stack entry (LSE) is 32 bits on the wire: 20-bit label, 3-bit
traffic class, bottom-of-stack flag, 8-bit TTL.  The simulator keeps
LSEs as mutable objects (the TTL is decremented per hop) but provides
the exact wire encoding for round-trip tests and for RFC 4950 quoting.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.net.addressing import Prefix

__all__ = [
    "EXPLICIT_NULL",
    "IMPLICIT_NULL",
    "ROUTER_ALERT",
    "FIRST_UNRESERVED_LABEL",
    "LabelStackEntry",
    "LabelAllocator",
]

#: IPv4 explicit null — egress pops (UHP signalling).
EXPLICIT_NULL = 0
#: Router alert label.
ROUTER_ALERT = 1
#: Implicit null — penultimate hop pops (PHP signalling); never
#: actually appears on the wire.
IMPLICIT_NULL = 3
#: First label value outside the reserved range.
FIRST_UNRESERVED_LABEL = 16

_MAX_LABEL = (1 << 20) - 1


class LabelStackEntry:
    """One 32-bit MPLS label stack entry."""

    __slots__ = ("label", "tc", "bottom", "ttl")

    def __init__(
        self, label: int, ttl: int, bottom: bool = True, tc: int = 0
    ) -> None:
        if not 0 <= label <= _MAX_LABEL:
            raise ValueError(f"label out of range: {label}")
        if not 0 <= ttl <= 255:
            raise ValueError(f"LSE-TTL out of range: {ttl}")
        if not 0 <= tc <= 7:
            raise ValueError(f"traffic class out of range: {tc}")
        self.label = label
        self.tc = tc
        self.bottom = bottom
        self.ttl = ttl

    def encode(self) -> int:
        """The 32-bit wire representation."""
        return (
            (self.label << 12)
            | (self.tc << 9)
            | (int(self.bottom) << 8)
            | self.ttl
        )

    @classmethod
    def decode(cls, word: int) -> "LabelStackEntry":
        """Parse a 32-bit wire word."""
        if not 0 <= word < (1 << 32):
            raise ValueError(f"not a 32-bit word: {word}")
        return cls(
            label=word >> 12,
            tc=(word >> 9) & 0x7,
            bottom=bool((word >> 8) & 0x1),
            ttl=word & 0xFF,
        )

    def copy(self) -> "LabelStackEntry":
        """Independent copy (packets are mutated per hop)."""
        return LabelStackEntry(self.label, self.ttl, self.bottom, self.tc)

    def as_tuple(self) -> Tuple[int, int]:
        """``(label, ttl)`` pair, the form quoted in traceroute output."""
        return (self.label, self.ttl)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LabelStackEntry)
            and self.encode() == other.encode()
        )

    def __repr__(self) -> str:
        return f"LSE(label={self.label}, ttl={self.ttl})"


class LabelAllocator:
    """Per-network LDP label allocation.

    LDP allocates labels from downstream: each router picks its own
    label for each FEC and advertises it upstream.  Labels are handed
    out sequentially from 16 (like a freshly booted IOS), one per
    ``(router, fec)`` pair, deterministically in first-use order.
    """

    def __init__(self, first_label: int = FIRST_UNRESERVED_LABEL) -> None:
        self._next = first_label
        self._bindings: Dict[Tuple[str, object], int] = {}

    def binding(self, router_name: str, fec: object) -> int:
        """The label ``router_name`` advertises for ``fec``."""
        key = (router_name, fec)
        label = self._bindings.get(key)
        if label is None:
            label = self._next
            self._next += 1
            self._bindings[key] = label
        return label

    def __len__(self) -> int:
        return len(self._bindings)

    # ------------------------------------------------------------------
    # Checkpointable state (see repro.store.checkpoint)
    #
    # First-use allocation order makes label values depend on probing
    # history, so a resumed campaign must reinstate the interrupted
    # run's bindings or its live probes would observe different label
    # numbers than an uninterrupted run.  Bindings are append-only and
    # insertion-ordered, which makes position-based deltas exact.

    def export_bindings(self, start: int = 0) -> list:
        """Bindings from allocation position ``start`` on, as
        JSON-ready ``[router, fec_network, fec_length, label]`` rows.
        LDP FECs are :class:`~repro.net.addressing.Prefix` instances;
        RSVP-TE FECs are ``("te", tunnel_name)`` pairs and round-trip
        as ``[router, "te", tunnel_name, label]`` rows."""
        rows = []
        for position, ((router, fec), label) in enumerate(
            self._bindings.items()
        ):
            if position < start:
                continue
            if isinstance(fec, Prefix):
                rows.append([router, fec.network, fec.length, label])
            else:
                rows.append([router, *fec, label])
        return rows

    def import_bindings(self, rows) -> None:
        """Reinstate exported bindings, in their original order."""
        for router, network, length, label in rows:
            fec = (
                (network, length)
                if network == "te"
                else Prefix(network, length)
            )
            self._bindings[(router, fec)] = label
            if label >= self._next:
                self._next = label + 1
