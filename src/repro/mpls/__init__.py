"""MPLS machinery: labels, configuration, LDP policies, RSVP-TE."""

from repro.mpls.config import MplsConfig, PoppingMode
from repro.mpls.labels import (
    EXPLICIT_NULL,
    IMPLICIT_NULL,
    LabelAllocator,
    LabelStackEntry,
)
from repro.mpls.rsvp import TeTunnel, TeTunnelRegistry

__all__ = [
    "EXPLICIT_NULL",
    "IMPLICIT_NULL",
    "LabelAllocator",
    "LabelStackEntry",
    "MplsConfig",
    "PoppingMode",
    "TeTunnel",
    "TeTunnelRegistry",
]
