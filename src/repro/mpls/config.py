"""Per-router MPLS configuration.

A router's MPLS behaviour is the combination of its vendor defaults
(:mod:`repro.net.vendors`) and explicit operator configuration.  The
paper's four GNS3 scenarios (Sec. 3.3) differ only in these knobs:

* ``Default`` — MPLS on, PHP, ttl-propagate, LDP labels all prefixes.
* ``Backward Recursive`` — same but ``no-ttl-propagate``.
* ``Explicit Route`` — ``no-ttl-propagate`` + loopback-only LDP.
* ``Totally Invisible`` — ``no-ttl-propagate`` + UHP (explicit null).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from repro.net.vendors import LdpPolicy, VendorProfile

__all__ = ["PoppingMode", "MplsConfig"]


class PoppingMode(Enum):
    """Where the top label is removed at the end of an LSP."""

    #: Penultimate Hop Popping — implicit-null label (value 3); the
    #: last-hop LSR pops and the egress does a plain IP lookup.
    PHP = "php"
    #: Ultimate Hop Popping — explicit-null label (value 0); the egress
    #: LER itself pops.
    UHP = "uhp"


@dataclass(frozen=True)
class MplsConfig:
    """Operator-facing MPLS knobs for one router.

    Attributes:
        enabled: whether the router participates in MPLS at all.
        ttl_propagate: copy IP-TTL into the LSE-TTL at label push.
            ``False`` is the ``no mpls ip propagate-ttl`` setting that
            makes forward tunnels invisible.
        ldp_policy: which internal prefixes get LDP label bindings.
        popping: PHP (default everywhere) or UHP.
        min_ttl_on_pop: apply ``IP-TTL = min(IP-TTL, LSE-TTL)`` when
            popping at the penultimate hop.
        bgp_nexthop_labeling: tunnel external (BGP-learned) traffic
            through the LSP toward the BGP next hop.  Default for both
            major vendors when MPLS is on.
        rfc4950: quote the MPLS label stack in time-exceeded replies.
    """

    enabled: bool = False
    ttl_propagate: bool = True
    ldp_policy: LdpPolicy = LdpPolicy.ALL_PREFIXES
    popping: PoppingMode = PoppingMode.PHP
    min_ttl_on_pop: bool = True
    bgp_nexthop_labeling: bool = True
    rfc4950: bool = True

    @classmethod
    def disabled(cls) -> "MplsConfig":
        """Plain IP router — no MPLS."""
        return cls(enabled=False)

    @classmethod
    def from_vendor(
        cls,
        vendor: VendorProfile,
        *,
        enabled: bool = True,
        ttl_propagate: bool = True,
        popping: PoppingMode = PoppingMode.PHP,
    ) -> "MplsConfig":
        """Build a config from a vendor's defaults."""
        return cls(
            enabled=enabled,
            ttl_propagate=ttl_propagate,
            ldp_policy=vendor.ldp_policy,
            popping=popping,
            min_ttl_on_pop=vendor.min_ttl_on_pop,
            rfc4950=vendor.rfc4950,
        )

    def with_overrides(self, **changes: object) -> "MplsConfig":
        """Return a copy with ``changes`` applied."""
        return replace(self, **changes)

    @property
    def invisible(self) -> bool:
        """True when forward tunnels through this ingress are hidden."""
        return self.enabled and not self.ttl_propagate
