"""Cisco-IOS-style configuration generation.

The paper ships its GNS3 configuration scripts alongside the dataset;
this module produces the equivalent for any simulated router: hostname,
interface addressing, OSPF, BGP peerings, and the exact MPLS knobs the
four scenarios toggle (``mpls ip``, ``no mpls ip propagate-ttl``,
``mpls ldp label allocate global host-routes``,
``mpls ldp explicit-null``).  Emulation states become operator-readable
artefacts — and the golden tests double as config-to-behaviour checks.
"""

from __future__ import annotations

from typing import List

from repro.mpls.config import PoppingMode
from repro.net.addressing import format_address
from repro.net.router import Router
from repro.net.topology import Network
from repro.net.vendors import LdpPolicy

__all__ = ["router_config", "network_configs"]


def _netmask(length: int) -> str:
    from repro.net.addressing import Prefix

    return format_address(Prefix.mask_for(length))


def router_config(router: Router) -> str:
    """IOS-style configuration text for one router."""
    lines: List[str] = [
        "!",
        f"hostname {router.name}",
        "!",
    ]
    mpls = router.mpls
    lines.append("interface Loopback0")
    lines.append(
        f" ip address {format_address(router.loopback)} "
        f"{_netmask(32)}"
    )
    lines.append("!")
    for name, interface in sorted(router.interfaces.items()):
        lines.append(f"interface GigabitEthernet{name}")
        lines.append(
            f" description to {interface.neighbor.router.name}"
        )
        lines.append(
            f" ip address {format_address(interface.address)} "
            f"{_netmask(interface.prefix.length)}"
        )
        if mpls.enabled and interface.neighbor.router.asn == router.asn:
            lines.append(" mpls ip")
        lines.append(" no shutdown")
        lines.append("!")
    # IGP: OSPF over every connected prefix.
    lines.append(f"router ospf 1")
    lines.append(f" router-id {format_address(router.loopback)}")
    lines.append(
        f" network {format_address(router.loopback)} 0.0.0.0 area 0"
    )
    for interface in router.interfaces.values():
        if interface.neighbor.router.asn != router.asn:
            continue
        wildcard = format_address(
            ~interface.prefix.mask & 0xFFFFFFFF
        )
        lines.append(
            f" network {format_address(interface.prefix.network)} "
            f"{wildcard} area 0"
        )
    lines.append("!")
    # BGP on border routers.
    external_peers = sorted(
        {
            interface.neighbor
            for interface in router.interfaces.values()
            if interface.neighbor.router.asn != router.asn
        },
        key=lambda peer: peer.router.name,
    )
    if external_peers:
        lines.append(f"router bgp {router.asn}")
        for peer in external_peers:
            lines.append(
                f" neighbor {format_address(peer.address)} "
                f"remote-as {peer.router.asn}"
            )
        lines.append(" redistribute connected")
        lines.append("!")
    # The paper's MPLS knobs.
    if mpls.enabled:
        lines.append("mpls label protocol ldp")
        if not mpls.ttl_propagate:
            lines.append("no mpls ip propagate-ttl")
        if mpls.ldp_policy is LdpPolicy.LOOPBACK_ONLY:
            lines.append(
                "mpls ldp label allocate global host-routes"
            )
        if mpls.popping is PoppingMode.UHP:
            lines.append("mpls ldp explicit-null")
        lines.append("!")
    lines.append("end")
    return "\n".join(lines)


def network_configs(network: Network) -> dict:
    """``{router_name: config_text}`` for the whole topology."""
    return {
        name: router_config(router)
        for name, router in sorted(network.routers.items())
    }
