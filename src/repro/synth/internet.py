"""Synthetic Internet generator.

Builds a multi-AS topology with the ingredients the measurement
campaign needs:

* a backbone of MPLS **transit ASes** instantiated from
  :class:`~repro.synth.profiles.TransitProfile` blueprints (vendor
  mixes, ``no-ttl-propagate``, UHP shares, core depth),
* **stub ASes** (customers) hanging off the transits, some multihomed
  — the source of the routing asymmetry FRPLA must tolerate,
* **vantage points** in geographically spread stubs,
* deterministic, seeded randomness throughout.

The object exposes ground truth (address → router/AS, true paths) so
tests can score the measurement techniques against reality.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dataplane.engine import ForwardingEngine
from repro.measure import SimBackend
from repro.mpls.config import MplsConfig, PoppingMode
from repro.mpls.rsvp import TeTunnel
from repro.net.router import Router
from repro.net.topology import Network
from repro.net.vendors import (
    BROCADE,
    CISCO,
    LdpPolicy,
    VendorProfile,
    profile_named,
)
from repro.probing.prober import Prober
from repro.routing.control import ControlPlane
from repro.synth.profiles import TransitProfile, paper_profiles

__all__ = [
    "AttachedInternet",
    "InternetConfig",
    "SyntheticInternet",
    "build_internet",
]

_STUB_ASN_BASE = 60000


@dataclass(frozen=True)
class InternetConfig:
    """Knobs for :func:`build_internet`."""

    profiles: Tuple[TransitProfile, ...] = tuple(paper_profiles())
    stubs_per_transit: int = 3
    routers_per_stub: int = 2
    vantage_points: int = 8
    multihoming_share: float = 0.3  #: stubs with a second transit uplink
    #: Share of intra-AS links with direction-dependent IGP weights —
    #: a second source of forward/return asymmetry beyond hot potato.
    igp_asymmetry_share: float = 0.15
    #: Share of transit routers that never answer probes (the real
    #: Internet's ICMP-silent hops; they become traceroute stars).
    silent_share: float = 0.03
    seed: int = 2017
    intra_delay_range: Tuple[float, float] = (1.0, 8.0)
    inter_delay_range: Tuple[float, float] = (4.0, 25.0)
    #: Extra transit-to-transit adjacencies beyond the backbone ring.
    extra_transit_links: int = 4
    #: Memoise forwarding trajectories in the engine (False forces the
    #: original walk-per-probe dataplane; results are identical).
    trajectory_cache: bool = True
    #: Attach a compiled batch data plane to the engine (per-flow
    #: programs evaluated over whole probe batches; results are
    #: bit-identical to the scalar paths).
    compiled_plane: bool = False
    #: Traceroute TTL rounds the prober submits per batch (1 = the
    #: serial probe-per-probe loop).
    probe_batch_window: int = 1
    #: RSVP-TE tunnels to install per transit AS (0 = pure LDP, the
    #: paper's baseline).  Each tunnel pins an explicit core detour
    #: from a backbone PE to a customer-facing PE, steering transit
    #: traffic off the IGP shortest path (UHP, per the survey's note
    #: that UHP accompanies sophisticated traffic engineering).
    te_tunnels_per_transit: int = 0
    #: Copy the IP-TTL into the TE LSE at tunnel heads (True renders
    #: the TE tunnels *visible* to traceroute, for cross-validation
    #: ground truth; False is the invisible production default).
    te_ttl_propagate: bool = False


class SyntheticInternet:
    """A built synthetic Internet with probing and ground truth."""

    def __init__(self, config: InternetConfig) -> None:
        self.config = config
        self.network = Network()
        self.control = ControlPlane(self.network)
        self.engine = ForwardingEngine(
            self.network,
            self.control,
            trajectory_cache=config.trajectory_cache,
            compiled=config.compiled_plane,
        )
        self.prober = Prober(
            SimBackend(self.engine),
            batch_window=config.probe_batch_window,
        )
        self.profiles: Dict[int, TransitProfile] = {
            profile.asn: profile for profile in config.profiles
        }
        self.transit_asns: List[int] = [p.asn for p in config.profiles]
        self.stub_asns: List[int] = []
        self.vps: List[Router] = []
        #: stub ASN -> transit ASNs it attaches to
        self.stub_uplinks: Dict[int, List[int]] = {}
        #: transit ASN -> PE names carrying backbone peerings.  Stubs
        #: prefer the *other* PEs, mirroring the usual separation of
        #: peering and customer-facing edges — which is also what makes
        #: replies from customer PEs re-cross the core (and its return
        #: tunnels) instead of short-cutting out, as Sec. 5.3 assumes.
        self.backbone_pes: Dict[int, set] = {}
        #: Installed RSVP-TE tunnels, in install order (ground truth
        #: for the TNT cross-validation).
        self.te_tunnels: List[TeTunnel] = []
        self._rng = random.Random(config.seed)

    def customer_edge_routers(self, asn: int) -> List[Router]:
        """PE routers without backbone peerings (customer-facing)."""
        backbone = self.backbone_pes.get(asn, set())
        routers = [
            router
            for router in self.edge_routers(asn)
            if router.name not in backbone
        ]
        return routers or self.edge_routers(asn)

    # ------------------------------------------------------------------
    # Ground-truth helpers

    def asn_of_address(self, address: int) -> Optional[int]:
        """AS owning ``address`` (router ground truth, then prefix)."""
        router = self.network.owner_of(address)
        if router is not None:
            return router.asn
        return self.network.asn_of_address(address)

    def router_of_address(self, address: int) -> Optional[Router]:
        """Ground-truth owner router."""
        return self.network.owner_of(address)

    def is_transit_address(self, address: int) -> bool:
        """True when the address belongs to an MPLS transit AS."""
        return self.asn_of_address(address) in self.profiles

    def edge_routers(self, asn: int) -> List[Router]:
        """PE routers of a transit AS."""
        return [
            router
            for router in self.network.routers_in_as(asn)
            if router.name.split("_")[-1].startswith("PE")
        ]

    def core_routers(self, asn: int) -> List[Router]:
        """P routers of a transit AS."""
        return [
            router
            for router in self.network.routers_in_as(asn)
            if router.name.split("_")[-1].startswith("P")
            and not router.name.split("_")[-1].startswith("PE")
        ]

    def campaign_targets(self) -> List[int]:
        """Destination set (the A ∪ B analogue of Sec. 4).

        Stub-router *interface* addresses adjacent to transit PEs:
        these are the addresses an ITDK-style dataset actually holds
        (traceroute reveals incoming interfaces, not loopbacks).
        Tracing them makes the probe transit the suspicious AS and end
        one hop beyond its egress — exactly the ``X, Y, D`` tail the
        post-processing keys on.
        """
        targets = []
        for asn in self.stub_asns:
            for router in self.network.routers_in_as(asn):
                uplink = next(
                    (
                        interface.address
                        for interface in router.interfaces.values()
                        if interface.neighbor.router.asn in self.profiles
                    ),
                    None,
                )
                targets.append(
                    uplink if uplink is not None else router.loopback
                )
        return targets

    def true_forward_path(self, source: Router, dst: int) -> List[str]:
        """Ground-truth router path of a data packet (TTL 255)."""
        outcome = self.engine.send_probe(source, dst, ttl=255, flow_id=0)
        return outcome.forward_path

    def clone(
        self,
        compiled_plane: Optional[bool] = None,
        probe_batch_window: Optional[int] = None,
        trajectory_cache: Optional[bool] = None,
    ) -> "SyntheticInternet":
        """A private, **unfrozen** copy-on-churn twin of this internet.

        Where :meth:`attach` shares the network and control plane
        (read-only, for frozen serve snapshots), ``clone`` deep-copies
        the network — routers, links, prefix table, MPLS configs — and
        rebuilds everything derived on top of the copy: a fresh
        :class:`~repro.routing.control.ControlPlane` (route memos,
        LDP/TE label state and BGP adjacency are pure functions of the
        topology, recomputed on demand), the RSVP-TE tunnels
        reinstalled in their original order, and a private
        engine/prober pair.  The twin is mutable even when the source
        is frozen, which is what lets a monitoring fleet churn private
        twins of a shared rendered snapshot without ever thawing the
        original (`Network.freeze` invariants hold for served
        tenants throughout).

        The twin is deterministic: cloning the same source yields
        byte-identical campaign results, and a clone's campaign equals
        the source's (pinned by test), so fleet chains and standalone
        monitor chains land in the same content-keyed snapshots.
        """
        from dataclasses import replace

        config = replace(
            self.config,
            trajectory_cache=(
                self.config.trajectory_cache
                if trajectory_cache is None
                else trajectory_cache
            ),
            compiled_plane=(
                self.config.compiled_plane
                if compiled_plane is None
                else compiled_plane
            ),
            probe_batch_window=(
                self.config.probe_batch_window
                if probe_batch_window is None
                else probe_batch_window
            ),
        )
        twin = SyntheticInternet.__new__(SyntheticInternet)
        twin.config = config
        network = Network()
        # Structural copy in creation order (deepcopy would recurse
        # through the router<->interface<->link cycles): same names,
        # same addresses (loopbacks and link prefixes passed
        # explicitly), same directional weights and delays, so the
        # twin's forwarding behaviour is bit-identical to the source.
        for router in self.network.routers.values():
            mirror = network.add_router(
                router.name,
                asn=router.asn,
                vendor=router.vendor,
                mpls=router.mpls,
                loopback=router.loopback,
            )
            mirror.icmp_enabled = router.icmp_enabled
            mirror.icmp_response_rate = router.icmp_response_rate
        for link in self.network.links:
            side_a, side_b = link.side_a, link.side_b
            network.add_link(
                network.routers[side_a.router.name],
                network.routers[side_b.router.name],
                weight=link.weight_ab,
                weight_back=link.weight_ba,
                delay_ms=link.delay_ms,
                prefix=link.prefix,
                if_name_a=side_a.name,
                if_name_b=side_b.name,
            )
        twin.network = network
        twin.control = ControlPlane(network)
        twin.profiles = dict(self.profiles)
        twin.transit_asns = list(self.transit_asns)
        twin.stub_asns = list(self.stub_asns)
        twin.vps = [network.routers[vp.name] for vp in self.vps]
        twin.stub_uplinks = {
            asn: list(uplinks)
            for asn, uplinks in self.stub_uplinks.items()
        }
        twin.backbone_pes = {
            asn: set(names)
            for asn, names in self.backbone_pes.items()
        }
        # TeTunnel specs are frozen dataclasses keyed by router names;
        # reinstalling them against the fresh control plane rebuilds
        # the twin's TE label state in the original install order.
        twin.te_tunnels = []
        for tunnel in self.te_tunnels:
            twin.control.install_te_tunnel(tunnel)
            twin.te_tunnels.append(tunnel)
        twin._rng = random.Random()
        twin._rng.setstate(self._rng.getstate())
        twin.engine = ForwardingEngine(
            network,
            twin.control,
            trajectory_cache=config.trajectory_cache,
            compiled=config.compiled_plane,
        )
        twin.prober = Prober(
            SimBackend(twin.engine),
            batch_window=config.probe_batch_window,
        )
        twin.control.invalidate()
        return twin

    def attach(
        self,
        compiled_plane: bool = False,
        probe_batch_window: int = 1,
        trajectory_cache: bool = True,
        obs=None,
    ) -> "AttachedInternet":
        """A fresh measurement stack over this (shared) topology.

        Builds a new :class:`ForwardingEngine` and
        :class:`~repro.probing.prober.Prober` riding the *same*
        network and control plane — route memos stay shared (they are
        pure functions of the topology), while trajectory caches,
        label allocation, compiled programs, and metrics are private
        to the attachment.  This is the serve snapshot registry's
        lazy-attach path: rendering the topology once and attaching N
        engines costs one ``internet_build`` instead of N.
        """
        from dataclasses import replace

        engine = ForwardingEngine(
            self.network,
            self.control,
            trajectory_cache=trajectory_cache,
            obs=obs,
            compiled=compiled_plane,
        )
        prober = Prober(
            SimBackend(engine), batch_window=probe_batch_window
        )
        return AttachedInternet(
            self,
            engine,
            prober,
            replace(
                self.config,
                trajectory_cache=trajectory_cache,
                compiled_plane=compiled_plane,
                probe_batch_window=probe_batch_window,
            ),
        )


class AttachedInternet:
    """A private engine + prober over a shared rendered internet.

    Everything topological (network, ground truth, vantage points,
    profiles) delegates to the underlying
    :class:`SyntheticInternet`; ``engine``, ``prober``, and ``config``
    are attachment-local, so concurrent attachments never mix counters
    or caches.  Produced by :meth:`SyntheticInternet.attach`.
    """

    def __init__(self, base, engine, prober, config) -> None:
        self.base = base
        self.engine = engine
        self.prober = prober
        self.config = config

    def __getattr__(self, name: str):
        """Delegate everything non-local to the shared internet."""
        return getattr(self.base, name)

    def detach(self) -> None:
        """Unhook this attachment's caches from the shared control
        plane so the engine (and its memoised trajectories) can be
        garbage-collected while the snapshot lives on."""
        control = self.base.control
        control.remove_invalidation_listener(
            self.engine.flush_trajectories
        )
        if self.engine.compiled_plane is not None:
            control.remove_invalidation_listener(
                self.engine._flush_compiled
            )
        service = getattr(self.prober, "service", None)
        if service is not None:
            control.remove_invalidation_listener(service.flush_cache)


def build_internet(
    config: Optional[InternetConfig] = None,
) -> SyntheticInternet:
    """Generate a synthetic Internet from ``config`` (seeded)."""
    internet = SyntheticInternet(config or InternetConfig())
    _build_transits(internet)
    _interconnect_transits(internet)
    _build_stubs(internet)
    _pick_vantage_points(internet)
    _silence_some_routers(internet)
    _install_te_tunnels(internet)
    internet.network.validate()
    # The control plane snapshotted an empty topology at construction;
    # re-derive adjacency and drop memoised routes now that the
    # network is complete.
    internet.control.invalidate()
    return internet


# ---------------------------------------------------------------------------
# Construction helpers


def _vendor_for(rng: random.Random, mix: Dict[str, float]) -> VendorProfile:
    """Seeded draw from a vendor-share mapping."""
    names = sorted(mix)
    weights = [mix[name] for name in names]
    choice = rng.choices(names, weights=weights, k=1)[0]
    return profile_named(choice)


def _transit_mpls_config(
    rng: random.Random, profile: TransitProfile, vendor: VendorProfile
) -> MplsConfig:
    """Per-router MPLS config drawn from the AS profile."""
    propagate = rng.random() < profile.ttl_propagate_share
    popping = (
        PoppingMode.UHP
        if rng.random() < profile.uhp_share
        else PoppingMode.PHP
    )
    config = MplsConfig.from_vendor(
        vendor, ttl_propagate=propagate, popping=popping
    )
    if profile.ldp_all_prefixes is True:
        config = config.with_overrides(ldp_policy=LdpPolicy.ALL_PREFIXES)
    elif profile.ldp_all_prefixes is False:
        config = config.with_overrides(ldp_policy=LdpPolicy.LOOPBACK_ONLY)
    return config


def _igp_weights(
    rng: random.Random, config: InternetConfig
) -> Dict[str, int]:
    """Weight kwargs for one intra-AS link, possibly asymmetric."""
    weight = rng.randint(1, 3)
    if rng.random() < config.igp_asymmetry_share:
        back = rng.randint(1, 3)
        return {"weight": weight, "weight_back": back}
    return {"weight": weight}


def _build_transits(internet: SyntheticInternet) -> None:
    rng = internet._rng
    config = internet.config
    network = internet.network
    for profile in config.profiles:
        cores: List[Router] = []
        for i in range(profile.core_size):
            vendor = _vendor_for(rng, profile.vendor_mix)
            cores.append(
                network.add_router(
                    f"AS{profile.asn}_P{i}",
                    asn=profile.asn,
                    vendor=vendor,
                    mpls=_transit_mpls_config(rng, profile, vendor),
                )
            )
        # Core ring + chords up to the profile's mesh degree.
        if len(cores) > 1:
            for i, router in enumerate(cores):
                peer = cores[(i + 1) % len(cores)]
                if network.routers.get(peer.name) and not router.interface_toward(peer):
                    network.add_link(
                        router,
                        peer,
                        delay_ms=rng.uniform(*config.intra_delay_range),
                        **_igp_weights(rng, config),
                    )
            chords = max(0, profile.mesh_degree - 2) * len(cores) // 2
            for _ in range(chords):
                a, b = rng.sample(cores, 2)
                if a.interface_toward(b) is None:
                    network.add_link(
                        a, b,
                        delay_ms=rng.uniform(*config.intra_delay_range),
                        **_igp_weights(rng, config),
                    )
        # Edge (PE) routers: each hangs off one or two cores.
        for i in range(profile.edge_size):
            vendor = _vendor_for(rng, profile.vendor_mix)
            pe = network.add_router(
                f"AS{profile.asn}_PE{i}",
                asn=profile.asn,
                vendor=vendor,
                mpls=_transit_mpls_config(rng, profile, vendor),
            )
            attach_points = rng.sample(
                cores, k=min(len(cores), 1 + (rng.random() < 0.4))
            )
            for core in attach_points:
                network.add_link(
                    pe, core,
                    delay_ms=rng.uniform(*config.intra_delay_range),
                    **_igp_weights(rng, config),
                )


def _interconnect_transits(internet: SyntheticInternet) -> None:
    """Backbone ring over transits plus a few extra adjacencies."""
    rng = internet._rng
    config = internet.config
    asns = internet.transit_asns
    pairs = [
        (asns[i], asns[(i + 1) % len(asns)]) for i in range(len(asns))
    ]
    for _ in range(config.extra_transit_links):
        a, b = rng.sample(asns, 2)
        if (a, b) not in pairs and (b, a) not in pairs:
            pairs.append((a, b))
    for a, b in pairs:
        # Two parallel peerings per adjacency: hot-potato choices
        # differ per ingress router, creating forward/return asymmetry.
        for _ in range(2):
            pe_a = rng.choice(internet.edge_routers(a))
            pe_b = rng.choice(internet.edge_routers(b))
            if pe_a.interface_toward(pe_b) is None:
                internet.network.add_link(
                    pe_a, pe_b,
                    delay_ms=rng.uniform(*config.inter_delay_range),
                )
                internet.backbone_pes.setdefault(a, set()).add(pe_a.name)
                internet.backbone_pes.setdefault(b, set()).add(pe_b.name)


def _build_stubs(internet: SyntheticInternet) -> None:
    rng = internet._rng
    config = internet.config
    network = internet.network
    next_asn = _STUB_ASN_BASE
    for transit_asn in internet.transit_asns:
        for _ in range(config.stubs_per_transit):
            asn = next_asn
            next_asn += 1
            internet.stub_asns.append(asn)
            routers = []
            for i in range(config.routers_per_stub):
                routers.append(
                    network.add_router(
                        f"AS{asn}_R{i}",
                        asn=asn,
                        vendor=CISCO if rng.random() < 0.7 else BROCADE,
                    )
                )
            for a, b in zip(routers, routers[1:]):
                network.add_link(
                    a, b, delay_ms=rng.uniform(*config.intra_delay_range)
                )
            uplinks = [transit_asn]
            # First router uplinks to a customer-facing PE of the
            # home transit (peering PEs carry the backbone).
            pe = rng.choice(internet.customer_edge_routers(transit_asn))
            network.add_link(
                routers[0], pe,
                delay_ms=rng.uniform(*config.inter_delay_range),
            )
            # Optional multihoming to a second transit.
            if (
                rng.random() < config.multihoming_share
                and len(internet.transit_asns) > 1
            ):
                other = rng.choice(
                    [t for t in internet.transit_asns if t != transit_asn]
                )
                pe2 = rng.choice(internet.customer_edge_routers(other))
                network.add_link(
                    routers[-1], pe2,
                    delay_ms=rng.uniform(*config.inter_delay_range),
                )
                uplinks.append(other)
            internet.stub_uplinks[asn] = uplinks


def _silence_some_routers(internet: SyntheticInternet) -> None:
    """Make a seeded share of transit *core* routers ICMP-silent.

    Only cores: silencing a PE would erase candidate pairs wholesale,
    while silent cores produce the realistic mid-trace stars ITDK
    models with pseudo-addresses.
    """
    rng = internet._rng
    share = internet.config.silent_share
    if share <= 0:
        return
    for asn in internet.transit_asns:
        for router in internet.core_routers(asn):
            if rng.random() < share:
                router.icmp_enabled = False


def _te_path(
    rng: random.Random,
    head: Router,
    tail: Router,
    max_len: int = 8,
) -> Optional[List[Router]]:
    """A seeded explicit intra-AS path from ``head`` to ``tail``.

    Randomised DFS over the AS adjacency, visiting core (P) routers
    before PEs so the pinned path detours through the backbone — the
    whole point of a TE tunnel is to diverge from the IGP shortest
    path.  Deterministic for a given rng state.
    """
    asn = head.asn
    path: List[Router] = [head]
    visited = {head.name}

    def step(router: Router) -> bool:
        if router is tail:
            return True
        if len(path) >= max_len:
            return False
        neighbors = sorted(
            {
                interface.neighbor.router
                for interface in router.interfaces.values()
                if interface.neighbor.router.asn == asn
                and interface.neighbor.router.name not in visited
            },
            key=lambda peer: peer.name,
        )
        rng.shuffle(neighbors)
        # Stable sort after the shuffle: cores first (random order
        # within each group) so the tunnel prefers backbone detours.
        neighbors.sort(
            key=lambda peer: peer.name.split("_")[-1].startswith("PE")
        )
        for neighbor in neighbors:
            visited.add(neighbor.name)
            path.append(neighbor)
            if step(neighbor):
                return True
            path.pop()
        return False

    return path if step(head) else None


def _install_te_tunnels(internet: SyntheticInternet) -> None:
    """Pin seeded RSVP-TE tunnels across each transit AS.

    Heads are backbone PEs (where inter-domain transit traffic enters
    the AS), tails are customer-facing PEs (where it leaves toward the
    stubs) — the head steers exactly the flows whose BGP egress is the
    tail, so campaign targets actually ride the tunnels.  Runs last in
    the build pipeline and consumes the RNG only when enabled, keeping
    TE-free topologies byte-identical to older seeds.
    """
    count = internet.config.te_tunnels_per_transit
    if count <= 0:
        return
    rng = internet._rng
    network = internet.network
    for asn in internet.transit_asns:
        backbone = sorted(internet.backbone_pes.get(asn, set()))
        heads = [network.routers[name] for name in backbone]
        if not heads:
            heads = internet.edge_routers(asn)
        tails = internet.customer_edge_routers(asn)
        installed = 0
        attempts = 0
        while installed < count and attempts < count * 8:
            attempts += 1
            head = heads[rng.randrange(len(heads))]
            tail = tails[rng.randrange(len(tails))]
            if head is tail:
                continue
            if internet.control.te.tunnel_from(head.name, tail.name):
                continue
            path = _te_path(rng, head, tail)
            if path is None or len(path) < 3:
                continue
            tunnel = TeTunnel(
                name=f"te-as{asn}-{installed}",
                path=tuple(router.name for router in path),
                popping=PoppingMode.UHP,
                ttl_propagate=internet.config.te_ttl_propagate,
            )
            internet.control.install_te_tunnel(tunnel)
            internet.te_tunnels.append(tunnel)
            installed += 1


def _pick_vantage_points(internet: SyntheticInternet) -> None:
    """Spread VPs across stubs homed to different transits."""
    rng = internet._rng
    count = internet.config.vantage_points
    by_home: Dict[int, List[int]] = {}
    for asn in internet.stub_asns:
        by_home.setdefault(internet.stub_uplinks[asn][0], []).append(asn)
    homes = sorted(by_home)
    picked: List[int] = []
    index = 0
    while len(picked) < count and any(by_home.values()):
        home = homes[index % len(homes)]
        index += 1
        candidates = by_home[home]
        if candidates:
            picked.append(candidates.pop(rng.randrange(len(candidates))))
    for asn in picked:
        internet.vps.append(internet.network.routers_in_as(asn)[0])
