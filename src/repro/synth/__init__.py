"""Synthetic environments: testbeds, Internet generator, failures, churn."""

from repro.synth.churn import (
    CHURN_PROFILES,
    ChurnEvent,
    ChurnModel,
    ChurnProfile,
    churn_profile,
    churn_profile_names,
)
from repro.synth.failures import (
    disable_rfc4950,
    rate_limit_routers,
    silence_routers,
)
from repro.synth.gns3 import SCENARIOS, Gns3Testbed, build_gns3
from repro.synth.internet import (
    InternetConfig,
    SyntheticInternet,
    build_internet,
)
from repro.synth.ios_config import network_configs, router_config
from repro.synth.profiles import (
    PAPER_PROFILES,
    SURVEY,
    TransitProfile,
    paper_profiles,
    random_profiles,
)

__all__ = [
    "CHURN_PROFILES",
    "ChurnEvent",
    "ChurnModel",
    "ChurnProfile",
    "churn_profile",
    "churn_profile_names",
    "Gns3Testbed",
    "InternetConfig",
    "PAPER_PROFILES",
    "SCENARIOS",
    "SURVEY",
    "SyntheticInternet",
    "TransitProfile",
    "build_gns3",
    "build_internet",
    "disable_rfc4950",
    "network_configs",
    "paper_profiles",
    "random_profiles",
    "rate_limit_routers",
    "router_config",
    "silence_routers",
]
