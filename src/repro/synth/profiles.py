"""Per-AS deployment profiles for the synthetic Internet.

The generator needs realistic diversity: vendor mixes, LDP policies,
TTL-propagation and UHP shares all vary per operator.  The profiles
below are patterned on the ten ASes of Table 5 (TTL-signature shares,
dominant revelation technique, tunnel lengths) and on the operator
survey quoted throughout Sec. 2 (87% deploy MPLS, 48% use
``no-ttl-propagate``, 10% UHP, 58% Cisco / 28% Juniper hardware).

The absolute ASNs are kept for readability; everything else is a
*model* of the published measurements, not the measurements themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "SURVEY",
    "TransitProfile",
    "PAPER_PROFILES",
    "paper_profiles",
    "random_profiles",
    "scaled_profiles",
]

#: Operator survey shares (Sec. 1–2 of the paper).
SURVEY = {
    "mpls_deployment": 0.87,
    "no_ttl_propagate": 0.48,
    "uhp": 0.10,
    "ldp_only": 0.50,
    "rsvp_te_only": 0.08,
    "ldp_and_rsvp_te": 0.42,
    "cisco_hardware": 0.58,
    "juniper_hardware": 0.28,
    "mixed_hardware": 0.25,
}


@dataclass(frozen=True)
class TransitProfile:
    """Blueprint for one synthetic MPLS transit AS.

    Attributes:
        asn: the AS number (Table 5 labels reused for readability).
        name: operator name as printed in the paper.
        vendor_mix: ``{vendor_name: share}`` over the AS's routers
            (shares of the ``<255,255>``, ``<255,64>`` and ``<64,64>``
            signatures in Table 5).
        core_size: number of core (P) routers — controls tunnel length.
        edge_size: number of edge (PE) routers — controls HDN degree.
        ttl_propagate_share: fraction of LERs still propagating the TTL
            (tunnels through them stay explicit).
        uhp_share: fraction of routers popping with explicit null
            (their tunnels resist every technique).
        mesh_degree: average intra-core adjacency (density knob).
        ldp_all_prefixes: explicit operator-wide LDP policy override:
            True forces all-prefixes advertising (BRPR-friendly), False
            forces loopback-only (DPR-friendly), None keeps each
            router's vendor default — where a single loopback-only
            device makes the whole AS effectively loopback-only.
    """

    asn: int
    name: str
    vendor_mix: Dict[str, float]
    core_size: int
    edge_size: int
    ttl_propagate_share: float = 0.0
    uhp_share: float = 0.0
    mesh_degree: int = 3
    ldp_all_prefixes: object = None

    def dominant_vendor(self) -> str:
        """The vendor holding the largest share."""
        return max(self.vendor_mix.items(), key=lambda kv: kv[1])[0]


#: Ten transit profiles patterned on Table 5, ordered as in the paper
#: (Cisco-heavy first).  ``core_size`` follows the FTL column: ASes
#: with median tunnel length 1 get tiny cores, length 4–5 get deep
#: ones.  ``uhp_share`` models the near-zero revelation rates of
#: AS1299/AS2856 (Table 4: 0.2% / 0.1% revealed).
PAPER_PROFILES: Tuple[TransitProfile, ...] = (
    TransitProfile(
        asn=3491, name="PCCW Global",
        vendor_mix={"cisco": 0.95, "brocade": 0.05},
        core_size=5, edge_size=10, mesh_degree=3,
        ldp_all_prefixes=True,  # BRPR dominates (74%) in Table 5
    ),
    TransitProfile(
        asn=4134, name="China Telecom",
        vendor_mix={"cisco": 0.9, "juniper": 0.1},
        core_size=2, edge_size=14, mesh_degree=2,
        ldp_all_prefixes=True,  # short tunnels: mostly "DPR or BRPR"
    ),
    TransitProfile(
        asn=2856, name="British Telecom",
        vendor_mix={"cisco": 0.7, "juniper": 0.3},
        core_size=4, edge_size=10, uhp_share=1.0,
    ),
    TransitProfile(
        asn=3320, name="Deutsche Telekom",
        vendor_mix={"cisco": 0.55, "juniper": 0.45},
        core_size=5, edge_size=23, mesh_degree=3,
    ),
    TransitProfile(
        asn=6762, name="Telecom Italia",
        vendor_mix={"cisco": 0.4, "juniper": 0.6},
        core_size=4, edge_size=10, mesh_degree=3,
        ldp_all_prefixes=True,  # BRPR succeeds 69% despite the mix
    ),
    TransitProfile(
        asn=209, name="Qwest",
        vendor_mix={"cisco": 0.3, "juniper": 0.7},
        core_size=8, edge_size=8, mesh_degree=2,
    ),
    TransitProfile(
        asn=1299, name="Telia",
        vendor_mix={"cisco": 0.25, "juniper": 0.75},
        core_size=2, edge_size=16, ttl_propagate_share=0.7,
        uhp_share=0.2, mesh_degree=2,
    ),
    TransitProfile(
        asn=3549, name="Level 3",
        vendor_mix={"cisco": 0.1, "juniper": 0.45, "brocade": 0.45},
        core_size=12, edge_size=17, mesh_degree=2,
    ),
    TransitProfile(
        asn=9498, name="Bharti Airtel",
        vendor_mix={"juniper": 0.9, "cisco": 0.1},
        core_size=8, edge_size=12, mesh_degree=2,
    ),
    TransitProfile(
        asn=3257, name="Tinet Spa",
        vendor_mix={"juniper": 1.0},
        core_size=8, edge_size=14, mesh_degree=2,
    ),
)


def random_profiles(
    count: int, seed: int = 0, scale: float = 1.0
) -> List[TransitProfile]:
    """Draw ``count`` transit profiles from the survey distributions.

    Where :func:`paper_profiles` replays the ten named operators of
    Table 5, this generates arbitrary operators whose knobs follow the
    survey shares quoted in the paper (Sec. 1–2): 48% hide tunnels
    with ``no-ttl-propagate``, 10% deploy UHP, hardware splits between
    Cisco, Juniper and mixes.  Used for robustness sweeps across many
    synthetic Internets.
    """
    import random as _random

    if count < 1:
        raise ValueError("need at least one profile")
    rng = _random.Random(seed)
    profiles: List[TransitProfile] = []
    for index in range(count):
        roll = rng.random()
        if roll < SURVEY["mixed_hardware"]:
            cisco_share = rng.uniform(0.3, 0.7)
            mix = {"cisco": cisco_share, "juniper": 1 - cisco_share}
        elif roll < SURVEY["mixed_hardware"] + SURVEY["cisco_hardware"]:
            mix = {"cisco": 1.0}
        else:
            mix = {"juniper": 1.0}
        hides = rng.random() < SURVEY["no_ttl_propagate"]
        profiles.append(
            TransitProfile(
                asn=64500 + index,
                name=f"SyntheticOperator{index}",
                vendor_mix=mix,
                core_size=max(2, round(rng.randint(2, 8) * scale)),
                edge_size=max(3, round(rng.randint(6, 20) * scale)),
                ttl_propagate_share=0.0 if hides else 1.0,
                uhp_share=1.0 if rng.random() < SURVEY["uhp"] else 0.0,
                mesh_degree=rng.randint(2, 4),
            )
        )
    return profiles


def paper_profiles(scale: float = 1.0) -> List[TransitProfile]:
    """The Table 5 profiles, with sizes scaled by ``scale``.

    ``scale < 1`` shrinks every AS proportionally (minimum sizes keep
    each AS functional) — handy for fast test runs.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    scaled = []
    for profile in PAPER_PROFILES:
        scaled.append(
            TransitProfile(
                asn=profile.asn,
                name=profile.name,
                vendor_mix=dict(profile.vendor_mix),
                core_size=max(2, round(profile.core_size * scale)),
                edge_size=max(3, round(profile.edge_size * scale)),
                ttl_propagate_share=profile.ttl_propagate_share,
                uhp_share=profile.uhp_share,
                mesh_degree=profile.mesh_degree,
                ldp_all_prefixes=profile.ldp_all_prefixes,
            )
        )
    return scaled


def scaled_profiles(
    scale: float = 1.0, ttl_propagate_everywhere: bool = False
) -> List[TransitProfile]:
    """The Table 5 profiles scaled, optionally with tunnels visible.

    ``ttl_propagate_everywhere=True`` flips every AS to full TTL
    propagation and zero UHP — the "visible tunnels" control condition
    the experiments and the serve topology specs share.  This is the
    one canonical place that transform lives so a topology spec built
    here and one built by the experiment harness render byte-identical
    internets.
    """
    profiles = paper_profiles(scale)
    if not ttl_propagate_everywhere:
        return profiles
    return [
        TransitProfile(
            asn=p.asn,
            name=p.name,
            vendor_mix=dict(p.vendor_mix),
            core_size=p.core_size,
            edge_size=p.edge_size,
            ttl_propagate_share=1.0,
            uhp_share=0.0,
            mesh_degree=p.mesh_degree,
            ldp_all_prefixes=p.ldp_all_prefixes,
        )
        for p in profiles
    ]
