"""Failure injection for robustness studies.

Real campaigns face ICMP-silent routers, rate limiting, and LSRs that
do not implement RFC 4950 — the ingredients behind the paper's 8%
cross-validation failure class and the 9,407 non-rediscovered pairs.
These helpers degrade a built network deterministically (seeded) so
tests can measure how gracefully each technique fails.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.net.router import Router
from repro.net.topology import Network

__all__ = [
    "pick_routers",
    "silence_routers",
    "rate_limit_routers",
    "disable_rfc4950",
    "restore",
]


def pick_routers(
    network: Network,
    fraction: float,
    seed: int,
    asns: Optional[Sequence[int]] = None,
) -> List[Router]:
    """Seeded sample of routers, optionally restricted to ``asns``."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction out of range: {fraction}")
    pool = [
        router
        for name, router in sorted(network.routers.items())
        if asns is None or router.asn in asns
    ]
    count = round(len(pool) * fraction)
    rng = random.Random(seed)
    return rng.sample(pool, count)


def silence_routers(
    network: Network,
    fraction: float,
    seed: int = 0,
    asns: Optional[Sequence[int]] = None,
) -> List[Router]:
    """Make a seeded share of routers fully ICMP-silent."""
    routers = pick_routers(network, fraction, seed, asns)
    for router in routers:
        router.icmp_enabled = False
    return routers


def rate_limit_routers(
    network: Network,
    rate: float,
    fraction: float = 1.0,
    seed: int = 0,
    asns: Optional[Sequence[int]] = None,
) -> List[Router]:
    """Apply an ICMP response ``rate`` to a seeded share of routers."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate out of range: {rate}")
    routers = pick_routers(network, fraction, seed, asns)
    for router in routers:
        router.icmp_response_rate = rate
    return routers


def disable_rfc4950(
    network: Network,
    fraction: float,
    seed: int = 0,
    asns: Optional[Sequence[int]] = None,
) -> List[Router]:
    """Make a seeded share of MPLS routers stop quoting label stacks."""
    routers = [
        router
        for router in pick_routers(network, fraction, seed, asns)
        if router.mpls.enabled
    ]
    for router in routers:
        router.mpls = router.mpls.with_overrides(rfc4950=False)
    return routers


def restore(routers: Iterable[Router]) -> None:
    """Undo silencing/rate limiting on ``routers`` (not RFC 4950)."""
    for router in routers:
        router.icmp_enabled = True
        router.icmp_response_rate = 1.0
