"""Failure injection for robustness studies.

Real campaigns face ICMP-silent routers, rate limiting, and LSRs that
do not implement RFC 4950 — the ingredients behind the paper's 8%
cross-validation failure class and the 9,407 non-rediscovered pairs.
These helpers degrade a built network deterministically (seeded) so
tests can measure how gracefully each technique fails; every
injection stashes the pristine router state so :func:`restore` is an
exact round-trip (RFC 4950 quoting included).

For *dynamic* faults — loss, latency, rate-limit windows, flaps
applied at the probe layer mid-campaign — see :mod:`repro.faults`.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.net.router import Router
from repro.net.topology import Network

__all__ = [
    "pick_routers",
    "silence_routers",
    "rate_limit_routers",
    "disable_rfc4950",
    "restore",
]


def pick_routers(
    network: Network,
    fraction: float,
    seed: int,
    asns: Optional[Sequence[int]] = None,
) -> List[Router]:
    """Seeded sample of routers, optionally restricted to ``asns``."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction out of range: {fraction}")
    pool = [
        router
        for name, router in sorted(network.routers.items())
        if asns is None or router.asn in asns
    ]
    count = round(len(pool) * fraction)
    rng = random.Random(seed)
    return rng.sample(pool, count)


def _stash(router: Router) -> None:
    """Remember ``router``'s pristine fault-relevant state once.

    The first injection on a router snapshots what it is about to
    change; :func:`restore` pops the snapshot for an exact round-trip
    even when several injections stacked on the same router.
    """
    if not hasattr(router, "_fault_stash"):
        router._fault_stash = {
            "icmp_enabled": router.icmp_enabled,
            "icmp_response_rate": router.icmp_response_rate,
            "mpls": router.mpls,
        }


def silence_routers(
    network: Network,
    fraction: float,
    seed: int = 0,
    asns: Optional[Sequence[int]] = None,
) -> List[Router]:
    """Make a seeded share of routers fully ICMP-silent."""
    routers = pick_routers(network, fraction, seed, asns)
    for router in routers:
        _stash(router)
        router.icmp_enabled = False
    return routers


def rate_limit_routers(
    network: Network,
    rate: float,
    fraction: float = 1.0,
    seed: int = 0,
    asns: Optional[Sequence[int]] = None,
) -> List[Router]:
    """Apply an ICMP response ``rate`` to a seeded share of routers."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate out of range: {rate}")
    routers = pick_routers(network, fraction, seed, asns)
    for router in routers:
        _stash(router)
        router.icmp_response_rate = rate
    return routers


def disable_rfc4950(
    network: Network,
    fraction: float,
    seed: int = 0,
    asns: Optional[Sequence[int]] = None,
) -> List[Router]:
    """Make a seeded share of MPLS routers stop quoting label stacks."""
    routers = [
        router
        for router in pick_routers(network, fraction, seed, asns)
        if router.mpls.enabled
    ]
    for router in routers:
        _stash(router)
        router.mpls = router.mpls.with_overrides(rfc4950=False)
    return routers


def restore(routers: Iterable[Router]) -> None:
    """Undo every injection on ``routers``, exactly.

    Routers touched by :func:`silence_routers`,
    :func:`rate_limit_routers`, or :func:`disable_rfc4950` carry a
    stash of their pristine state; restoring pops it, so ICMP flags,
    response rates, *and* RFC 4950 quoting all return to their
    pre-injection values and a restored network measures identically
    to an untouched one.  Routers without a stash (degraded by older
    code paths) fall back to factory ICMP defaults.
    """
    for router in routers:
        stash = getattr(router, "_fault_stash", None)
        if stash is not None:
            router.icmp_enabled = stash["icmp_enabled"]
            router.icmp_response_rate = stash["icmp_response_rate"]
            router.mpls = stash["mpls"]
            del router._fault_stash
        else:
            router.icmp_enabled = True
            router.icmp_response_rate = 1.0
