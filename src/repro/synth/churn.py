"""Deterministic churn: evolve a live synthetic Internet between epochs.

The paper's motivation for *repeated* campaigns is operational churn:
LSPs appear and disappear as operators flip LDP configuration, pin or
tear down RSVP-TE tunnels, re-weight links, and upgrade router OSes.
This module models that churn as a seeded stream of discrete events
applied to a live (unfrozen) :class:`~repro.synth.internet.SyntheticInternet`
between monitoring epochs:

* ``link-cost`` — re-weight an intra-AS transit link (IGP reroute);
* ``ldp-policy`` — flip a transit router's ``ttl_propagate``
  (invisible ↔ explicit tunnel, Sec. 4 taxonomy);
* ``te-install`` / ``te-teardown`` — pin or remove an RSVP-TE tunnel
  through :class:`~repro.routing.control.ControlPlane` (which fires
  the compiled-plane invalidation listeners);
* ``vendor-upgrade`` — swap a router's vendor profile (new TTL
  signatures, the evidence the staleness engine watches).

Determinism contract: every epoch's event batch is a pure function of
``(seed, epoch, profile, schedule)`` — the per-epoch RNG is derived
from seed *and* epoch rather than carried forward, so a monitor that
skips already-completed epochs on resume still replays the exact same
churn the original run applied.  After mutating the network the model
calls :meth:`ControlPlane.invalidate`, so routing caches, LDP label
bindings, and compiled data-plane programs are all rebuilt lazily —
exactly the invalidation path chaos flaps already exercise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.mpls.config import PoppingMode
from repro.mpls.rsvp import TeTunnel
from repro.net.router import Router
from repro.net.topology import FrozenNetworkError, Link
from repro.net.vendors import PROFILES, profile_named
from repro.synth.internet import SyntheticInternet, _te_path

__all__ = [
    "CHURN_PROFILES",
    "ChurnEvent",
    "ChurnModel",
    "ChurnProfile",
    "churn_profile",
    "churn_profile_names",
]


@dataclass(frozen=True)
class ChurnEvent:
    """One applied churn event, JSON-ready via :meth:`to_dict`.

    Attributes:
        epoch: monitoring epoch the event fired in.
        kind: event family (``link-cost`` / ``ldp-policy`` /
            ``te-install`` / ``te-teardown`` / ``vendor-upgrade``).
        asn: transit AS whose state changed (staleness attribution).
        target: human-readable subject (router name, link, tunnel).
        detail: event-specific before/after specifics.
    """

    epoch: int
    kind: str
    asn: int
    target: str
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record (stored in per-epoch ``monitor.json``)."""
        return {
            "epoch": self.epoch,
            "kind": self.kind,
            "asn": self.asn,
            "target": self.target,
            "detail": dict(self.detail),
        }


@dataclass(frozen=True)
class ChurnProfile:
    """Named per-epoch event-rate mix, mirroring fault profiles.

    Counts are events *attempted* per epoch; an event that finds no
    eligible subject (e.g. a teardown with no installed tunnel) is
    skipped silently.  ``asns`` confines every event to those transit
    ASes — the knob the incremental-safety test uses to pin churn to
    a known region.
    """

    name: str
    link_cost_flips: int = 0
    ldp_policy_flips: int = 0
    te_installs: int = 0
    te_teardowns: int = 0
    vendor_upgrades: int = 0
    #: Restrict churn to these transit ASes (None = every transit).
    asns: Optional[Tuple[int, ...]] = None

    def restricted_to(self, asns: Sequence[int]) -> "ChurnProfile":
        """A copy of this profile confined to ``asns``."""
        return ChurnProfile(
            name=self.name,
            link_cost_flips=self.link_cost_flips,
            ldp_policy_flips=self.ldp_policy_flips,
            te_installs=self.te_installs,
            te_teardowns=self.te_teardowns,
            vendor_upgrades=self.vendor_upgrades,
            asns=tuple(asns),
        )


#: Shipped profiles, mild to aggressive.  ``calm`` applies nothing —
#: useful to measure the pure carried-forward fast path.
CHURN_PROFILES: Dict[str, ChurnProfile] = {
    "calm": ChurnProfile(name="calm"),
    "gentle": ChurnProfile(
        name="gentle", link_cost_flips=1, ldp_policy_flips=1
    ),
    "steady": ChurnProfile(
        name="steady",
        link_cost_flips=2,
        ldp_policy_flips=1,
        te_installs=1,
        te_teardowns=1,
    ),
    "turbulent": ChurnProfile(
        name="turbulent",
        link_cost_flips=3,
        ldp_policy_flips=2,
        te_installs=2,
        te_teardowns=1,
        vendor_upgrades=1,
    ),
}


def churn_profile(name: str) -> ChurnProfile:
    """Look up a shipped profile (ValueError lists known names)."""
    try:
        return CHURN_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown churn profile {name!r}; "
            f"known: {', '.join(sorted(CHURN_PROFILES))}"
        ) from None


def churn_profile_names() -> List[str]:
    """Shipped profile names, sorted."""
    return sorted(CHURN_PROFILES)


class ChurnModel:
    """Applies seeded churn to a live internet, one epoch at a time.

    Args:
        internet: the internet to evolve; its network must be
            unfrozen (the churn model *owns* the topology — shared
            rendered snapshots cannot churn).
        profile: event-rate mix applied every epoch.
        seed: churn RNG seed; per-epoch state is derived from
            ``(seed, epoch)`` so epochs replay independently.
        schedule: optional scripted events, ``epoch -> [spec, ...]``,
            applied *before* the profile-driven batch.  Specs are
            dicts: ``{"kind": "ldp-policy", "router": name}``,
            ``{"kind": "te-install", "head": name, "tail": name}``,
            ``{"kind": "te-teardown", "head": name, "tail": name}``,
            ``{"kind": "link-cost", "asn": asn}``,
            ``{"kind": "vendor-upgrade", "router": name,
            "vendor": profile-name}``.  Scripted events are strict:
            an inapplicable spec raises ``ValueError`` rather than
            silently skipping (tests rely on them firing).
    """

    def __init__(
        self,
        internet: SyntheticInternet,
        profile: ChurnProfile,
        seed: int,
        schedule: Optional[Mapping[int, Sequence[Mapping[str, object]]]] = None,
    ) -> None:
        if internet.network.frozen:
            raise FrozenNetworkError(
                f"churn profile {profile.name!r} cannot run against "
                "a frozen network (shared rendered snapshot); check "
                "out a private copy-on-churn twin instead — "
                "SnapshotRegistry.checkout, or a monitoring fleet "
                "(repro fleet), which does it per chain"
            )
        self.internet = internet
        self.profile = profile
        self.seed = seed
        self.schedule = {
            int(epoch): list(specs)
            for epoch, specs in (schedule or {}).items()
        }
        #: Every event applied so far, in application order.
        self.events: List[ChurnEvent] = []
        self._installed = 0

    # ------------------------------------------------------------------
    # Public API

    def advance(self, epoch: int) -> List[ChurnEvent]:
        """Apply epoch ``epoch``'s churn batch; returns the events.

        Pure function of ``(seed, epoch, profile, schedule)`` — the
        RNG is re-derived per epoch, never carried across calls, so
        ``advance(1); advance(2)`` and a resume that replays both
        mutate the network identically.
        """
        rng = random.Random(f"churn:{self.seed}:{epoch}")
        events: List[ChurnEvent] = []
        for spec in self.schedule.get(epoch, []):
            events.append(self._apply_spec(epoch, rng, spec))
        profile = self.profile
        for _ in range(profile.link_cost_flips):
            self._attempt(events, self._flip_link_cost(epoch, rng))
        for _ in range(profile.ldp_policy_flips):
            self._attempt(events, self._flip_ldp_policy(epoch, rng))
        for _ in range(profile.te_installs):
            self._attempt(events, self._install_te(epoch, rng))
        for _ in range(profile.te_teardowns):
            self._attempt(events, self._teardown_te(epoch, rng))
        for _ in range(profile.vendor_upgrades):
            self._attempt(events, self._upgrade_vendor(epoch, rng))
        if events:
            # TE install/teardown already fire listeners; link, LDP
            # and vendor edits need an explicit invalidation so the
            # IGP, label bindings and compiled programs rebuild.
            self.internet.control.invalidate()
        self.events.extend(events)
        return events

    @staticmethod
    def touched_asns(events: Sequence[ChurnEvent]) -> Tuple[int, ...]:
        """Sorted transit ASes the events mutated."""
        return tuple(sorted({event.asn for event in events}))

    # ------------------------------------------------------------------
    # Candidate pools (sorted before any rng.choice for determinism)

    def _eligible_asns(self) -> List[int]:
        """Transit ASes churn may touch, sorted."""
        eligible = self.internet.transit_asns
        if self.profile.asns is not None:
            allowed = set(self.profile.asns)
            eligible = [asn for asn in eligible if asn in allowed]
        return sorted(eligible)

    def _transit_links(self, asn: int) -> List[Link]:
        """Intra-AS links of ``asn``, in deterministic order."""
        links = []
        for link in self.internet.network.links:
            side_a, side_b = link.side_a, link.side_b
            if side_a is None or side_b is None:
                continue
            if side_a.router.asn == asn and side_b.router.asn == asn:
                links.append(link)
        return links

    def _mpls_routers(self, asn: int) -> List[Router]:
        """MPLS-enabled routers of ``asn``, sorted by name."""
        return sorted(
            (
                router
                for router in self.internet.network.routers_in_as(asn)
                if router.mpls.enabled
            ),
            key=lambda router: router.name,
        )

    # ------------------------------------------------------------------
    # Profile-driven events (return None when no subject is eligible)

    @staticmethod
    def _attempt(
        events: List[ChurnEvent], event: Optional[ChurnEvent]
    ) -> None:
        """Collect ``event`` unless the attempt found no subject."""
        if event is not None:
            events.append(event)

    def _flip_link_cost(
        self, epoch: int, rng: random.Random
    ) -> Optional[ChurnEvent]:
        """Re-weight a random intra-AS link (both directions)."""
        asns = self._eligible_asns()
        if not asns:
            return None
        asn = rng.choice(asns)
        links = self._transit_links(asn)
        if not links:
            return None
        link = rng.choice(links)
        old_ab, old_ba = link.weight_ab, link.weight_ba
        choices = [w for w in (1, 2, 3, 5, 8) if w != old_ab]
        link.weight_ab = rng.choice(choices)
        link.weight_ba = link.weight_ab
        assert link.side_a is not None and link.side_b is not None
        target = (
            f"{link.side_a.router.name}<->{link.side_b.router.name}"
        )
        return ChurnEvent(
            epoch=epoch,
            kind="link-cost",
            asn=asn,
            target=target,
            detail={
                "weight_before": [old_ab, old_ba],
                "weight_after": [link.weight_ab, link.weight_ba],
            },
        )

    def _flip_ldp_policy(
        self, epoch: int, rng: random.Random
    ) -> Optional[ChurnEvent]:
        """Flip a transit router's ``ttl_propagate`` (LDP policy)."""
        asns = self._eligible_asns()
        if not asns:
            return None
        asn = rng.choice(asns)
        routers = self._mpls_routers(asn)
        if not routers:
            return None
        router = rng.choice(routers)
        return self._flip_router_ldp(epoch, router)

    def _flip_router_ldp(
        self, epoch: int, router: Router
    ) -> ChurnEvent:
        """Invisible ↔ explicit: toggle ``ttl_propagate`` in place."""
        propagate = not router.mpls.ttl_propagate
        router.mpls = router.mpls.with_overrides(
            ttl_propagate=propagate
        )
        return ChurnEvent(
            epoch=epoch,
            kind="ldp-policy",
            asn=router.asn,
            target=router.name,
            detail={
                "ttl_propagate": propagate,
                "invisible": router.mpls.invisible,
            },
        )

    def _install_te(
        self,
        epoch: int,
        rng: random.Random,
        head_name: Optional[str] = None,
        tail_name: Optional[str] = None,
    ) -> Optional[ChurnEvent]:
        """Pin a fresh RSVP-TE tunnel (heads/tails as the builder)."""
        internet = self.internet
        network = internet.network
        if head_name is not None and tail_name is not None:
            head = network.routers[head_name]
            tail = network.routers[tail_name]
            candidates = [(head, tail)]
        else:
            candidates = []
            for asn in self._eligible_asns():
                backbone = sorted(internet.backbone_pes.get(asn, set()))
                heads = [network.routers[name] for name in backbone]
                if not heads:
                    heads = internet.edge_routers(asn)
                tails = internet.customer_edge_routers(asn)
                candidates.extend(
                    (head, tail)
                    for head in heads
                    for tail in tails
                    if head is not tail
                )
            rng.shuffle(candidates)
        for head, tail in candidates:
            if internet.control.te.tunnel_from(head.name, tail.name):
                continue
            path = _te_path(rng, head, tail)
            if path is None or len(path) < 3:
                continue
            self._installed += 1
            tunnel = TeTunnel(
                name=f"churn-e{epoch}-{self._installed}",
                path=tuple(router.name for router in path),
                popping=PoppingMode.UHP,
                ttl_propagate=internet.config.te_ttl_propagate,
            )
            internet.control.install_te_tunnel(tunnel)
            internet.te_tunnels.append(tunnel)
            return ChurnEvent(
                epoch=epoch,
                kind="te-install",
                asn=head.asn,
                target=f"{head.name}->{tail.name}",
                detail={
                    "tunnel": tunnel.name,
                    "path": list(tunnel.path),
                },
            )
        return None

    def _teardown_te(
        self,
        epoch: int,
        rng: random.Random,
        head_name: Optional[str] = None,
        tail_name: Optional[str] = None,
    ) -> Optional[ChurnEvent]:
        """Remove an installed tunnel (explicit head/tail or seeded)."""
        internet = self.internet
        network = internet.network
        eligible = set(self._eligible_asns())
        candidates = [
            tunnel
            for tunnel in internet.te_tunnels
            if network.routers[tunnel.path[0]].asn in eligible
        ]
        if head_name is not None and tail_name is not None:
            candidates = [
                tunnel
                for tunnel in internet.te_tunnels
                if tunnel.path[0] == head_name
                and tunnel.path[-1] == tail_name
            ]
        if not candidates:
            return None
        tunnel = rng.choice(candidates)
        head, tail = tunnel.path[0], tunnel.path[-1]
        internet.control.remove_te_tunnel(head, tail)
        internet.te_tunnels.remove(tunnel)
        return ChurnEvent(
            epoch=epoch,
            kind="te-teardown",
            asn=network.routers[head].asn,
            target=f"{head}->{tail}",
            detail={"tunnel": tunnel.name, "path": list(tunnel.path)},
        )

    def _upgrade_vendor(
        self, epoch: int, rng: random.Random
    ) -> Optional[ChurnEvent]:
        """Swap a transit router's vendor profile (new signatures)."""
        asns = self._eligible_asns()
        if not asns:
            return None
        asn = rng.choice(asns)
        routers = sorted(
            self.internet.network.routers_in_as(asn),
            key=lambda router: router.name,
        )
        if not routers:
            return None
        router = rng.choice(routers)
        others = [
            name
            for name in sorted(PROFILES)
            if name != router.vendor.name
        ]
        return self._swap_vendor(epoch, router, rng.choice(others))

    def _swap_vendor(
        self, epoch: int, router: Router, vendor_name: str
    ) -> ChurnEvent:
        """Apply the vendor swap and record before/after."""
        before = router.vendor.name
        router.vendor = profile_named(vendor_name)
        return ChurnEvent(
            epoch=epoch,
            kind="vendor-upgrade",
            asn=router.asn,
            target=router.name,
            detail={"vendor_before": before, "vendor_after": vendor_name},
        )

    # ------------------------------------------------------------------
    # Scripted events (strict: inapplicable specs raise)

    def _apply_spec(
        self,
        epoch: int,
        rng: random.Random,
        spec: Mapping[str, object],
    ) -> ChurnEvent:
        """Apply one scripted event spec; ValueError when impossible."""
        kind = spec.get("kind")
        network = self.internet.network
        if kind == "ldp-policy":
            router = network.routers[str(spec["router"])]
            return self._flip_router_ldp(epoch, router)
        if kind == "vendor-upgrade":
            router = network.routers[str(spec["router"])]
            return self._swap_vendor(epoch, router, str(spec["vendor"]))
        if kind == "te-install":
            event = self._install_te(
                epoch,
                rng,
                head_name=str(spec["head"]),
                tail_name=str(spec["tail"]),
            )
            if event is None:
                raise ValueError(
                    f"scripted te-install {spec['head']!r}->"
                    f"{spec['tail']!r} found no viable path"
                )
            return event
        if kind == "te-teardown":
            event = self._teardown_te(
                epoch,
                rng,
                head_name=str(spec["head"]),
                tail_name=str(spec["tail"]),
            )
            if event is None:
                raise ValueError(
                    f"scripted te-teardown {spec['head']!r}->"
                    f"{spec['tail']!r}: no such installed tunnel"
                )
            return event
        if kind == "link-cost":
            confined = self.profile.restricted_to([int(spec["asn"])])
            saved = self.profile
            self.profile = confined
            try:
                event = self._flip_link_cost(epoch, rng)
            finally:
                self.profile = saved
            if event is None:
                raise ValueError(
                    f"scripted link-cost in AS{spec['asn']}: "
                    "no intra-AS link found"
                )
            return event
        raise ValueError(f"unknown scripted churn kind {kind!r}")
