"""The paper's GNS3 validation testbed (Fig. 2) in simulation.

Three ASes::

    VP -- CE1   |   PE1 -- P1 -- P2 -- P3 -- PE2   |   CE2
       AS1      |           AS2 (MPLS, LDP)        |   AS3

``X.left`` is the interface of X facing the vantage point, ``X.right``
the one facing CE2 — matching the paper's notation, so the emulated
traceroute outputs can be compared line by line with Fig. 4.

Four scenarios (Sec. 3.3), selected by name:

* ``default`` — PHP, ttl-propagate, LDP labels all prefixes.
* ``backward-recursive`` — Default + ``no-ttl-propagate``.
* ``explicit-route`` — ``no-ttl-propagate`` + loopback-only LDP.
* ``totally-invisible`` — ``no-ttl-propagate`` + UHP (explicit null).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dataplane.engine import ForwardingEngine
from repro.measure import SimBackend
from repro.mpls.config import MplsConfig, PoppingMode
from repro.net.addressing import format_address
from repro.net.router import Router
from repro.net.topology import Network
from repro.net.vendors import CISCO, LdpPolicy, VendorProfile
from repro.probing.prober import Prober, Trace
from repro.routing.control import ControlPlane

__all__ = ["SCENARIOS", "Gns3Testbed", "build_gns3", "scenario_config"]

#: The four emulation scenarios of Sec. 3.3.
SCENARIOS = (
    "default",
    "backward-recursive",
    "explicit-route",
    "totally-invisible",
)

#: Router chain inside the MPLS transit AS (AS2).
_AS2_CHAIN = ("PE1", "P1", "P2", "P3", "PE2")


def scenario_config(
    scenario: str, vendor: VendorProfile = CISCO
) -> MplsConfig:
    """MPLS configuration applied to every AS2 router for ``scenario``."""
    base = MplsConfig.from_vendor(vendor)
    if scenario == "default":
        return base.with_overrides(
            ttl_propagate=True, ldp_policy=LdpPolicy.ALL_PREFIXES
        )
    if scenario == "backward-recursive":
        return base.with_overrides(
            ttl_propagate=False, ldp_policy=LdpPolicy.ALL_PREFIXES
        )
    if scenario == "explicit-route":
        return base.with_overrides(
            ttl_propagate=False, ldp_policy=LdpPolicy.LOOPBACK_ONLY
        )
    if scenario == "totally-invisible":
        return base.with_overrides(
            ttl_propagate=False,
            ldp_policy=LdpPolicy.ALL_PREFIXES,
            popping=PoppingMode.UHP,
        )
    raise ValueError(
        f"unknown scenario {scenario!r}; known: {SCENARIOS}"
    )


class Gns3Testbed:
    """A built Fig. 2 testbed with probing helpers."""

    def __init__(
        self,
        network: Network,
        scenario: str,
        vendor: VendorProfile,
        trajectory_cache: bool = True,
    ) -> None:
        self.network = network
        self.scenario = scenario
        self.vendor = vendor
        self.control = ControlPlane(network)
        self.engine = ForwardingEngine(
            network, self.control, trajectory_cache=trajectory_cache
        )
        self.prober = Prober(SimBackend(self.engine))
        self._names: Dict[int, str] = {}
        for router in network.routers.values():
            self._names[router.loopback] = f"{router.name}.lo"
            for if_name, interface in router.interfaces.items():
                self._names[interface.address] = (
                    f"{router.name}.{if_name}"
                )

    # ------------------------------------------------------------------

    @property
    def vantage_point(self) -> Router:
        """The probing source (VP, in AS1)."""
        return self.network.router("VP")

    def address(self, name: str) -> int:
        """Resolve ``"P3.left"`` / ``"CE2.lo"`` style names."""
        router_name, _, if_name = name.partition(".")
        router = self.network.router(router_name)
        if if_name in ("", "lo"):
            return router.loopback
        return router.interface(if_name).address

    def name_of(self, address: int) -> str:
        """Inverse of :meth:`address` (dotted quad when unknown)."""
        return self._names.get(address, format_address(address))

    def traceroute(self, target: str, **kwargs: object) -> Trace:
        """Paris traceroute from the VP to a named target."""
        return self.prober.traceroute(
            self.vantage_point, self.address(target), **kwargs
        )

    def render(self, trace: Trace) -> str:
        """Fig. 4-style text output for ``trace``."""
        return trace.render(self.name_of)


def build_gns3(
    scenario: str = "default",
    vendor: VendorProfile = CISCO,
    link_delay_ms: float = 1.0,
    config: Optional[MplsConfig] = None,
    trajectory_cache: bool = True,
) -> Gns3Testbed:
    """Construct the Fig. 2 topology under the given scenario.

    Passing ``config`` overrides the scenario's MPLS configuration
    entirely (used for the Table 2 grid sweep).
    ``trajectory_cache=False`` forces the engine's walk-per-probe
    dataplane (results are identical either way).
    """
    if config is None:
        config = scenario_config(scenario, vendor)
    network = Network()

    vp = network.add_router("VP", asn=1, vendor=CISCO)
    ce1 = network.add_router("CE1", asn=1, vendor=CISCO)
    as2: List[Router] = [
        network.add_router(name, asn=2, vendor=vendor, mpls=config)
        for name in _AS2_CHAIN
    ]
    ce2 = network.add_router("CE2", asn=3, vendor=CISCO)

    # AS1: VP behind CE1.  CE1.left faces the VP.
    network.add_link(
        ce1, vp, if_name_a="left", if_name_b="right",
        delay_ms=link_delay_ms,
    )
    # CE1 -> PE1 (inter-AS, AS1 numbers the link).  PE1.left faces CE1.
    network.add_link(
        ce1, as2[0], if_name_a="right", if_name_b="left",
        delay_ms=link_delay_ms,
    )
    # The AS2 chain: X.right -- Y.left.
    for left, right in zip(as2, as2[1:]):
        network.add_link(
            left, right, if_name_a="right", if_name_b="left",
            delay_ms=link_delay_ms,
        )
    # PE2 -> CE2 (inter-AS, AS3 numbers the link so CE2.left is an
    # external target for AS2 — the paper's probing case).
    network.add_link(
        ce2, as2[-1], if_name_a="left", if_name_b="right",
        delay_ms=link_delay_ms,
    )
    network.validate()
    return Gns3Testbed(
        network, scenario, vendor, trajectory_cache=trajectory_cache
    )
