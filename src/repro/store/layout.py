"""On-disk layout and keying for the campaign warehouse.

One *snapshot* is a directory holding everything one campaign
produced, laid out for both crash-safe incremental writes and
after-the-fact analytics (schema ``repro.store/1``)::

    <store root>/
      <key prefix>/            one snapshot per campaign key
        MANIFEST.json          {"schema": "repro.store/1", "key": ...,
                                "fingerprint": {...}}
        phases/
          trace.jsonl          one record per completed traceroute
          ping.jsonl           one record per completed fingerprint ping
          pairs.jsonl          one record per extracted candidate pair
          revelation.jsonl     one record per pair's revelation outcome
        run.json               status of the latest run (partial?, why)
        result.json            final summary: volumes, tunnels, per-AS
                               FRPLA/RTLA verdicts (for ``repro diff``)

Snapshots are *keyed by content*: the key is a SHA-256 over the
campaign's identity — topology descriptor (seed and friends), the
identity-relevant :class:`~repro.campaign.orchestrator.CampaignConfig`
fields, and the target set.  Execution knobs that cannot change what
is measured (``workers``, ``probe_budget``, ``scope_budgets``,
``retry_backoff_ms``) are excluded on purpose: interrupting a run with
a budget and resuming it without one must land in the same snapshot.

Phase records are an append-only log with *prefix semantics*: each
record carries its zero-based ``index``, and :func:`read_phase_records`
accepts the longest valid prefix, dropping a truncated or corrupt tail
(a crash mid-write loses at most the record being written).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

__all__ = [
    "STORE_SCHEMA",
    "DIFF_SCHEMA",
    "FLEET_SCHEMA",
    "MONITOR_SCHEMA",
    "PHASES",
    "IDENTITY_EXCLUDED_FIELDS",
    "IDENTITY_OMITTED_WHEN_NONE",
    "RESUME_EXEMPT_COUNTERS",
    "config_fingerprint",
    "campaign_key",
    "snapshot_dirname",
    "read_phase_records",
    "append_record",
    "rewrite_records",
    "write_json",
    "read_json",
]

#: Store layout schema identifier; bumped on incompatible changes.
STORE_SCHEMA = "repro.store/1"

#: Diff document schema identifier (see :mod:`repro.store.diff`).
DIFF_SCHEMA = "repro.store.diff/1"

#: Monitor timeline document schema identifier (see
#: :mod:`repro.store.timeline`); also stamped on the per-epoch
#: ``monitor.json`` sidecar the monitor loop writes into snapshots.
MONITOR_SCHEMA = "repro.monitor/1"

#: Fleet aggregate document schema identifier (see
#: :mod:`repro.store.fleet`); stamped on the cross-chain fold a
#: :class:`~repro.fleet.FleetSupervisor` writes as ``fleet.json``.
FLEET_SCHEMA = "repro.fleet/1"

#: Checkpointable phases, in pipeline order, with their record files.
PHASES = ("trace", "ping", "pairs", "revelation")

#: CampaignConfig fields excluded from the campaign key: they steer
#: *how* the run executes (parallelism, stopping, wall-clock pacing),
#: not what it measures, and resuming legitimately changes them.
IDENTITY_EXCLUDED_FIELDS = (
    "workers",
    "probe_budget",
    "scope_budgets",
    "retry_backoff_ms",
)

#: Measurement counters a resumed run regenerates itself rather than
#: restoring: run-lifecycle counts that an *uninterrupted* run would
#: never have accumulated (the interruption and the resume are
#: execution events, not measurements).
RESUME_EXEMPT_COUNTERS = (
    "campaign.runs",
    "campaign.partial_runs",
    "measure.budget.denied",
    "measure.cache.flushes",
)

#: CampaignConfig fields dropped from the fingerprint entirely while
#: they hold their ``None`` default.  These are fields added *after*
#: snapshots already existed in the wild: omitting the default keeps
#: every pre-existing campaign key byte-identical, while a non-None
#: value (e.g. the monitor's carried-pair subset, which changes what
#: the revelation phase measures) still keys its own snapshot.
IDENTITY_OMITTED_WHEN_NONE = ("carried_pairs",)


def config_fingerprint(config) -> Dict[str, object]:
    """A CampaignConfig's identity-relevant fields, JSON-ready.

    Frozensets and tuples are canonicalised to sorted lists so the
    fingerprint is stable across processes.
    """
    fields = dataclasses.asdict(config)
    fingerprint: Dict[str, object] = {}
    for name, value in sorted(fields.items()):
        if name in IDENTITY_EXCLUDED_FIELDS:
            continue
        if name in IDENTITY_OMITTED_WHEN_NONE and value is None:
            continue
        if isinstance(value, frozenset):
            value = sorted(value)
        elif isinstance(value, tuple):
            value = [
                list(item) if isinstance(item, tuple) else item
                for item in value
            ]
        fingerprint[name] = value
    return fingerprint


def campaign_key(
    topology: Dict[str, object],
    config,
    targets: Sequence[int],
) -> Dict[str, object]:
    """Build the snapshot fingerprint and its content-hash key.

    Returns a dict with ``key`` (full SHA-256 hex) plus the
    human-readable fingerprint components stored in the manifest.
    ``topology`` is whatever the caller uses to rebuild the measured
    network (typically seed/scale/vantage-point counts); the target
    set is hashed rather than stored, with its size kept for
    inspection.
    """
    targets = sorted(targets)
    target_digest = hashlib.sha256(
        json.dumps(targets, separators=(",", ":")).encode("ascii")
    ).hexdigest()
    fingerprint = {
        "topology": dict(sorted(topology.items())),
        "config": config_fingerprint(config),
        "targets": {"count": len(targets), "sha256": target_digest},
    }
    key = hashlib.sha256(
        json.dumps(
            fingerprint, sort_keys=True, separators=(",", ":")
        ).encode("ascii")
    ).hexdigest()
    return {"key": key, "fingerprint": fingerprint}


def snapshot_dirname(key: str) -> str:
    """Directory name for a snapshot (shortened, collision-safe
    enough for one warehouse)."""
    return key[:12]


# ---------------------------------------------------------------------------
# Record I/O


def read_phase_records(path: Union[str, Path]) -> List[dict]:
    """Load the longest valid record prefix from a phase file.

    Tolerates a missing file, blank lines, a truncated final line,
    and arbitrary garbage after a crash: reading stops at the first
    line that is not a JSON object carrying the expected next
    ``index``, and everything before it is returned.
    """
    records: List[dict] = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError:
        return records
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break
            if (
                not isinstance(record, dict)
                or record.get("index") != len(records)
            ):
                break
            records.append(record)
    return records


def append_record(handle, record: dict) -> int:
    """Append one record line and flush; returns bytes written.

    Flushing per record is the crash-safety contract: a completed
    call means the record survives anything short of filesystem
    loss, and a crash mid-call costs only this record (the loader
    drops the truncated tail).
    """
    line = json.dumps(record, separators=(",", ":")) + "\n"
    handle.write(line)
    handle.flush()
    return len(line)


def rewrite_records(
    path: Union[str, Path], records: Iterable[dict]
) -> None:
    """Replace a phase file with exactly ``records``.

    Used on resume to truncate a corrupt tail before appending new
    records, so indexes stay contiguous on the next resume too.
    """
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(
                json.dumps(record, separators=(",", ":")) + "\n"
            )


def write_json(path: Union[str, Path], document: dict) -> None:
    """Write one JSON document (replacing atomically-enough via
    temp-and-rename, so readers never see a half-written file)."""
    path = Path(path)
    scratch = path.with_name(path.name + ".tmp")
    scratch.write_text(json.dumps(document, indent=1, sort_keys=True))
    scratch.replace(path)


def read_json(path: Union[str, Path]) -> Optional[dict]:
    """Load one JSON document; None when missing or unreadable."""
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return document if isinstance(document, dict) else None
