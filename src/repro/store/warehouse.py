"""The campaign warehouse: stores of keyed campaign snapshots.

:class:`CampaignStore` manages a warehouse root directory holding one
snapshot per campaign key; :class:`Snapshot` wraps a single snapshot
directory and owns its manifest, phase record files, and summary
documents.  Both are deliberately dumb about campaign semantics — the
checkpoint protocol lives in :mod:`repro.store.checkpoint` and the
analytics in :mod:`repro.store.diff`.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.store.layout import (
    PHASES,
    STORE_SCHEMA,
    append_record,
    read_json,
    read_phase_records,
    rewrite_records,
    snapshot_dirname,
    write_json,
)

__all__ = ["Snapshot", "CampaignStore"]


class Snapshot:
    """One snapshot directory in the warehouse.

    Handles are opened lazily and append-only; every record write is
    flushed (see :func:`repro.store.layout.append_record`).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handles: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Paths

    @property
    def manifest_path(self) -> Path:
        """``MANIFEST.json``: schema, key, and fingerprint."""
        return self.path / "MANIFEST.json"

    @property
    def phases_dir(self) -> Path:
        """Directory holding the per-phase record files."""
        return self.path / "phases"

    def phase_path(self, phase: str) -> Path:
        """``phases/<phase>.jsonl`` for a known phase name."""
        if phase not in PHASES:
            raise ValueError(f"unknown store phase {phase!r}")
        return self.phases_dir / f"{phase}.jsonl"

    @property
    def run_path(self) -> Path:
        """``run.json``: the latest run's status document."""
        return self.path / "run.json"

    @property
    def result_path(self) -> Path:
        """``result.json``: the diffable result summary."""
        return self.path / "result.json"

    # ------------------------------------------------------------------
    # Manifest

    def exists(self) -> bool:
        """True when the directory holds a snapshot manifest."""
        return self.manifest_path.is_file()

    def manifest(self) -> Optional[dict]:
        """The manifest document (None when absent/corrupt)."""
        return read_json(self.manifest_path)

    def initialise(self, key: str, fingerprint: dict) -> None:
        """Create the snapshot skeleton and write its manifest."""
        self.phases_dir.mkdir(parents=True, exist_ok=True)
        write_json(
            self.manifest_path,
            {
                "schema": STORE_SCHEMA,
                "key": key,
                "fingerprint": fingerprint,
                "created": time.time(),
            },
        )

    def has_records(self) -> bool:
        """True when any phase file holds at least one record."""
        return any(
            bool(self.records(phase)) for phase in PHASES
        )

    # ------------------------------------------------------------------
    # Records

    def records(self, phase: str) -> List[dict]:
        """The phase's valid record prefix (hardened loader)."""
        return read_phase_records(self.phase_path(phase))

    def append(self, phase: str, record: dict) -> int:
        """Append one record to a phase file; returns bytes written."""
        handle = self._handles.get(phase)
        if handle is None:
            self.phases_dir.mkdir(parents=True, exist_ok=True)
            handle = open(
                self.phase_path(phase), "a", encoding="utf-8"
            )
            self._handles[phase] = handle
        return append_record(handle, record)

    def truncate_to(self, phase: str, records: List[dict]) -> None:
        """Rewrite a phase file to exactly ``records`` (drops any
        corrupt tail so future appends keep indexes contiguous)."""
        self.phases_dir.mkdir(parents=True, exist_ok=True)
        rewrite_records(self.phase_path(phase), records)

    def close(self) -> None:
        """Close any open append handles."""
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()

    # ------------------------------------------------------------------
    # Summary documents

    def write_run_status(self, status: dict) -> None:
        """Record the latest run's outcome (complete or partial)."""
        write_json(self.run_path, dict(status, schema=STORE_SCHEMA))

    def run_status(self) -> Optional[dict]:
        """The latest run's status; None when never written."""
        return read_json(self.run_path)

    def write_result(self, document: dict) -> None:
        """Write the final result summary (diffing's preferred
        source; see :func:`repro.store.checkpoint.result_document`)."""
        write_json(
            self.result_path, dict(document, schema=STORE_SCHEMA)
        )

    def result(self) -> Optional[dict]:
        """The result summary; None when the run never finished."""
        return read_json(self.result_path)


class CampaignStore:
    """A warehouse root directory: one snapshot per campaign key."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def snapshot_for_key(self, key: str) -> Snapshot:
        """The snapshot directory this key maps to (may not exist)."""
        return Snapshot(self.root / snapshot_dirname(key))

    def snapshots(self) -> List[Snapshot]:
        """Every snapshot under the root, sorted by directory name."""
        if not self.root.is_dir():
            return []
        found = []
        for child in sorted(self.root.iterdir()):
            snapshot = Snapshot(child)
            if child.is_dir() and snapshot.exists():
                found.append(snapshot)
        return found
