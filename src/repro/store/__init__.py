"""``repro.store`` — the persistent campaign warehouse.

Campaigns so far were ephemeral: kill the process and every probe is
lost.  This package gives a campaign a durable home:

* :mod:`repro.store.layout` — versioned on-disk layout
  (``repro.store/1``), content-keyed snapshots, crash-tolerant JSONL
  record I/O;
* :mod:`repro.store.warehouse` — :class:`CampaignStore` /
  :class:`Snapshot`, the directory-level containers;
* :mod:`repro.store.checkpoint` — :class:`CampaignCheckpoint`, the
  phase/pair-granular checkpoint-resume protocol driven by
  :meth:`repro.campaign.orchestrator.Campaign.run` (resumed runs are
  bit-identical to uninterrupted ones, measurement counters
  included), plus :func:`result_document`;
* :mod:`repro.store.diff` — longitudinal diffing between snapshots
  (``repro diff``): tunnels appeared / disappeared / length-changed
  and per-AS deployment deltas;
* :mod:`repro.store.timeline` — the monitoring product
  (``repro monitor``): folds a chain of epoch snapshots into
  per-pair tunnel lifecycles (born/died/resized/technique-changed)
  with per-AS churn-rate rollups, schema ``repro.monitor/1``;
* :mod:`repro.store.fleet` — the fleet product (``repro fleet``):
  folds *many* chains into one cross-chain aggregate with per-AS
  churn baselines, churn-spike alerts and a fleet data-quality
  grade, schema ``repro.fleet/1``.

Layering: ``repro.store`` sits *above* the campaign layer (it imports
dataset serializers and is handed live campaign objects), while the
orchestrator only ever sees the checkpoint through duck typing — no
import cycle.
"""

from repro.store.checkpoint import (
    CampaignCheckpoint,
    StoreMismatch,
    result_document,
)
from repro.store.diff import (
    diff_snapshots,
    render_diff,
    resolve_snapshot,
    snapshot_tunnels,
)
from repro.store.fleet import fold_fleet, render_fleet
from repro.store.layout import (
    DIFF_SCHEMA,
    FLEET_SCHEMA,
    IDENTITY_EXCLUDED_FIELDS,
    IDENTITY_OMITTED_WHEN_NONE,
    MONITOR_SCHEMA,
    PHASES,
    RESUME_EXEMPT_COUNTERS,
    STORE_SCHEMA,
    campaign_key,
    config_fingerprint,
    snapshot_dirname,
)
from repro.store.timeline import (
    chain_snapshots,
    fold_timeline,
    render_timeline,
)
from repro.store.warehouse import CampaignStore, Snapshot

__all__ = [
    "STORE_SCHEMA",
    "DIFF_SCHEMA",
    "FLEET_SCHEMA",
    "MONITOR_SCHEMA",
    "PHASES",
    "IDENTITY_EXCLUDED_FIELDS",
    "IDENTITY_OMITTED_WHEN_NONE",
    "RESUME_EXEMPT_COUNTERS",
    "campaign_key",
    "config_fingerprint",
    "snapshot_dirname",
    "CampaignStore",
    "Snapshot",
    "CampaignCheckpoint",
    "StoreMismatch",
    "result_document",
    "chain_snapshots",
    "diff_snapshots",
    "fold_fleet",
    "fold_timeline",
    "render_diff",
    "render_fleet",
    "render_timeline",
    "resolve_snapshot",
    "snapshot_tunnels",
]
