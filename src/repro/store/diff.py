"""Longitudinal diffing between two campaign snapshots.

The paper's motivation for repeated campaigns is *churn*: MPLS
tunnels appear, disappear, and change length as operators reconfigure
LSPs.  :func:`diff_snapshots` compares two warehouse snapshots —
typically the same config over topologies captured at two points in
time — and reports that churn as a schema'd document
(``repro.store.diff/1``) plus per-AS deployment deltas.

Tunnels are keyed by their ``(ingress, egress)`` candidate pair: the
pair endpoints are what a longitudinal vantage point actually
re-observes, while the revealed interior may legitimately differ probe
to probe.  The preferred source is each snapshot's ``result.json``
summary; when a run never completed (no summary), the diff falls back
to reconstructing tunnels from the raw ``revelation.jsonl`` +
``pairs.jsonl`` records, so even two interrupted campaigns can be
compared.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.store.layout import DIFF_SCHEMA
from repro.store.warehouse import CampaignStore, Snapshot

__all__ = [
    "resolve_snapshot",
    "snapshot_tunnels",
    "diff_snapshots",
    "render_diff",
]


def resolve_snapshot(path: Union[str, Path]) -> Snapshot:
    """Interpret a CLI path argument as a snapshot.

    Accepts, in order of preference:

    * a snapshot directory itself;
    * ``<warehouse>/<key prefix>`` — any unambiguous prefix of a
      snapshot's directory name or full campaign key (so
      ``repro diff warehouse/7cc warehouse/94f`` works without
      typing the full 12-char dirnames);
    * a warehouse root holding exactly one snapshot (the common
      single-campaign checkpoint dir).

    Anything else raises ``ValueError`` with the candidates listed.
    """
    path = Path(path)
    snapshot = Snapshot(path)
    if snapshot.exists():
        return snapshot
    if not path.exists() and path.parent.exists():
        matched = _match_key_prefix(path.parent, path.name)
        if matched is not None:
            return matched
    snapshots = CampaignStore(path).snapshots()
    if len(snapshots) == 1:
        return snapshots[0]
    if not snapshots:
        raise ValueError(f"no campaign snapshot at {path}")
    names = ", ".join(
        snapshot.path.name for snapshot in snapshots
    )
    raise ValueError(
        f"{path} holds {len(snapshots)} snapshots ({names}); "
        "point at one of them directly or use a key prefix"
    )


def _match_key_prefix(
    root: Path, prefix: str
) -> Optional[Snapshot]:
    """The warehouse snapshot matching an unambiguous key prefix.

    A candidate matches when its directory name *or* its manifest's
    full campaign key starts with ``prefix``.  Returns None when
    nothing matches (the caller falls through to its own error);
    raises ``ValueError`` listing the candidates when the prefix is
    ambiguous.
    """
    if not prefix:
        return None
    matches = []
    for snapshot in CampaignStore(root).snapshots():
        key = str((snapshot.manifest() or {}).get("key") or "")
        if snapshot.path.name.startswith(prefix) or (
            key.startswith(prefix)
        ):
            matches.append(snapshot)
    if not matches:
        return None
    if len(matches) == 1:
        return matches[0]
    names = ", ".join(
        snapshot.path.name for snapshot in matches
    )
    raise ValueError(
        f"key prefix {prefix!r} is ambiguous in {root}: "
        f"matches {names}"
    )


def snapshot_tunnels(snapshot: Snapshot) -> List[dict]:
    """The snapshot's revealed tunnels (see module docstring for the
    result.json-with-records-fallback sourcing)."""
    result = snapshot.result()
    if result is not None and isinstance(result.get("tunnels"), list):
        return [
            tunnel
            for tunnel in result["tunnels"]
            if isinstance(tunnel, dict)
        ]
    asn_of_pair: Dict[Tuple[int, int], Optional[int]] = {}
    for record in snapshot.records("pairs"):
        asn_of_pair[(record["ingress"], record["egress"])] = (
            record.get("asn")
        )
    tunnels = []
    for record in snapshot.records("revelation"):
        revelation = record.get("revelation") or {}
        revealed = revelation.get("revealed") or []
        if not revealed:
            continue
        pair = (record["ingress"], record["egress"])
        tunnels.append(
            {
                "ingress": pair[0],
                "egress": pair[1],
                "asn": asn_of_pair.get(pair),
                "length": len(revealed),
                "method": revelation.get("method"),
                "revealed": list(revealed),
            }
        )
    return tunnels


def _snapshot_head(snapshot: Snapshot) -> dict:
    manifest = snapshot.manifest() or {}
    status = snapshot.run_status() or {}
    result = snapshot.result() or {}
    return {
        "path": str(snapshot.path),
        "key": manifest.get("key"),
        "partial": status.get("partial"),
        "from_result_summary": snapshot.result() is not None,
        #: The run's measurement trustworthiness (repro.quality/1) —
        #: a churn diff between a clean and a degraded campaign means
        #: something very different from one between two clean runs.
        "data_quality": result.get("data_quality"),
    }


def _per_as_rows(snapshot: Snapshot) -> Dict[int, dict]:
    result = snapshot.result() or {}
    rows = {}
    for row in result.get("per_as") or []:
        if isinstance(row, dict) and row.get("asn") is not None:
            rows[row["asn"]] = row
    return rows


def diff_snapshots(
    a: Union[str, Path, Snapshot],
    b: Union[str, Path, Snapshot],
) -> dict:
    """Compare two snapshots; returns a ``repro.store.diff/1`` doc."""
    snapshot_a = a if isinstance(a, Snapshot) else resolve_snapshot(a)
    snapshot_b = b if isinstance(b, Snapshot) else resolve_snapshot(b)
    tunnels_a = {
        (tunnel["ingress"], tunnel["egress"]): tunnel
        for tunnel in snapshot_tunnels(snapshot_a)
    }
    tunnels_b = {
        (tunnel["ingress"], tunnel["egress"]): tunnel
        for tunnel in snapshot_tunnels(snapshot_b)
    }
    appeared = [
        tunnels_b[pair]
        for pair in sorted(set(tunnels_b) - set(tunnels_a))
    ]
    disappeared = [
        tunnels_a[pair]
        for pair in sorted(set(tunnels_a) - set(tunnels_b))
    ]
    length_changed = []
    unchanged = 0
    for pair in sorted(set(tunnels_a) & set(tunnels_b)):
        before, after = tunnels_a[pair], tunnels_b[pair]
        if before.get("length") != after.get("length"):
            length_changed.append(
                {
                    "ingress": pair[0],
                    "egress": pair[1],
                    "asn": after.get("asn", before.get("asn")),
                    "length_a": before.get("length"),
                    "length_b": after.get("length"),
                }
            )
        else:
            unchanged += 1
    rows_a = _per_as_rows(snapshot_a)
    rows_b = _per_as_rows(snapshot_b)
    per_as = []
    for asn in sorted(set(rows_a) | set(rows_b)):
        row_a, row_b = rows_a.get(asn, {}), rows_b.get(asn, {})
        revealed_a = row_a.get("revealed_pairs") or 0
        revealed_b = row_b.get("revealed_pairs") or 0
        lsr_a = row_a.get("lsr_ips") or 0
        lsr_b = row_b.get("lsr_ips") or 0
        if not (revealed_a or revealed_b or lsr_a or lsr_b):
            continue
        per_as.append(
            {
                "asn": asn,
                "name": row_b.get("name") or row_a.get("name"),
                "revealed_pairs_a": revealed_a,
                "revealed_pairs_b": revealed_b,
                "revealed_pairs_delta": revealed_b - revealed_a,
                "lsr_ips_a": lsr_a,
                "lsr_ips_b": lsr_b,
                "lsr_ips_delta": lsr_b - lsr_a,
            }
        )
    return {
        "schema": DIFF_SCHEMA,
        "a": _snapshot_head(snapshot_a),
        "b": _snapshot_head(snapshot_b),
        "summary": {
            "appeared": len(appeared),
            "disappeared": len(disappeared),
            "length_changed": len(length_changed),
            "unchanged": unchanged,
        },
        "tunnels": {
            "appeared": appeared,
            "disappeared": disappeared,
            "length_changed": length_changed,
            "unchanged": unchanged,
        },
        "per_as": per_as,
    }


def render_diff(document: dict) -> str:
    """Human-readable rendering of a diff document (CLI output)."""
    summary = document["summary"]
    lines = [
        "Tunnel churn "
        f"({document['a']['path']} -> {document['b']['path']}):",
        f"  appeared:       {summary['appeared']}",
        f"  disappeared:    {summary['disappeared']}",
        f"  length changed: {summary['length_changed']}",
        f"  unchanged:      {summary['unchanged']}",
    ]
    qualities = []
    for side in ("a", "b"):
        quality = document[side].get("data_quality") or {}
        if quality.get("grade"):
            qualities.append(
                f"{side}={quality['grade']}"
                f" ({quality.get('confidence')})"
            )
    if qualities:
        lines.append("  data quality:   " + ", ".join(qualities))
    for label, key in (
        ("+", "appeared"), ("-", "disappeared"),
    ):
        for tunnel in document["tunnels"][key]:
            asn = tunnel.get("asn")
            lines.append(
                f"  {label} {tunnel['ingress']}->{tunnel['egress']}"
                f" (AS{asn if asn is not None else '?'},"
                f" len {tunnel.get('length')})"
            )
    for change in document["tunnels"]["length_changed"]:
        asn = change.get("asn")
        lines.append(
            f"  ~ {change['ingress']}->{change['egress']}"
            f" (AS{asn if asn is not None else '?'},"
            f" len {change['length_a']} -> {change['length_b']})"
        )
    if document["per_as"]:
        lines.append("Per-AS deltas (revealed pairs / LSR IPs):")
        for row in document["per_as"]:
            name = row.get("name") or "?"
            lines.append(
                f"  AS{row['asn']:<6} {name:<24}"
                f" revealed {row['revealed_pairs_a']} ->"
                f" {row['revealed_pairs_b']}"
                f" ({row['revealed_pairs_delta']:+d}),"
                f" lsr_ips {row['lsr_ips_a']} ->"
                f" {row['lsr_ips_b']}"
                f" ({row['lsr_ips_delta']:+d})"
            )
    return "\n".join(lines)
