"""The timeline layer: fold chained snapshots into tunnel lifecycles.

A monitoring chain leaves N content-keyed snapshots in one warehouse,
each stamped (in its manifest's topology fingerprint) with the chain
id and epoch number by :class:`repro.monitor.loop.MonitorLoop`.  This
module folds them into the longitudinal product the paper's repeated
campaigns exist for — per-pair tunnel *lifecycles*:

* **born** — the pair's tunnel is revealed in an epoch after being
  absent (pairs present in the chain's first epoch are the baseline,
  not births);
* **died** — present in the previous epoch, absent now;
* **resized** — revealed LSR count changed between epochs (the
  paper's LSP-content churn signal);
* **technique-changed** — the revelation method/technique changed
  (e.g. DPR-only to BRPR after an LDP policy flip).

The folded document (schema ``repro.monitor/1``) also carries per-AS
churn-rate rollups and each epoch's probe accounting, and is
deliberately free of absolute paths and wall-clock timestamps: the
same seed, churn profile and epoch count must fold to a byte-identical
document wherever and whenever it runs (pinned by test).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.store.layout import MONITOR_SCHEMA, read_json
from repro.store.warehouse import CampaignStore, Snapshot

__all__ = [
    "MONITOR_SCHEMA",
    "chain_snapshots",
    "fold_timeline",
    "render_timeline",
]


def _monitor_stamp(snapshot: Snapshot) -> Optional[dict]:
    """The manifest's ``monitor`` topology stamp (None when absent)."""
    manifest = snapshot.manifest() or {}
    fingerprint = manifest.get("fingerprint") or {}
    topology = fingerprint.get("topology") or {}
    stamp = topology.get("monitor")
    return stamp if isinstance(stamp, dict) else None


def chain_snapshots(
    root: Union[str, Path, CampaignStore],
    chain: Optional[str] = None,
) -> Dict[str, List[Snapshot]]:
    """Group a warehouse's monitor snapshots by chain id.

    Returns ``chain id -> snapshots sorted by epoch``; standalone
    (non-monitor) snapshots are ignored.  With ``chain`` given, only
    that chain is returned (ValueError when the warehouse has none).
    """
    store = (
        root if isinstance(root, CampaignStore) else CampaignStore(root)
    )
    chains: Dict[str, List[Tuple[int, Snapshot]]] = {}
    for snapshot in store.snapshots():
        stamp = _monitor_stamp(snapshot)
        if stamp is None:
            continue
        chain_id = str(stamp.get("chain"))
        epoch = int(stamp.get("epoch") or 0)
        chains.setdefault(chain_id, []).append((epoch, snapshot))
    ordered = {
        chain_id: [
            snapshot for _, snapshot in sorted(
                members, key=lambda item: item[0]
            )
        ]
        for chain_id, members in sorted(chains.items())
    }
    if chain is None:
        return ordered
    if chain not in ordered:
        known = ", ".join(sorted(ordered)) or "none"
        raise ValueError(
            f"no monitor chain {chain!r} in warehouse "
            f"(chains present: {known})"
        )
    return {chain: ordered[chain]}


def _epoch_head(snapshot: Snapshot) -> dict:
    """One epoch's summary row for the timeline document."""
    stamp = _monitor_stamp(snapshot) or {}
    status = snapshot.run_status() or {}
    result = snapshot.result() or {}
    sidecar = read_json(snapshot.path / "monitor.json") or {}
    return {
        "epoch": int(stamp.get("epoch") or 0),
        "key": (snapshot.manifest() or {}).get("key"),
        "snapshot_dir": snapshot.path.name,
        "partial": bool(status.get("partial")),
        "pairs": status.get("pairs"),
        "tunnels": len(result.get("tunnels") or []),
        # campaign spend incl. revelation probes (run.json splits the
        # two; the sidecar records the prober delta).
        "probes_sent": sidecar.get(
            "campaign_probes",
            (status.get("probes_sent") or 0)
            + (status.get("revelation_probes") or 0),
        ),
        "pairs_carried": sidecar.get("pairs_carried", 0),
        "pairs_stale": sidecar.get("pairs_stale", 0),
        "evidence_probes": sidecar.get("evidence_probes", 0),
        "churn_events": sidecar.get("churn_events") or [],
    }


def _tunnel_inventories(
    snapshots: Sequence[Snapshot],
) -> List[Dict[Tuple[int, int], dict]]:
    """Per-epoch tunnel maps keyed by ``(ingress, egress)``."""
    from repro.store.diff import snapshot_tunnels

    inventories = []
    for snapshot in snapshots:
        inventories.append(
            {
                (tunnel["ingress"], tunnel["egress"]): tunnel
                for tunnel in snapshot_tunnels(snapshot)
            }
        )
    return inventories


def fold_timeline(snapshots: Sequence[Snapshot]) -> dict:
    """Fold one chain's ordered snapshots into a timeline document.

    The input must be a single chain's snapshots in epoch order (as
    returned by :func:`chain_snapshots`).  The document is schema
    ``repro.monitor/1`` and deterministic for a deterministic chain
    (no paths, no timestamps).
    """
    if not snapshots:
        raise ValueError("cannot fold an empty snapshot chain")
    stamp = _monitor_stamp(snapshots[0]) or {}
    heads = [_epoch_head(snapshot) for snapshot in snapshots]
    epochs = [head["epoch"] for head in heads]
    inventories = _tunnel_inventories(snapshots)
    all_pairs = sorted(
        {pair for inventory in inventories for pair in inventory}
    )
    pairs: List[dict] = []
    events_by_as: Dict[int, Dict[str, int]] = {}
    totals = {
        "born": 0, "died": 0, "resized": 0, "technique_changed": 0
    }

    def _bump(asn: Optional[int], kind: str) -> None:
        if asn is None:
            return
        row = events_by_as.setdefault(
            int(asn),
            {"born": 0, "died": 0, "resized": 0,
             "technique_changed": 0},
        )
        row[kind] += 1
        totals[kind] += 1

    for pair in all_pairs:
        lifecycle: List[dict] = []
        present = [pair in inventory for inventory in inventories]
        asn = None
        for inventory in inventories:
            if pair in inventory:
                asn = inventory[pair].get("asn")
                break
        for position in range(1, len(inventories)):
            epoch = epochs[position]
            before = inventories[position - 1].get(pair)
            after = inventories[position].get(pair)
            if before is None and after is not None:
                lifecycle.append(
                    {
                        "epoch": epoch,
                        "event": "born",
                        "length": after.get("length"),
                    }
                )
                _bump(asn, "born")
            elif before is not None and after is None:
                lifecycle.append(
                    {
                        "epoch": epoch,
                        "event": "died",
                        "length": before.get("length"),
                    }
                )
                _bump(asn, "died")
            elif before is not None and after is not None:
                if before.get("length") != after.get("length"):
                    lifecycle.append(
                        {
                            "epoch": epoch,
                            "event": "resized",
                            "from": before.get("length"),
                            "to": after.get("length"),
                        }
                    )
                    _bump(asn, "resized")
                before_sig = (
                    before.get("method"),
                    before.get("technique"),
                )
                after_sig = (
                    after.get("method"),
                    after.get("technique"),
                )
                if before_sig != after_sig:
                    lifecycle.append(
                        {
                            "epoch": epoch,
                            "event": "technique-changed",
                            "from": list(before_sig),
                            "to": list(after_sig),
                        }
                    )
                    _bump(asn, "technique_changed")
        pairs.append(
            {
                "ingress": pair[0],
                "egress": pair[1],
                "asn": asn,
                "epochs_present": [
                    epochs[position]
                    for position, here in enumerate(present)
                    if here
                ],
                "events": lifecycle,
            }
        )

    spans = max(1, len(inventories) - 1)
    per_as = []
    pairs_by_as: Dict[int, int] = {}
    for entry in pairs:
        if entry["asn"] is not None:
            asn = int(entry["asn"])
            pairs_by_as[asn] = pairs_by_as.get(asn, 0) + 1
    for asn in sorted(set(events_by_as) | set(pairs_by_as)):
        row = events_by_as.get(
            asn,
            {"born": 0, "died": 0, "resized": 0,
             "technique_changed": 0},
        )
        events = sum(row.values())
        per_as.append(
            {
                "asn": asn,
                "pairs_seen": pairs_by_as.get(asn, 0),
                "born": row["born"],
                "died": row["died"],
                "resized": row["resized"],
                "technique_changed": row["technique_changed"],
                "lifecycle_events": events,
                #: lifecycle events per epoch transition — the
                #: chain's per-AS churn rate.
                "churn_rate": round(events / spans, 4),
            }
        )

    stable = sum(
        1
        for entry in pairs
        if not entry["events"]
        and len(entry["epochs_present"]) == len(inventories)
    )
    return {
        "schema": MONITOR_SCHEMA,
        "kind": "timeline",
        "chain": {
            "id": stamp.get("chain"),
            "churn_profile": stamp.get("churn_profile"),
            "epochs": len(snapshots),
        },
        "epochs": heads,
        "pairs": pairs,
        "per_as": per_as,
        "summary": {
            "pairs_tracked": len(pairs),
            "stable_pairs": stable,
            "born": totals["born"],
            "died": totals["died"],
            "resized": totals["resized"],
            "technique_changed": totals["technique_changed"],
        },
    }


def render_timeline(document: dict) -> str:
    """Human-readable rendering of a ``repro.monitor/1`` document."""
    chain = document.get("chain") or {}
    summary = document.get("summary") or {}
    lines = [
        f"monitor chain {chain.get('id')} — "
        f"{chain.get('epochs')} epochs, "
        f"churn profile {chain.get('churn_profile')!r}",
        "",
        "epoch  tunnels  pairs  carried  stale  probes  churn",
    ]
    for head in document.get("epochs") or []:
        lines.append(
            f"{head.get('epoch'):>5}"
            f"  {head.get('tunnels') or 0:>7}"
            f"  {head.get('pairs') or 0:>5}"
            f"  {head.get('pairs_carried') or 0:>7}"
            f"  {head.get('pairs_stale') or 0:>5}"
            f"  {head.get('probes_sent') or 0:>6}"
            f"  {len(head.get('churn_events') or []):>5}"
        )
    lines.append("")
    lines.append(
        f"pairs tracked: {summary.get('pairs_tracked', 0)} "
        f"(stable {summary.get('stable_pairs', 0)}) — "
        f"born {summary.get('born', 0)}, "
        f"died {summary.get('died', 0)}, "
        f"resized {summary.get('resized', 0)}, "
        f"technique-changed {summary.get('technique_changed', 0)}"
    )
    eventful = [
        entry
        for entry in document.get("pairs") or []
        if entry.get("events")
    ]
    if eventful:
        lines.append("")
        lines.append("lifecycles:")
        for entry in eventful:
            history = "; ".join(
                f"e{event['epoch']} {event['event']}"
                + (
                    f" {event.get('from')}->{event.get('to')}"
                    if event["event"] == "resized"
                    else ""
                )
                for event in entry["events"]
            )
            lines.append(
                f"  {entry['ingress']}->{entry['egress']} "
                f"(AS{entry.get('asn')}): {history}"
            )
    per_as = document.get("per_as") or []
    if per_as:
        lines.append("")
        lines.append("per-AS churn rate (lifecycle events / epoch):")
        for row in per_as:
            lines.append(
                f"  AS{row['asn']}: {row['churn_rate']:.2f} "
                f"({row['lifecycle_events']} events over "
                f"{row['pairs_seen']} pairs)"
            )
    return "\n".join(lines)
