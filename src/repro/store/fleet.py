"""The fleet layer: fold many monitor chains into one document.

A monitoring fleet (:mod:`repro.fleet`) leaves N chains of epoch
snapshots in one warehouse.  This module folds them into the
cross-chain aggregate a deployment would actually watch — schema
``repro.fleet/1``:

* **per-chain rows** — each chain's completed-epoch prefix folded
  through :func:`repro.store.timeline.fold_timeline` (lifecycle
  summary, per-AS churn rates, per-transition event counts);
* **per-AS churn baselines** — each AS's churn rate across every
  chain that observed it (mean/min/max), the cross-chain norm an
  operator compares a single chain against;
* **alert records** — deterministic, seeded-reproducible records
  emitted when a chain's lifecycle-event count in one epoch
  transition jumps past ``alert_factor`` × its own trailing baseline
  (the churn-rate spike a deployment would page on);
* **data quality** — the fleet grade from
  :func:`repro.campaign.degrade.assess_fleet_quality`: a parked or
  drained chain (incomplete epoch coverage) *degrades* the fleet
  grade instead of failing the fleet.

The fold is a pure function of warehouse content — no paths, no
timestamps, no execution history (restarts, backoff, kills live in
the supervisor's :class:`~repro.fleet.FleetReport`, not here) — so a
fleet run that crashed and recovered folds to a document
byte-identical to an unfailed run's (pinned by test).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.campaign.degrade import assess_fleet_quality
from repro.store.layout import FLEET_SCHEMA
from repro.store.timeline import chain_snapshots, fold_timeline
from repro.store.warehouse import CampaignStore, Snapshot

__all__ = [
    "FLEET_SCHEMA",
    "fold_fleet",
    "render_fleet",
]

_EMPTY_SUMMARY = {
    "pairs_tracked": 0,
    "stable_pairs": 0,
    "born": 0,
    "died": 0,
    "resized": 0,
    "technique_changed": 0,
}


def _completed(snapshot: Snapshot) -> bool:
    """Did this epoch snapshot run to completion?

    Same criterion the monitor loop uses to skip an epoch on resume:
    a completed run status *and* a written ``result.json`` (a crash
    between the two leaves a resumable, not-yet-complete epoch).
    """
    status = snapshot.run_status() or {}
    return bool(status.get("completed")) and (
        snapshot.result() is not None
    )


def _transition_events(timeline: dict) -> List[dict]:
    """Per-transition lifecycle-event totals and per-AS splits.

    Returns one row per epoch *transition* (every epoch after the
    first), in chain order: ``{"epoch", "events", "by_as"}``.
    """
    by_epoch: Dict[int, Dict[str, object]] = {}
    for pair in timeline.get("pairs") or []:
        asn = pair.get("asn")
        for event in pair.get("events") or []:
            epoch = int(event["epoch"])
            row = by_epoch.setdefault(
                epoch, {"events": 0, "by_as": {}}
            )
            row["events"] += 1
            if asn is not None:
                by_as = row["by_as"]
                by_as[int(asn)] = by_as.get(int(asn), 0) + 1
    transitions = [
        int(head["epoch"])
        for head in (timeline.get("epochs") or [])[1:]
    ]
    return [
        {
            "epoch": epoch,
            "events": by_epoch.get(epoch, {}).get("events", 0),
            "by_as": by_epoch.get(epoch, {}).get("by_as", {}),
        }
        for epoch in transitions
    ]


def _chain_alerts(
    chain: str,
    transitions: Sequence[dict],
    alert_factor: float,
    alert_min_events: int,
) -> List[dict]:
    """Deterministic churn-spike alerts for one chain.

    A transition alerts when its lifecycle-event count reaches
    ``alert_min_events`` *and* exceeds ``alert_factor`` times the mean
    of every earlier transition (the chain's own trailing baseline).
    The first transition has no baseline and never alerts — a fleet
    needs history before it can call something a spike.
    """
    alerts: List[dict] = []
    seen: List[int] = []
    for row in transitions:
        count = int(row["events"])
        if seen:
            baseline = sum(seen) / len(seen)
            if (
                count >= alert_min_events
                and count > alert_factor * baseline
            ):
                by_as = row.get("by_as") or {}
                top = sorted(
                    by_as.items(),
                    key=lambda item: (-item[1], item[0]),
                )[:3]
                alerts.append(
                    {
                        "kind": "churn-spike",
                        "chain": chain,
                        "epoch": int(row["epoch"]),
                        "events": count,
                        "baseline": round(baseline, 4),
                        "ratio": (
                            round(count / baseline, 4)
                            if baseline
                            else None
                        ),
                        "ases": [
                            {"asn": asn, "events": events}
                            for asn, events in top
                        ],
                    }
                )
        seen.append(count)
    return alerts


def fold_fleet(
    root: Union[str, Path, CampaignStore],
    chains: Optional[Sequence[str]] = None,
    expected_epochs: Optional[int] = None,
    alert_factor: float = 2.0,
    alert_min_events: int = 2,
) -> dict:
    """Fold a warehouse's monitor chains into a fleet document.

    ``chains`` restricts (and completes) the fold: ids not present in
    the warehouse still get a row with zero completed epochs, which
    is how a chain parked before its first epoch shows up — and drags
    the fleet grade down — instead of vanishing.  ``expected_epochs``
    sets per-chain coverage for the quality grade; when None each
    chain is graded only on having produced *something*.

    Only each chain's completed-epoch prefix is folded (a crashed
    epoch's partial snapshot holds no merged inventory yet), so the
    document is a pure function of completed warehouse content:
    crash-recovered and unfailed fleet runs fold byte-identically.
    """
    grouped = chain_snapshots(root)
    ids = sorted(set(chains) if chains is not None else grouped)
    chain_rows: List[dict] = []
    alerts: List[dict] = []
    rates: Dict[int, List[float]] = {}
    for chain in ids:
        members = [
            snapshot
            for snapshot in grouped.get(chain, [])
            if _completed(snapshot)
        ]
        timeline = fold_timeline(members) if members else None
        transitions = (
            _transition_events(timeline) if timeline else []
        )
        alerts.extend(
            _chain_alerts(
                chain, transitions, alert_factor, alert_min_events
            )
        )
        per_as = list(timeline["per_as"]) if timeline else []
        for as_row in per_as:
            rates.setdefault(int(as_row["asn"]), []).append(
                float(as_row["churn_rate"])
            )
        completed = len(members)
        chain_rows.append(
            {
                "chain": chain,
                "churn_profile": (
                    timeline["chain"]["churn_profile"]
                    if timeline
                    else None
                ),
                "epochs_completed": completed,
                "epochs_expected": expected_epochs,
                "complete": (
                    completed >= expected_epochs
                    if expected_epochs is not None
                    else completed > 0
                ),
                "epoch_events": [
                    {
                        "epoch": row["epoch"],
                        "events": row["events"],
                    }
                    for row in transitions
                ],
                "summary": (
                    dict(timeline["summary"])
                    if timeline
                    else dict(_EMPTY_SUMMARY)
                ),
                "per_as": per_as,
            }
        )
    per_as_baseline = [
        {
            "asn": asn,
            "chains": len(observed),
            "mean_rate": round(
                sum(observed) / len(observed), 4
            ),
            "min_rate": round(min(observed), 4),
            "max_rate": round(max(observed), 4),
        }
        for asn, observed in sorted(rates.items())
    ]
    quality = assess_fleet_quality(
        chain_rows, expected_epochs=expected_epochs
    )
    return {
        "schema": FLEET_SCHEMA,
        "kind": "fleet",
        "chains": chain_rows,
        "per_as_baseline": per_as_baseline,
        "alerts": alerts,
        "data_quality": quality,
        "summary": {
            "chains": len(chain_rows),
            "complete_chains": sum(
                1 for row in chain_rows if row["complete"]
            ),
            "epochs_completed": sum(
                row["epochs_completed"] for row in chain_rows
            ),
            "pairs_tracked": sum(
                row["summary"]["pairs_tracked"]
                for row in chain_rows
            ),
            "lifecycle_events": sum(
                row["summary"]["born"]
                + row["summary"]["died"]
                + row["summary"]["resized"]
                + row["summary"]["technique_changed"]
                for row in chain_rows
            ),
            "alerts": len(alerts),
            "grade": quality["grade"],
        },
    }


def render_fleet(document: dict) -> str:
    """Human-readable rendering of a ``repro.fleet/1`` document."""
    summary = document.get("summary") or {}
    quality = document.get("data_quality") or {}
    lines = [
        f"fleet — {summary.get('chains', 0)} chains, "
        f"{summary.get('epochs_completed', 0)} epochs folded, "
        f"grade {summary.get('grade')!r} "
        f"(confidence {quality.get('confidence')})",
        "",
        "chain         epochs  pairs  events  profile      grade",
    ]
    per_chain = quality.get("chains") or {}
    for row in document.get("chains") or []:
        chain = str(row.get("chain"))
        chain_summary = row.get("summary") or {}
        events = (
            chain_summary.get("born", 0)
            + chain_summary.get("died", 0)
            + chain_summary.get("resized", 0)
            + chain_summary.get("technique_changed", 0)
        )
        expected = row.get("epochs_expected")
        epochs = (
            f"{row.get('epochs_completed', 0)}/{expected}"
            if expected is not None
            else str(row.get("epochs_completed", 0))
        )
        grade = (per_chain.get(chain) or {}).get("grade", "?")
        lines.append(
            f"{chain:<12}  {epochs:>6}"
            f"  {chain_summary.get('pairs_tracked', 0):>5}"
            f"  {events:>6}"
            f"  {str(row.get('churn_profile')):<11}"
            f"  {grade}"
        )
    incomplete = quality.get("incomplete") or []
    if incomplete:
        lines.append("")
        lines.append(
            "incomplete chains (degrading the fleet grade): "
            + ", ".join(incomplete)
        )
    alerts = document.get("alerts") or []
    lines.append("")
    if alerts:
        lines.append(f"alerts ({len(alerts)}):")
        for alert in alerts:
            ases = ", ".join(
                f"AS{entry['asn']}({entry['events']})"
                for entry in alert.get("ases") or []
            )
            ratio = alert.get("ratio")
            lines.append(
                f"  [churn-spike] chain {alert['chain']} epoch "
                f"{alert['epoch']}: {alert['events']} lifecycle "
                f"events vs baseline {alert['baseline']}"
                + (f" ({ratio}x)" if ratio is not None else "")
                + (f" — {ases}" if ases else "")
            )
    else:
        lines.append("alerts: none")
    baseline = document.get("per_as_baseline") or []
    if baseline:
        lines.append("")
        lines.append("per-AS churn baselines (events/transition):")
        for row in baseline:
            lines.append(
                f"  AS{row['asn']}: mean {row['mean_rate']:.2f} "
                f"(min {row['min_rate']:.2f}, max "
                f"{row['max_rate']:.2f}) over {row['chains']} "
                "chain(s)"
            )
    return "\n".join(lines)
