"""Checkpoint/resume protocol over a campaign snapshot.

:class:`CampaignCheckpoint` is the handle the orchestrator drives
(``Campaign.run(..., checkpoint=...)``).  The contract that makes a
resumed run **bit-identical** to an uninterrupted one:

* every completed unit of work — one traceroute, one fingerprint
  ping, one pair's revelation (with its follow-up pings) — is
  appended to the snapshot as one flushed record *with* the state a
  resume needs: the measurement service's budget accounting, the
  response-cache entries added since the previous record, and the
  cumulative measurement-counter snapshot;
* on resume, the surviving record prefix is replayed through the
  same observation calls the live code path uses (analyzer intake
  included), while the service state, response cache, and
  measurement counters are restored from the records — so the
  remaining live work sees exactly the world the interrupted run
  left, and the finished result (revelations, per-AS aggregates,
  measurement counters) matches an uninterrupted run bit for bit;
* counters in :data:`~repro.store.layout.RESUME_EXEMPT_COUNTERS`
  (run-lifecycle counts like ``campaign.partial_runs``) are *not*
  restored — an uninterrupted run never accumulates them.

Records carry a global ``seq`` so a resume can detect a corrupt
earlier-phase tail even when later phases still parse: validation
accepts the longest pipeline-ordered prefix with contiguous
sequence numbers and truncates everything after the first gap.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs import Obs, measurement_counters
from repro.probing.dataset import (
    pings_from_dicts,
    pings_to_dicts,
    revelations_from_dicts,
    revelations_to_dicts,
    traces_from_dicts,
    traces_to_dicts,
)
from repro.store.layout import (
    PHASES,
    RESUME_EXEMPT_COUNTERS,
    STORE_SCHEMA,
    campaign_key,
)
from repro.store.warehouse import CampaignStore, Snapshot

__all__ = ["StoreMismatch", "CampaignCheckpoint", "result_document"]


class StoreMismatch(ValueError):
    """The snapshot does not belong to this campaign (different
    topology seed, config, or target set — the content key differs),
    or its records contradict the campaign being resumed."""


def _ping_to_dict(ping) -> dict:
    return pings_to_dicts({ping.dst: ping})[0]


def _ping_from_dict(data: dict):
    return pings_from_dicts([data])[data["dst"]]


class CampaignCheckpoint:
    """Phase/pair-granular persistence for one campaign run.

    Parameters
    ----------
    root:
        Warehouse root directory; the snapshot lives under it at a
        directory derived from the campaign's content key.
    topology:
        JSON-ready descriptor of how the measured network is built
        (seed, scale, vantage points, ...) — part of the content key,
        since the same config over a different topology is a
        different campaign.
    resume:
        False (default) starts a fresh snapshot and refuses to touch
        one that already holds records; True requires an existing
        snapshot and restores its surviving record prefix.
    """

    def __init__(
        self,
        root: Union[str, "CampaignStore"],
        topology: Optional[Dict[str, object]] = None,
        resume: bool = False,
    ) -> None:
        self.store = (
            root if isinstance(root, CampaignStore)
            else CampaignStore(root)
        )
        self.topology = dict(topology or {})
        self.resume = resume
        self.snapshot: Optional[Snapshot] = None
        self.key: Optional[str] = None
        self._campaign = None
        self._result = None
        self._obs: Obs = Obs()
        self._restored: Dict[str, List[dict]] = {
            phase: [] for phase in PHASES
        }
        #: Records present per phase (restored + written this run);
        #: the ``seq`` chain and the pairs rewrite base derive from
        #: these, never from the restored counts alone.
        self._counts: Dict[str, int] = {
            phase: 0 for phase in PHASES
        }
        self._seq = 0
        self._cache_known: frozenset = frozenset()
        self._labels_known = 0
        self._quarantine_known = 0

    # ------------------------------------------------------------------
    # Lifecycle (driven by Campaign.run)

    def begin(self, campaign, destinations, result) -> None:
        """Bind to a campaign run: open/validate the snapshot and,
        when resuming, restore service state, response cache, and
        measurement counters from the surviving records."""
        if campaign.service is None:
            raise ValueError(
                "checkpointing needs a prober with a ProbeService"
            )
        self._campaign = campaign
        self._result = result
        self._obs = campaign.obs
        allocator = self._allocator()
        if allocator is not None:
            self._labels_known = len(allocator)
        identity = campaign_key(
            self.topology, campaign.config, destinations
        )
        self.key = identity["key"]
        self.snapshot = self.store.snapshot_for_key(self.key)
        metrics = self._obs.metrics
        if self.resume:
            self._open_existing(identity)
            with self._obs.tracer.span(
                "store.restore", snapshot=str(self.snapshot.path)
            ):
                self._restore_state()
            metrics.inc("store.resumes")
            if self._obs.events.info:
                self._obs.events.emit(
                    "store.resume",
                    snapshot=str(self.snapshot.path),
                    **{
                        phase: len(records)
                        for phase, records in self._restored.items()
                    },
                )
        else:
            self._open_fresh(identity)
            metrics.inc("store.snapshots.created")
            if self._obs.events.info:
                self._obs.events.emit(
                    "store.checkpoint",
                    snapshot=str(self.snapshot.path),
                )
        result.checkpoint_dir = str(self.snapshot.path)

    def finish(self, result) -> None:
        """Record the run's outcome and release file handles."""
        if self.snapshot is None:
            return
        self.snapshot.write_run_status(
            {
                "completed": not result.partial,
                "partial": result.partial,
                "stop_reason": result.stop_reason,
                "traces": len(result.traces),
                "pings": len(result.pings),
                "pairs": len(result.pairs),
                "revelations": len(result.revelations),
                "probes_sent": result.probes_sent,
                "revelation_probes": result.revelation_probes,
                "quarantined": len(
                    getattr(result, "quarantine", [])
                ),
                "data_quality": (
                    getattr(result, "data_quality", {}) or {}
                ).get("grade"),
                "updated": time.time(),
            }
        )
        self.snapshot.close()

    # ------------------------------------------------------------------
    # Restored-record access (phase loops replay these first)

    def restored_count(self, phase: str) -> int:
        """Records available to replay for ``phase``."""
        return len(self._restored[phase])

    def restored_trace(self, index: int):
        """The restored trace at ``index`` (phase-order prefix)."""
        record = self._restored["trace"][index]
        return traces_from_dicts([record["trace"]])[0]

    def restored_ping(self, index: int) -> Tuple[str, int, object]:
        """The restored ping observation: ``(vp, address, result)``."""
        record = self._restored["ping"][index]
        return (
            record["vp"],
            record["address"],
            _ping_from_dict(record["ping"]),
        )

    def restored_revelation(self, index: int):
        """The restored pair outcome at ``index``.

        Returns ``(ingress, egress, revelation, follow_up_pings)``
        where the pings are the ``(address, PingResult)`` probes the
        original run issued for newly revealed routers.
        """
        record = self._restored["revelation"][index]
        revelation = revelations_from_dicts([record["revelation"]])[
            (record["ingress"], record["egress"])
        ]
        pings = [
            (entry["address"], _ping_from_dict(entry["ping"]))
            for entry in record["pings"]
        ]
        return record["ingress"], record["egress"], revelation, pings

    # ------------------------------------------------------------------
    # Record writers (phase loops call these after each live unit)

    def record_trace(self, index: int, trace) -> None:
        """Persist one completed traceroute (plus state delta)."""
        self._append(
            "trace",
            {
                "seq": self._seq,
                "index": index,
                "trace": traces_to_dicts([trace])[0],
                "state": self._state_block(),
            },
        )

    def record_ping(
        self, index: int, vp: str, address: int, ping
    ) -> None:
        """Persist one completed ping (plus state delta)."""
        self._append(
            "ping",
            {
                "seq": self._seq,
                "index": index,
                "vp": vp,
                "address": address,
                "ping": _ping_to_dict(ping),
                "state": self._state_block(),
            },
        )

    def record_pairs(self, result) -> None:
        """Persist the extracted candidate pairs (whole phase at once).

        Extraction is pure computation over the traces, so the phase
        is always recomputed on resume; the records exist for the
        warehouse (inspection, diffing) and are rewritten in place —
        deterministic extraction makes the rewrite byte-identical.
        """
        base = self._counts["trace"] + self._counts["ping"]
        trace_index = {
            id(trace): position
            for position, trace in enumerate(result.traces)
        }
        records = []
        for index, pair in enumerate(result.pairs):
            records.append(
                {
                    "seq": base + index,
                    "index": index,
                    "vp": pair.vp,
                    "ingress": pair.ingress,
                    "egress": pair.egress,
                    "asn": pair.asn,
                    "trace_index": trace_index.get(id(pair.trace)),
                    "state": self._state_block(),
                }
            )
        self.snapshot.truncate_to("pairs", records)
        self._restored["pairs"] = records
        self._counts["pairs"] = len(records)
        self._seq = (
            base + len(records) + self._counts["revelation"]
        )
        self._obs.metrics.inc("store.records", len(records))

    def record_revelation(
        self,
        index: int,
        revelation,
        pings: Sequence[Tuple[int, object]],
    ) -> None:
        """Persist one revelation attempt with its follow-up pings."""
        key = (revelation.ingress, revelation.egress)
        self._append(
            "revelation",
            {
                "seq": self._seq,
                "index": index,
                "ingress": revelation.ingress,
                "egress": revelation.egress,
                "revelation": revelations_to_dicts(
                    {key: revelation}
                )[0],
                "pings": [
                    {
                        "address": address,
                        "ping": _ping_to_dict(ping),
                    }
                    for address, ping in pings
                ],
                "state": self._state_block(),
            },
        )

    # ------------------------------------------------------------------
    # Internals

    def _open_fresh(self, identity: dict) -> None:
        if self.snapshot.exists() and self.snapshot.has_records():
            raise StoreMismatch(
                f"snapshot {self.snapshot.path} already holds "
                "checkpoint records; resume it instead (--resume) or "
                "remove the directory to start over"
            )
        self.snapshot.initialise(self.key, identity["fingerprint"])

    def _open_existing(self, identity: dict) -> None:
        if not self.snapshot.exists():
            keys = [
                (snapshot.manifest() or {}).get("key", "?")[:12]
                for snapshot in self.store.snapshots()
            ]
            raise StoreMismatch(
                f"no snapshot for this campaign under "
                f"{self.store.root} (expected key "
                f"{self.key[:12]}, found: {keys or 'none'}) — the "
                "topology seed, campaign config, or target set "
                "differs from the checkpointed run"
            )
        manifest = self.snapshot.manifest() or {}
        if manifest.get("key") != self.key:
            raise StoreMismatch(
                f"snapshot {self.snapshot.path} was written by a "
                "different campaign (content key mismatch)"
            )
        if manifest.get("schema") != STORE_SCHEMA:
            raise StoreMismatch(
                f"unsupported store schema "
                f"{manifest.get('schema')!r} (expected "
                f"{STORE_SCHEMA!r})"
            )
        self._load_records()

    def _load_records(self) -> None:
        """Accept the longest seq-contiguous pipeline prefix and
        truncate whatever follows (crash-damaged tails)."""
        position = 0
        broken = False
        for phase in PHASES:
            records = self.snapshot.records(phase)
            kept: List[dict] = []
            if not broken:
                for record in records:
                    if record.get("seq") != position:
                        break
                    kept.append(record)
                    position += 1
                broken = len(kept) < len(records)
            if len(kept) < len(records):
                self.snapshot.truncate_to(phase, kept)
            self._restored[phase] = kept
            self._counts[phase] = len(kept)
        self._seq = position

    def _restore_state(self) -> None:
        """Reinstate service accounting, response cache, and
        measurement counters from the surviving records."""
        service = self._campaign.service
        allocator = self._allocator()
        metrics = self._obs.metrics
        last_state = None
        for phase in PHASES:
            for record in self._restored[phase]:
                state = record.get("state")
                if isinstance(state, dict):
                    last_state = state
        if last_state is not None:
            # Service/backend state first: re-firing the interrupted
            # run's flaps invalidates caches on the still-empty fresh
            # stack, instead of wiping the entries imported below.
            service.restore_state(last_state.get("service") or {})
            counters = dict(last_state.get("counters") or {})
            for name in RESUME_EXEMPT_COUNTERS:
                counters.pop(name, None)
            metrics.merge_counters(counters)
            result_state = last_state.get("result") or {}
            self._result.probes_sent = int(
                result_state.get("probes_sent", 0)
            )
            self._result.revelation_probes = int(
                result_state.get("revelation_probes", 0)
            )
        cache_entries = 0
        for phase in PHASES:
            for record in self._restored[phase]:
                state = record.get("state")
                if not isinstance(state, dict):
                    continue
                if state.get("cache_flushed"):
                    # Replay the mid-run invalidation at the exact
                    # record where the interrupted run observed it.
                    service.flush_cache()
                cache_entries += service.import_cache(
                    state.get("cache_added") or []
                )
                service.import_quarantine(
                    state.get("quarantine_added") or []
                )
                if allocator is not None:
                    # LDP labels are first-use allocated: reinstate
                    # the interrupted run's allocation order so live
                    # probes observe the same label numbers.
                    allocator.import_bindings(
                        state.get("labels_added") or []
                    )
        self._cache_known = service.cache_keys()
        self._quarantine_known = len(service.quarantine_records)
        if allocator is not None:
            self._labels_known = len(allocator)
        restored = sum(
            len(records) for records in self._restored.values()
        )
        metrics.inc("store.restored.records", restored)
        metrics.inc("store.restored.cache_entries", cache_entries)

    def _state_block(self) -> dict:
        service = self._campaign.service
        counters = measurement_counters(
            self._obs.metrics.counters_snapshot()
        )
        for name in RESUME_EXEMPT_COUNTERS:
            counters.pop(name, None)
        # A known key vanishing means the cache was flushed since the
        # previous record (flap-driven invalidation): the full current
        # cache must be re-exported, and the resume must flush at this
        # exact point before importing it.
        cache_flushed = bool(
            self._cache_known - service.cache_keys()
        )
        if cache_flushed:
            self._cache_known = frozenset()
        cache_added = service.export_cache(self._cache_known)
        if cache_added:
            self._cache_known = service.cache_keys()
        quarantine_added = service.export_quarantine(
            self._quarantine_known
        )
        if quarantine_added:
            self._quarantine_known = len(service.quarantine_records)
        allocator = self._allocator()
        labels_added = []
        if allocator is not None:
            labels_added = allocator.export_bindings(
                self._labels_known
            )
            self._labels_known = len(allocator)
        return {
            "result": {
                "probes_sent": self._result.probes_sent,
                "revelation_probes": self._result.revelation_probes,
            },
            "service": service.state_snapshot(),
            "counters": counters,
            "cache_added": cache_added,
            # Only stamped when a flush happened, so clean-run record
            # bytes are unchanged across versions.
            **({"cache_flushed": True} if cache_flushed else {}),
            "labels_added": labels_added,
            "quarantine_added": quarantine_added,
        }

    def _allocator(self):
        """The prober's LDP label allocator (None for backends
        without a simulated dataplane)."""
        engine = getattr(self._campaign.prober, "engine", None)
        return getattr(engine, "labels", None)

    def _append(self, phase: str, record: dict) -> None:
        written = self.snapshot.append(phase, record)
        self._seq += 1
        self._counts[phase] += 1
        metrics = self._obs.metrics
        metrics.inc("store.records")
        metrics.inc("store.bytes", written)
        if self._obs.events.debug:
            self._obs.events.emit(
                "store.record",
                phase=phase,
                index=record["index"],
                seq=record["seq"],
            )


# ---------------------------------------------------------------------------
# Result summaries (the diffable artefact)


def result_document(
    result,
    aggregator=None,
    frpla=None,
    as_names: Optional[Dict[int, str]] = None,
) -> dict:
    """Build the ``result.json`` summary for a finished campaign.

    ``aggregator``/``frpla`` follow the shapes used by
    :mod:`repro.campaign.report`; when omitted (e.g. a bare test
    run), the per-AS section is empty but the tunnel inventory —
    what :mod:`repro.store.diff` needs — is still complete.
    """
    names = as_names or {}
    asn_of_pair = {
        (pair.ingress, pair.egress): pair.asn
        for pair in result.pairs
    }
    tunnels = []
    for (ingress, egress), revelation in sorted(
        result.revelations.items()
    ):
        if not revelation.success:
            continue
        tunnels.append(
            {
                "ingress": ingress,
                "egress": egress,
                "asn": asn_of_pair.get((ingress, egress)),
                "length": revelation.tunnel_length,
                "method": revelation.method.value,
                "technique": getattr(
                    revelation, "technique", "combined"
                ),
                "revealed": list(revelation.revealed),
            }
        )
    per_as = []
    if aggregator is not None:
        for asn in aggregator.asns():
            summary = aggregator.revelation_summary(asn)
            row = aggregator.deployment_row(asn, frpla=frpla)
            per_as.append(
                {
                    "asn": asn,
                    "name": names.get(asn),
                    "ie_pairs": summary.ie_pairs,
                    "revealed_pairs": summary.revealed_pairs,
                    "pct_revealed": summary.pct_revealed,
                    "lsr_ips": summary.lsr_ips,
                    "density_before": summary.density_before,
                    "density_after": summary.density_after,
                    "frpla_median": row.frpla_median,
                    "rtla_median": row.rtla_median,
                    "ftl_median": row.ftl_median,
                }
            )
    return {
        "partial": result.partial,
        "stop_reason": result.stop_reason,
        "volumes": {
            "traces": len(result.traces),
            "pings": len(result.pings),
            "pairs": len(result.pairs),
            "revelations": len(result.revelations),
            "tunnels_revealed": len(tunnels),
            "probes_sent": result.probes_sent,
            "revelation_probes": result.revelation_probes,
            "quarantined": len(getattr(result, "quarantine", [])),
        },
        "data_quality": getattr(result, "data_quality", {}) or None,
        "tunnels": tunnels,
        "per_as": per_as,
    }
