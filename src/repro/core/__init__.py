"""The paper's contribution: the four techniques and their pipeline."""

from repro.core.brpr import BrprResult, backward_recursive_revelation
from repro.core.classify import (
    Applicability,
    LspVisibility,
    VisibilityExpectation,
    expected_visibility,
    technique_applicability,
)
from repro.core.dpr import DprResult, direct_path_revelation
from repro.core.frpla import FrplaAnalyzer, RfaSample, rfa_of_hop, rfa_samples
from repro.core.revelation import (
    Revelation,
    RevelationMethod,
    TunnelAwareTraceroute,
    candidate_endpoints,
    reveal_tunnel,
)
from repro.core.rtla import RtlaAnalyzer, RtlaEstimate, rtla_gap
from repro.core.taxonomy import TunnelClass, TunnelSegment, classify_trace
from repro.core.signatures import (
    Signature,
    SignatureInventory,
    infer_initial_ttl,
    return_path_length,
)

__all__ = [
    "Applicability",
    "BrprResult",
    "DprResult",
    "FrplaAnalyzer",
    "LspVisibility",
    "Revelation",
    "RevelationMethod",
    "RfaSample",
    "RtlaAnalyzer",
    "RtlaEstimate",
    "Signature",
    "SignatureInventory",
    "TunnelAwareTraceroute",
    "TunnelClass",
    "TunnelSegment",
    "VisibilityExpectation",
    "backward_recursive_revelation",
    "candidate_endpoints",
    "classify_trace",
    "direct_path_revelation",
    "expected_visibility",
    "infer_initial_ttl",
    "return_path_length",
    "reveal_tunnel",
    "rfa_of_hop",
    "rfa_samples",
    "rtla_gap",
    "technique_applicability",
]
