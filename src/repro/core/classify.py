"""Configuration → visibility/technique matrices (Tables 2 and 6).

Table 2 predicts, for each basic MPLS configuration, what a traceroute
observes (explicit LSP, invisible LSP, label-less revelations) and
which length-analysis signals appear (the FRPLA *shift*, the RTLA
*gap*).  Table 6 condenses the per-vendor applicability of the four
techniques.  Encoding them as functions lets the test-suite sweep the
whole grid against the emulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Tuple

from repro.net.vendors import LdpPolicy

__all__ = [
    "LspVisibility",
    "VisibilityExpectation",
    "expected_visibility",
    "Applicability",
    "technique_applicability",
]


class LspVisibility(Enum):
    """What traceroute shows for the tunnel (Table 2 cells)."""

    #: Labels quoted hop by hop — the tunnel is explicit.
    EXPLICIT = "explicit-lsp"
    #: Nothing between the LERs — the tunnel is invisible.
    INVISIBLE = "invisible-lsp"
    #: Internal target + all-prefixes LDP: PHP exposes the last hop,
    #: label-less — BRPR territory.
    LAST_HOP_NO_LABEL = "last-hop-without-label"
    #: Internal target + loopback-only LDP: a plain IGP route without
    #: labels — DPR territory.
    ROUTE_NO_LABEL = "route-without-labels"


@dataclass(frozen=True)
class VisibilityExpectation:
    """One Table 2 cell."""

    visibility: LspVisibility
    frpla_shift: bool  #: return paths longer than forward ones
    rtla_gap: bool  #: TE/echo-reply return-length gap present
    revelation: str  #: "dpr", "brpr", or "none"


def expected_visibility(
    ldp_policy: LdpPolicy,
    target_internal: bool,
    ttl_propagate: bool,
    signature: Tuple[int, int] = (255, 255),
) -> VisibilityExpectation:
    """Predict traceroute behaviour for a basic MPLS configuration.

    Args:
        ldp_policy: the AS-wide LDP advertising policy.
        target_internal: True when the traceroute destination is an
            internal (non-loopback) prefix of the MPLS AS, False for a
            destination beyond it.
        ttl_propagate: the LER's TTL propagation setting.
        signature: the Egress LER's TTL pair-signature; the RTLA gap
            needs ``(255, 64)``.

    Assumes PHP (the Table 2 premise); UHP has its own row in the
    emulation tests.
    """
    all_prefixes = ldp_policy is LdpPolicy.ALL_PREFIXES
    revelation = "brpr" if all_prefixes else "dpr"
    if target_internal:
        if all_prefixes:
            visibility = LspVisibility.LAST_HOP_NO_LABEL
        else:
            visibility = LspVisibility.ROUTE_NO_LABEL
    else:
        visibility = (
            LspVisibility.EXPLICIT
            if ttl_propagate
            else LspVisibility.INVISIBLE
        )
    if ttl_propagate:
        # Explicit LSPs: tunnel hops appear in the forward path too,
        # so no shift and no gap.
        return VisibilityExpectation(
            visibility=visibility,
            frpla_shift=False,
            rtla_gap=False,
            revelation=revelation,
        )
    return VisibilityExpectation(
        visibility=visibility,
        frpla_shift=True,
        rtla_gap=signature == (255, 64),
        revelation=revelation,
    )


@dataclass(frozen=True)
class Applicability:
    """One Table 6 row: which techniques see a vendor's default config.

    Values are ``True`` (works), ``False`` (does not apply), or
    ``"partial"`` (the paper's parenthesised check marks: works in
    favourable sub-cases).
    """

    ldp: LdpPolicy
    popping: str
    frpla: object
    rtla: object
    dpr: object
    brpr: object


#: Table 6 of the paper.
_TABLE6: Dict[str, Applicability] = {
    "cisco": Applicability(
        ldp=LdpPolicy.ALL_PREFIXES,
        popping="php",
        frpla=True,
        rtla=False,
        dpr=False,
        brpr=True,
    ),
    "juniper": Applicability(
        ldp=LdpPolicy.LOOPBACK_ONLY,
        popping="php",
        frpla="partial",
        rtla=True,
        dpr=True,
        brpr="partial",
    ),
}


def technique_applicability(brand: str) -> Applicability:
    """Table 6 row for ``brand`` (KeyError for other vendors)."""
    try:
        return _TABLE6[brand]
    except KeyError:
        raise KeyError(
            f"Table 6 covers {sorted(_TABLE6)}, not {brand!r}"
        ) from None
