"""TTL-based router fingerprinting (Sec. 2.3, Table 1).

Routers initialise the IP-TTL of self-generated packets to an
OS-specific constant (64, 128 or 255).  Observing the residual TTL of
a reply at the vantage point, the initial value is the smallest
constant not below the observation, and the *return path length* is
their difference.  The pair-signature
``<time-exceeded initial, echo-reply initial>`` identifies the brand:

==============  =======================
Signature       Brand / OS
==============  =======================
``<255, 255>``  Cisco (IOS, IOS XR)
``<255, 64>``   Juniper (Junos)
``<128, 128>``  Juniper (JunosE)
``<64, 64>``    Brocade, Alcatel, Linux
==============  =======================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "INITIAL_TTLS",
    "SIGNATURE_BRANDS",
    "infer_initial_ttl",
    "return_path_length",
    "Signature",
    "SignatureInventory",
]

#: Initial TTL constants in use on the Internet, ascending.
INITIAL_TTLS = (64, 128, 255)

#: Table 1 of the paper.
SIGNATURE_BRANDS: Dict[Tuple[int, int], str] = {
    (255, 255): "cisco",
    (255, 64): "juniper",
    (128, 128): "junos-e",
    (64, 64): "brocade",
}

#: Signature whose echo-reply TTL gap powers RTLA.
JUNIPER_SIGNATURE = (255, 64)


def infer_initial_ttl(observed: Optional[int]) -> Optional[int]:
    """Smallest plausible initial TTL for an observed residual TTL.

    >>> infer_initial_ttl(250)
    255
    >>> infer_initial_ttl(62)
    64

    Returns None for None input or an impossible observation (0 or
    out of range).
    """
    if observed is None or not 0 < observed <= 255:
        return None
    for initial in INITIAL_TTLS:
        if observed <= initial:
            return initial
    return None


def return_path_length(observed: Optional[int]) -> Optional[int]:
    """Links the reply travelled: initial − observed + 1.

    The reply is decremented at every intermediate router but neither
    at its origin nor at the vantage point, so the link count is the
    TTL deficit plus one.  With this convention a symmetric, tunnel-
    free path has a return length equal to the forward probe TTL and
    the FRPLA asymmetry baseline sits exactly at 0.
    """
    initial = infer_initial_ttl(observed)
    if initial is None or observed is None:
        return None
    return initial - observed + 1


@dataclass(frozen=True)
class Signature:
    """A (possibly partial) router pair-signature."""

    time_exceeded: Optional[int]  #: inferred TE initial TTL
    echo_reply: Optional[int]  #: inferred echo-reply initial TTL

    @property
    def complete(self) -> bool:
        """True when both initials were observed."""
        return self.time_exceeded is not None and self.echo_reply is not None

    @property
    def pair(self) -> Optional[Tuple[int, int]]:
        """The ``(te, er)`` tuple, or None when incomplete."""
        if not self.complete:
            return None
        return (self.time_exceeded, self.echo_reply)

    @property
    def brand(self) -> Optional[str]:
        """Brand per Table 1, or None when unknown/incomplete."""
        pair = self.pair
        return SIGNATURE_BRANDS.get(pair) if pair else None

    @property
    def rtla_capable(self) -> bool:
        """True for the ``<255, 64>`` signature RTLA relies on."""
        return self.pair == JUNIPER_SIGNATURE

    def __str__(self) -> str:
        te = "?" if self.time_exceeded is None else self.time_exceeded
        er = "?" if self.echo_reply is None else self.echo_reply
        return f"<{te}, {er}>"


class SignatureInventory:
    """Accumulates TTL observations per address and infers signatures.

    Feed it traceroute hops (time-exceeded residual TTLs) and ping
    results (echo-reply residual TTLs); query per-address signatures
    and aggregate brand statistics (Table 5's signature columns).
    """

    def __init__(self) -> None:
        self._te: Dict[int, List[int]] = {}
        self._er: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Observation intake

    def observe_time_exceeded(self, address: int, reply_ttl: int) -> None:
        """Record a time-exceeded residual TTL for ``address``."""
        self._te.setdefault(address, []).append(reply_ttl)

    def observe_echo_reply(self, address: int, reply_ttl: int) -> None:
        """Record an echo-reply residual TTL for ``address``."""
        self._er.setdefault(address, []).append(reply_ttl)

    def observe_trace(self, trace) -> None:
        """Ingest every time-exceeded hop of a :class:`Trace`."""
        for hop in trace.hops:
            if (
                hop.responded
                and hop.reply_kind == "time-exceeded"
                and hop.reply_ttl is not None
            ):
                self.observe_time_exceeded(hop.address, hop.reply_ttl)

    def observe_ping(self, result) -> None:
        """Ingest a :class:`PingResult`."""
        if result.responded and result.reply_ttl is not None:
            self.observe_echo_reply(result.dst, result.reply_ttl)

    # ------------------------------------------------------------------
    # Inference

    def addresses(self) -> List[int]:
        """All addresses with at least one observation."""
        return sorted(set(self._te) | set(self._er))

    def signature(self, address: int) -> Signature:
        """Best signature inferrable for ``address``."""
        return Signature(
            time_exceeded=self._initial(self._te.get(address)),
            echo_reply=self._initial(self._er.get(address)),
        )

    @staticmethod
    def _initial(observations: Optional[List[int]]) -> Optional[int]:
        if not observations:
            return None
        # The largest residual is the closest to the initial (shortest
        # return path seen), so infer from it.
        return infer_initial_ttl(max(observations))

    def brand_shares(self, addresses=None) -> Dict[str, float]:
        """Fraction of addresses per signature brand (Table 5 columns).

        ``addresses`` restricts the population; incomplete or unknown
        signatures land in ``"unknown"``.  Fractions sum to 1 (empty
        dict when no addresses).
        """
        population = (
            list(addresses) if addresses is not None else self.addresses()
        )
        if not population:
            return {}
        counts: Dict[str, int] = {}
        for address in population:
            brand = self.signature(address).brand or "unknown"
            counts[brand] = counts.get(brand, 0) + 1
        total = len(population)
        return {brand: count / total for brand, count in counts.items()}
