"""Pluggable technique registry (analysis + trigger + revelation).

The paper's four techniques — FRPLA, RTLA, DPR, BRPR — were originally
hardwired through the orchestrator, the degrade grader, the
cross-validation harness, and the CLI.  This module turns each one
into a :class:`Technique` instance registered in an ordered
:class:`TechniqueRegistry`, so new tunnel classes (RSVP-TE) and new
revelation families (the successor paper's TNT pipeline) plug in
without touching the campaign plumbing.

A technique bundles up to five capabilities, all optional:

* ``make_analyzer`` — a passive analyzer factory (FRPLA, RTLA);
* ``trigger`` — a cheap predicate over a candidate pair deciding
  whether the expensive revelation is worth running (TNT's
  RTLA/FRPLA-style triggers);
* ``reveal`` — a full revelation strategy returning a
  :class:`~repro.core.revelation.Revelation` (the combined recursion,
  TNT);
* ``primitive`` — a single-shot revelation primitive used by the
  Table 3 cross-validation (DPR, BRPR);
* ``confidence`` — the per-technique data-quality score over a
  finished campaign result (see
  :func:`repro.campaign.degrade.assess_data_quality`).

``tunnel_classes`` declares which tunnel signalling families the
technique was designed for (``"ldp"``, ``"rsvp-te"``), so campaign
code can ask :meth:`Technique.applicable` instead of special-casing
names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional

from repro.core.brpr import backward_recursive_revelation
from repro.core.dpr import direct_path_revelation
from repro.core.frpla import FrplaAnalyzer, rfa_of_hop
from repro.core.revelation import (
    Revelation,
    RevelationMethod,
    reveal_tunnel,
)
from repro.core.rtla import RtlaAnalyzer

__all__ = [
    "DPR_METHODS",
    "BRPR_METHODS",
    "Technique",
    "TriggerContext",
    "TechniqueRegistry",
    "default_techniques",
]

#: Revelation methods that exercised the DPR side of the recursion.
DPR_METHODS = frozenset((
    RevelationMethod.DPR,
    RevelationMethod.DPR_OR_BRPR,
    RevelationMethod.HYBRID,
))

#: Revelation methods that exercised the BRPR side.
BRPR_METHODS = frozenset((
    RevelationMethod.BRPR,
    RevelationMethod.DPR_OR_BRPR,
    RevelationMethod.HYBRID,
))


@dataclass(frozen=True)
class TriggerContext:
    """What a technique trigger gets to look at.

    ``pair`` is the campaign's
    :class:`~repro.campaign.orchestrator.CandidatePair` (duck typed to
    keep this module below the campaign layer), ``result`` the
    in-progress campaign result whose analyzers — notably ``rtla`` —
    already ingested the trace and ping phases, and ``config`` the
    :class:`~repro.campaign.orchestrator.CampaignConfig`.
    """

    pair: object
    result: object
    config: object = None


@dataclass(frozen=True)
class Technique:
    """One registered measurement/revelation technique."""

    name: str
    #: ``"analysis"`` (passive, statistical) or ``"revelation"``
    #: (active probing that exposes hidden hops).
    kind: str
    description: str = ""
    #: Tunnel signalling families the technique targets.
    tunnel_classes: FrozenSet[str] = frozenset({"ldp"})
    #: Probe-budget scope its active probing charges (None = passive).
    scope: Optional[str] = None
    make_analyzer: Optional[Callable] = None
    trigger: Optional[Callable[[TriggerContext], bool]] = None
    reveal: Optional[Callable] = None
    primitive: Optional[Callable] = None
    confidence: Optional[Callable] = None

    def applicable(self, tunnel_class: str) -> bool:
        """Was the technique designed for ``tunnel_class`` tunnels?"""
        return tunnel_class in self.tunnel_classes


class TechniqueRegistry:
    """Ordered name -> :class:`Technique` registry.

    Registration order is meaningful: reports and the data-quality
    document enumerate techniques in it, so the classic
    frpla/rtla/dpr/brpr order (then newcomers) stays stable.
    """

    def __init__(self, techniques: Optional[List[Technique]] = None) -> None:
        self._techniques: Dict[str, Technique] = {}
        for technique in techniques or ():
            self.register(technique)

    def register(self, technique: Technique) -> Technique:
        """Add ``technique``; duplicate names are an error."""
        if technique.name in self._techniques:
            raise ValueError(
                f"technique {technique.name!r} is already registered"
            )
        self._techniques[technique.name] = technique
        return technique

    def get(self, name: str) -> Technique:
        """Lookup by name, with the known names in the error."""
        try:
            return self._techniques[name]
        except KeyError:
            known = ", ".join(sorted(self._techniques)) or "(none)"
            raise KeyError(
                f"unknown technique {name!r}; registered: {known}"
            ) from None

    def names(self) -> List[str]:
        """Registered names, in registration order."""
        return list(self._techniques)

    def revealers(self) -> List[Technique]:
        """Techniques with a full revelation strategy."""
        return [t for t in self._techniques.values() if t.reveal]

    def scopes(self) -> List[str]:
        """Distinct budget scopes, in registration order."""
        seen: List[str] = []
        for technique in self._techniques.values():
            if technique.scope and technique.scope not in seen:
                seen.append(technique.scope)
        return seen

    def confidences(self, result) -> Dict[str, float]:
        """Per-technique data-quality confidence over ``result``.

        Techniques without a confidence scorer are skipped; the dict
        preserves registration order (reports iterate it directly).
        """
        scores: Dict[str, float] = {}
        for technique in self._techniques.values():
            if technique.confidence is not None:
                scores[technique.name] = float(
                    technique.confidence(result)
                )
        return scores

    def __iter__(self) -> Iterator[Technique]:
        return iter(self._techniques.values())

    def __len__(self) -> int:
        return len(self._techniques)

    def __contains__(self, name: str) -> bool:
        return name in self._techniques


# ---------------------------------------------------------------------------
# The shipped techniques


def _frpla_trigger(context: TriggerContext, threshold: int = 2) -> bool:
    """FRPLA-style trigger: RFA jump across the candidate pair.

    Mirrors :class:`~repro.core.revelation.TunnelAwareTraceroute`: the
    return/forward asymmetry rising by ``threshold`` or more between
    the X and Y hops of the original trace flags a likely invisible
    tunnel between them.
    """
    trace = getattr(context.pair, "trace", None)
    if trace is None:
        return False
    ingress_hop = trace.hop_of(context.pair.ingress)
    egress_hop = trace.hop_of(context.pair.egress)
    if ingress_hop is None or egress_hop is None:
        return False
    ingress_rfa = rfa_of_hop(ingress_hop)
    egress_rfa = rfa_of_hop(egress_hop)
    if ingress_rfa is None or egress_rfa is None:
        return False
    return egress_rfa.rfa - ingress_rfa.rfa >= threshold


def _rtla_trigger(context: TriggerContext) -> bool:
    """RTLA-style trigger: a positive return-tunnel-length estimate.

    Only fires for ``<255, 64>`` (Juniper-signature) endpoints the
    campaign's RTLA analyzer already holds paired observations for —
    exactly the per-router evidence TNT uses to gate revelation.
    """
    rtla = getattr(context.result, "rtla", None)
    if rtla is None:
        return False
    for address in (context.pair.egress, context.pair.ingress):
        estimate = rtla.estimate(address)
        if estimate is not None and estimate.tunnel_length >= 1:
            return True
    return False


def _tnt_trigger(context: TriggerContext) -> bool:
    """TNT gates revelation on either indicator firing."""
    return _frpla_trigger(context) or _rtla_trigger(context)


def _tnt_reveal(
    prober,
    vantage_point,
    ingress: int,
    egress: int,
    max_steps: int = 16,
    start_ttl: int = 1,
) -> Revelation:
    """TNT's revelation body: the DPR/BRPR recursion, tnt-scoped."""
    return reveal_tunnel(
        prober,
        vantage_point,
        ingress=ingress,
        egress=egress,
        max_steps=max_steps,
        start_ttl=start_ttl,
        technique="tnt",
        scope="tnt",
    )


def _trace_confidence(result) -> float:
    traces = result.traces
    if not traces:
        return 1.0
    reached = sum(1 for t in traces if t.destination_reached)
    return reached / len(traces)


def _ping_confidence(result) -> float:
    pings = list(result.pings.values())
    if not pings:
        return 1.0
    responsive = sum(1 for p in pings if p.responded)
    return responsive / len(pings)


def _method_confidence(result, methods) -> float:
    relevant = [
        r for r in result.revelations.values() if r.method in methods
    ]
    if not relevant:
        return 1.0
    complete = sum(
        1 for r in relevant if getattr(r, "complete", True)
    )
    return complete / len(relevant)


def _tnt_confidence(result) -> float:
    relevant = [
        r
        for r in result.revelations.values()
        if getattr(r, "technique", "combined") == "tnt"
    ]
    if not relevant:
        return 1.0
    complete = sum(
        1 for r in relevant if getattr(r, "complete", True)
    )
    return complete / len(relevant)


def default_techniques() -> TechniqueRegistry:
    """A fresh registry holding the shipped technique stack.

    The four paper techniques in their classic order, then TNT — the
    first post-paper entrant, covering RSVP-TE alongside LDP.
    """
    return TechniqueRegistry([
        Technique(
            name="frpla",
            kind="analysis",
            description=(
                "Forward/Return Path Length Analysis — AS-granularity "
                "RFA shift (Sec. 3.1)"
            ),
            make_analyzer=(
                lambda asn_of, classify=None, obs=None: FrplaAnalyzer(
                    asn_of, classify, obs=obs
                )
            ),
            trigger=_frpla_trigger,
            confidence=_trace_confidence,
        ),
        Technique(
            name="rtla",
            kind="analysis",
            description=(
                "Return Tunnel Length Analysis — per-router <255,64> "
                "gap (Sec. 3.1)"
            ),
            make_analyzer=(
                lambda inventory=None, obs=None: RtlaAnalyzer(
                    inventory, obs=obs
                )
            ),
            trigger=_rtla_trigger,
            confidence=_ping_confidence,
        ),
        Technique(
            name="dpr",
            kind="revelation",
            description=(
                "Direct Path Revelation — one trace reveals the whole "
                "LSP (Sec. 3.2)"
            ),
            scope="dpr",
            primitive=direct_path_revelation,
            confidence=lambda result: _method_confidence(
                result, DPR_METHODS
            ),
        ),
        Technique(
            name="brpr",
            kind="revelation",
            description=(
                "Backward Recursive Path Revelation — peel one LSR per "
                "trace (Sec. 3.2)"
            ),
            scope="brpr",
            primitive=backward_recursive_revelation,
            confidence=lambda result: _method_confidence(
                result, BRPR_METHODS
            ),
        ),
        Technique(
            name="tnt",
            kind="revelation",
            description=(
                "TNT trigger-driven pipeline — FRPLA/RTLA indicators "
                "gating the DPR/BRPR recursion ('TNT, Watch me "
                "Explode')"
            ),
            tunnel_classes=frozenset({"ldp", "rsvp-te"}),
            scope="tnt",
            trigger=_tnt_trigger,
            reveal=_tnt_reveal,
            confidence=_tnt_confidence,
        ),
    ])
