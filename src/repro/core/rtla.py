"""RTLA — Return Tunnel Length Analysis (Sec. 3.1, Fig. 3).

For routers with the Juniper ``<255, 64>`` signature, two reply kinds
leave the same router with *different* initial TTLs:

* ``time-exceeded`` starts at 255 — inside a no-ttl-propagate return
  tunnel the LSE-TTL (pushed at 255) drops below it, so the ``min``
  rule copies the LSE-TTL back at the tunnel exit: tunnel hops are
  counted in the return path.
* ``echo-reply`` starts at 64 — the LSE-TTL (255 - a few) always stays
  above it, the ``min`` rule keeps the IP-TTL: tunnel hops are *not*
  counted.

The gap between the two inferred return path lengths is exactly the
return tunnel length::

    h(I, E) = (255 - ttl_te) - (64 - ttl_er)

RTLA is per-router (unlike the AS-statistical FRPLA) and insensitive
to routing asymmetry, but only applies to ``<255, 64>`` targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.signatures import (
    Signature,
    SignatureInventory,
    return_path_length,
)
from repro.obs import Obs
from repro.probing.prober import PingResult, Trace
from repro.stats.distributions import Distribution

__all__ = ["RtlaEstimate", "rtla_gap", "RtlaAnalyzer"]


@dataclass(frozen=True)
class RtlaEstimate:
    """Return tunnel length inferred for one address."""

    address: int
    te_return_length: int  #: return path length via time-exceeded
    er_return_length: int  #: return path length via echo-reply
    tunnel_length: int  #: the gap — number of hops in the return LSP


def rtla_gap(
    te_reply_ttl: Optional[int], er_reply_ttl: Optional[int]
) -> Optional[RtlaEstimate]:
    """Compute the RTLA gap from the two residual TTLs.

    Returns None when either observation is missing or when the
    inferred initials are not the ``<255, 64>`` pair (RTLA does not
    apply to other signatures).
    """
    te_len = return_path_length(te_reply_ttl)
    er_len = return_path_length(er_reply_ttl)
    if te_len is None or er_len is None:
        return None
    signature = Signature(
        time_exceeded=255 if te_reply_ttl > 128 else None,
        echo_reply=64 if er_reply_ttl <= 64 else None,
    )
    if not signature.rtla_capable:
        return None
    return RtlaEstimate(
        address=0,
        te_return_length=te_len,
        er_return_length=er_len,
        tunnel_length=te_len - er_len,
    )


class RtlaAnalyzer:
    """Pairs trace hops with pings and derives return tunnel lengths.

    Observations are keyed per *(vantage point, address)*: the two
    reply kinds only share a return path when they were probed from
    the same vantage point, so cross-VP pairing would measure routing
    differences instead of the tunnel.
    """

    def __init__(
        self,
        inventory: Optional[SignatureInventory] = None,
        obs: Optional[Obs] = None,
    ) -> None:
        self.inventory = inventory or SignatureInventory()
        #: best (largest) TE residual TTL per (vp, address)
        self._te_ttl: Dict[Tuple[str, int], int] = {}
        #: best (largest) echo-reply residual TTL per (vp, address)
        self._er_ttl: Dict[Tuple[str, int], int] = {}
        self.obs = obs if obs is not None else Obs()

    def bind_obs(self, obs: Obs) -> "RtlaAnalyzer":
        """Redirect future intake counters into ``obs``.

        ``CampaignResult`` default-constructs its analyzer before the
        campaign can hand over its bundle; the orchestrator re-binds
        here so RTLA intake lands in the campaign's registry.
        """
        self.obs = obs
        return self

    # ------------------------------------------------------------------
    # Intake

    def add_trace(self, trace: Trace) -> None:
        """Ingest time-exceeded residual TTLs from a trace."""
        self.inventory.observe_trace(trace)
        for hop in trace.hops:
            if (
                hop.responded
                and hop.reply_kind == "time-exceeded"
                and hop.reply_ttl is not None
            ):
                self.obs.metrics.inc("rtla.te_observations")
                self.obs.metrics.inc("technique.rtla.observations")
                key = (trace.source, hop.address)
                previous = self._te_ttl.get(key)
                if previous is None or hop.reply_ttl > previous:
                    self._te_ttl[key] = hop.reply_ttl

    def add_ping(self, result: PingResult) -> None:
        """Ingest one echo-reply residual TTL."""
        self.inventory.observe_ping(result)
        if (
            result.responded
            and result.reply_ttl is not None
            and result.source is not None
        ):
            self.obs.metrics.inc("rtla.er_observations")
            self.obs.metrics.inc("technique.rtla.observations")
            key = (result.source, result.dst)
            previous = self._er_ttl.get(key)
            if previous is None or result.reply_ttl > previous:
                self._er_ttl[key] = result.reply_ttl

    # ------------------------------------------------------------------
    # Inference

    def addresses(self) -> List[int]:
        """Addresses with both observation kinds from some shared VP."""
        paired = {
            address
            for (vp, address) in self._te_ttl
            if (vp, address) in self._er_ttl
        }
        return sorted(paired)

    def estimate(self, address: int) -> Optional[RtlaEstimate]:
        """Return tunnel length for ``address`` (None if inapplicable).

        Applies only to addresses whose inferred signature is the
        Juniper ``<255, 64>`` pair.  Among vantage points holding both
        observations, the one with the shortest (cleanest) return path
        — the largest TE residual — wins.
        """
        candidates: List[Tuple[int, int]] = []
        for (vp, seen_address), te_ttl in self._te_ttl.items():
            if seen_address != address:
                continue
            er_ttl = self._er_ttl.get((vp, seen_address))
            if er_ttl is not None:
                candidates.append((te_ttl, er_ttl))
        if not candidates:
            return None
        if not self.inventory.signature(address).rtla_capable:
            return None
        te_ttl, er_ttl = max(candidates)
        te_len = return_path_length(te_ttl)
        er_len = return_path_length(er_ttl)
        if te_len is None or er_len is None:
            return None
        return RtlaEstimate(
            address=address,
            te_return_length=te_len,
            er_return_length=er_len,
            tunnel_length=te_len - er_len,
        )

    def estimates(self) -> List[RtlaEstimate]:
        """All per-address estimates."""
        results = []
        for address in self.addresses():
            estimate = self.estimate(address)
            if estimate is not None:
                results.append(estimate)
        # Gauge (idempotent): estimates() is a recomputation, not an
        # accumulation.
        self.obs.metrics.set_gauge("rtla.estimates", len(results))
        return results

    def tunnel_length_distribution(self) -> Distribution:
        """Distribution of inferred return tunnel lengths (Fig. 9a)."""
        return Distribution(
            estimate.tunnel_length for estimate in self.estimates()
        )

    def median_tunnel_length(
        self, asn_of: Optional[Callable[[int], Optional[int]]] = None,
        asn: Optional[int] = None,
    ) -> Optional[float]:
        """Median return tunnel length, optionally restricted to an AS."""
        lengths = []
        for estimate in self.estimates():
            if asn is not None and asn_of is not None:
                if asn_of(estimate.address) != asn:
                    continue
            lengths.append(estimate.tunnel_length)
        if not lengths:
            return None
        return Distribution(lengths).median
