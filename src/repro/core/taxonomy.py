"""MPLS tunnel taxonomy over traces (Donnet et al. 2012, Sec. 2.2).

The paper's predecessor work classifies MPLS tunnels by what
traceroute can see:

* **explicit** — LSRs visible *and* flagged: ``ttl-propagate`` on and
  RFC 4950 label quoting on;
* **implicit** — LSRs visible but unflagged: ``ttl-propagate`` on,
  RFC 4950 off.  Detectable through the *u-turn* signature: a
  time-exceeded generated mid-LSP detours to the tunnel end before
  returning, so the return/forward asymmetry of consecutive in-tunnel
  hops *decreases by 2 per hop* toward the egress;
* **invisible** — ``no-ttl-propagate``: nothing between the LERs
  (this paper's subject, handled by FRPLA/RTLA/DPR/BRPR).

This module finds explicit and implicit segments in traces — the
complement of the invisible-tunnel pipeline, and the ground the 2017
paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.frpla import rfa_of_hop
from repro.probing.prober import Trace

__all__ = ["TunnelClass", "TunnelSegment", "classify_trace"]


class TunnelClass:
    """String constants for the taxonomy classes."""

    EXPLICIT = "explicit"
    IMPLICIT = "implicit"


@dataclass(frozen=True)
class TunnelSegment:
    """One classified tunnel segment inside a trace."""

    kind: str  #: TunnelClass constant
    #: Addresses of the LSR hops, forward order.
    lsrs: Tuple[int, ...]
    #: Probe TTL of the first LSR hop.
    start_ttl: int

    @property
    def length(self) -> int:
        """Number of visible LSR hops."""
        return len(self.lsrs)


def _uturn_values(trace: Trace) -> List[Optional[int]]:
    """Per-hop return-minus-forward asymmetry (None when unusable)."""
    values: List[Optional[int]] = []
    for hop in trace.responsive_hops:
        sample = rfa_of_hop(hop)
        values.append(None if sample is None else sample.rfa)
    return values


def _explicit_segments(trace: Trace) -> List[TunnelSegment]:
    segments: List[TunnelSegment] = []
    run: List = []
    for hop in trace.responsive_hops:
        if hop.has_labels:
            run.append(hop)
        elif run:
            segments.append(
                TunnelSegment(
                    kind=TunnelClass.EXPLICIT,
                    lsrs=tuple(h.address for h in run),
                    start_ttl=run[0].probe_ttl,
                )
            )
            run = []
    if run:
        segments.append(
            TunnelSegment(
                kind=TunnelClass.EXPLICIT,
                lsrs=tuple(h.address for h in run),
                start_ttl=run[0].probe_ttl,
            )
        )
    return segments


def _implicit_segments(
    trace: Trace, min_length: int
) -> List[TunnelSegment]:
    """Label-less runs whose u-turn decreases by 2 per hop.

    A mid-LSP time-exceeded travels the remaining k hops to the egress
    and k hops back before exiting the tunnel, so at in-tunnel hop i
    (of n) the asymmetry exceeds the baseline by ``2 * (n - i)``:
    consecutive in-tunnel hops differ by exactly -2.
    """
    hops = trace.responsive_hops
    uturn = _uturn_values(trace)
    segments: List[TunnelSegment] = []
    run_start: Optional[int] = None
    for index in range(1, len(hops)):
        usable = (
            uturn[index] is not None
            and uturn[index - 1] is not None
            and hops[index].probe_ttl == hops[index - 1].probe_ttl + 1
            and not hops[index].has_labels
            and not hops[index - 1].has_labels
        )
        step_matches = (
            usable and uturn[index] - uturn[index - 1] == -2
            and uturn[index - 1] > 0
        )
        if step_matches:
            if run_start is None:
                run_start = index - 1
        elif run_start is not None:
            segments.append(_close_implicit(hops, run_start, index))
            run_start = None
    if run_start is not None:
        segments.append(_close_implicit(hops, run_start, len(hops)))
    return [s for s in segments if s.length >= min_length]


def _close_implicit(hops, start: int, end: int) -> TunnelSegment:
    run = hops[start:end]
    return TunnelSegment(
        kind=TunnelClass.IMPLICIT,
        lsrs=tuple(h.address for h in run),
        start_ttl=run[0].probe_ttl,
    )


def classify_trace(
    trace: Trace, min_implicit_length: int = 2
) -> List[TunnelSegment]:
    """All explicit and implicit tunnel segments in ``trace``.

    Invisible tunnels, by definition, leave no in-trace hops to
    classify; detecting them is the job of
    :mod:`repro.core.frpla` / :mod:`repro.core.revelation`.
    ``min_implicit_length`` suppresses one-hop u-turn coincidences.
    """
    segments = _explicit_segments(trace)
    segments.extend(_implicit_segments(trace, min_implicit_length))
    return sorted(segments, key=lambda s: s.start_ttl)
