"""FRPLA — Forward/Return Path Length Analysis (Sec. 3.1).

When a forward tunnel is invisible, traceroute underestimates the
forward path length, while the *return* path length is complete: the
``min(IP-TTL, LSE-TTL)`` rule at the end of return tunnels re-injects
tunnel hops into the reply's IP-TTL.  The difference

    RFA = return_path_length - forward_path_length

is therefore shifted toward positive values for egress LERs of
invisible tunnels, while for tunnel-free paths it follows a roughly
normal distribution centred at 0 (routing asymmetry).  FRPLA is a
*statistical*, AS-granularity technique: a positive median shift over
many ingress points flags the AS as hiding tunnels and estimates their
average length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.signatures import return_path_length
from repro.obs import Obs
from repro.probing.prober import Trace, TraceHop
from repro.stats.distributions import Distribution

__all__ = ["RfaSample", "rfa_of_hop", "rfa_samples", "FrplaAnalyzer"]


@dataclass(frozen=True)
class RfaSample:
    """One Return-vs-Forward Asymmetry observation."""

    address: int  #: responding address
    forward_length: int  #: hop distance (probe TTL) of the responder
    return_length: int  #: inferred reply path length
    rfa: int  #: return_length - forward_length


def rfa_of_hop(hop: TraceHop) -> Optional[RfaSample]:
    """RFA sample for one responding time-exceeded hop, if computable."""
    if not hop.responded or hop.reply_kind != "time-exceeded":
        return None
    return_len = return_path_length(hop.reply_ttl)
    if return_len is None:
        return None
    return RfaSample(
        address=hop.address,
        forward_length=hop.probe_ttl,
        return_length=return_len,
        rfa=return_len - hop.probe_ttl,
    )


def rfa_samples(traces: Iterable[Trace]) -> List[RfaSample]:
    """All RFA samples extractable from ``traces``."""
    samples: List[RfaSample] = []
    for trace in traces:
        for hop in trace.hops:
            sample = rfa_of_hop(hop)
            if sample is not None:
                samples.append(sample)
    return samples


class FrplaAnalyzer:
    """AS-granularity FRPLA: per-AS RFA distributions and shifts.

    ``asn_of`` maps an address to its AS (IP-to-AS mapping in the
    paper; ground truth in the simulator).  Optionally pass a
    ``classify`` callable mapping an address to a role label (e.g.
    ``"egress"`` / ``"ingress"`` / ``"other"``) to split distributions
    the way Fig. 7a does.
    """

    def __init__(
        self,
        asn_of: Callable[[int], Optional[int]],
        classify: Optional[Callable[[int], str]] = None,
        obs: Optional[Obs] = None,
    ) -> None:
        self._asn_of = asn_of
        self._classify = classify or (lambda address: "all")
        #: (asn, role) -> raw RFA values
        self._values: Dict[tuple, List[int]] = {}
        self.obs = obs if obs is not None else Obs()

    # ------------------------------------------------------------------

    def add_sample(self, sample: RfaSample) -> None:
        """Account one RFA observation."""
        asn = self._asn_of(sample.address)
        if asn is None:
            return
        self.obs.metrics.inc("frpla.samples")
        self.obs.metrics.inc("technique.frpla.samples")
        role = self._classify(sample.address)
        self._values.setdefault((asn, role), []).append(sample.rfa)

    def add_trace(self, trace: Trace) -> None:
        """Account every usable hop of ``trace``."""
        for hop in trace.hops:
            sample = rfa_of_hop(hop)
            if sample is not None:
                self.add_sample(sample)

    def add_traces(self, traces: Iterable[Trace]) -> None:
        """Account many traces."""
        for trace in traces:
            self.add_trace(trace)

    # ------------------------------------------------------------------

    def asns(self) -> List[int]:
        """ASes with at least one sample."""
        return sorted({asn for asn, _ in self._values})

    def roles(self, asn: int) -> List[str]:
        """Role labels observed for ``asn``."""
        return sorted(role for a, role in self._values if a == asn)

    def distribution(
        self, asn: Optional[int] = None, role: Optional[str] = None
    ) -> Distribution:
        """RFA distribution filtered by AS and/or role."""
        values: List[int] = []
        for (sample_asn, sample_role), batch in self._values.items():
            if asn is not None and sample_asn != asn:
                continue
            if role is not None and sample_role != role:
                continue
            values.extend(batch)
        return Distribution(values)

    def shift(self, asn: int, role: Optional[str] = None) -> Optional[float]:
        """Median RFA for the AS — the FRPLA tunnel-length estimate.

        None when no samples.  A value clearly above 0 flags invisible
        tunnels; the magnitude approximates the mean return-tunnel
        length (Sec. 3.4: it actually measures tunnel length *plus*
        routing asymmetry, hence the need for many vantage points).
        """
        distribution = self.distribution(asn, role)
        return distribution.median if len(distribution) else None

    def suspicious_asns(self, threshold: float = 1.5) -> List[int]:
        """ASes whose median RFA exceeds ``threshold``."""
        result = []
        for asn in self.asns():
            shift = self.shift(asn)
            if shift is not None and shift >= threshold:
                result.append(asn)
        # A gauge, not a counter: the verdict is recomputable and
        # repeated calls must not accumulate.
        self.obs.metrics.set_gauge("frpla.suspicious_asns", len(result))
        if self.obs.events.info:
            self.obs.events.emit(
                "technique.verdict", technique="frpla",
                success=bool(result), asns=result,
            )
        return result
