"""Combined revelation pipeline (Sec. 4) and tunnel-aware traceroute.

The measurement campaign looks at the last three hops ``X, Y, D`` of
every trace: ``X`` and ``Y`` are candidate endpoints of an invisible
tunnel.  A second trace targeting ``Y`` either reveals hidden hops in
one shot (DPR), or exposes one new hop whose recursive probing peels
the tunnel backwards (BRPR).  The classification follows Table 3:

* ``DPR`` — all hidden hops appeared in a single revelation trace;
* ``BRPR`` — hops appeared strictly one at a time over the recursion;
* ``DPR_OR_BRPR`` — a single-LSR tunnel: the two are indistinguishable;
* ``HYBRID`` — part revealed in one shot, part recursively;
* ``NONE`` — nothing revealed (technique failure or no tunnel).
"""

from __future__ import annotations

import logging
from contextlib import nullcontext
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from repro.core.frpla import rfa_of_hop
# net before measure: see the matching note in repro.core.brpr.
from repro.net.router import Router
from repro.measure.service import BudgetExceeded
from repro.obs import DEBUG, Obs
from repro.probing.prober import Prober, Trace

__all__ = [
    "RevelationMethod",
    "Revelation",
    "reveal_tunnel",
    "candidate_endpoints",
    "TunnelAwareTraceroute",
]

logger = logging.getLogger(__name__)


class RevelationMethod(Enum):
    """How a tunnel's content was (or wasn't) revealed."""

    DPR = "dpr"
    BRPR = "brpr"
    DPR_OR_BRPR = "dpr-or-brpr"
    HYBRID = "hybrid"
    NONE = "none"


@dataclass
class Revelation:
    """Result of the combined revelation process for one X, Y pair."""

    ingress: int  #: X — candidate Ingress LER address
    egress: int  #: Y — candidate Egress LER address
    revealed: List[int] = field(default_factory=list)  #: forward order
    method: RevelationMethod = RevelationMethod.NONE
    traces_used: int = 0
    probes_used: int = 0
    #: Number of new hops revealed by each successive trace.
    step_reveals: List[int] = field(default_factory=list)
    labels_seen: bool = False
    #: False when a probe budget aborted the recursion mid-way: the
    #: revealed hops are valid but the tunnel may extend further.
    #: Incomplete revelations are kept in the campaign result and
    #: re-run whole on resume.
    complete: bool = True
    #: Registry name of the technique that produced this revelation
    #: ("combined" for the classic untriggered DPR/BRPR recursion).
    technique: str = "combined"

    @property
    def success(self) -> bool:
        """True when at least one hidden hop was exposed."""
        return bool(self.revealed)

    @property
    def tunnel_length(self) -> int:
        """Revealed LSR count (the paper's LSP content size)."""
        return len(self.revealed)


def candidate_endpoints(trace: Trace) -> Optional[Tuple[int, int]]:
    """The ``X, Y`` pair from a trace ending ``..., X, Y, D``.

    Requires the trace to have reached its destination with at least
    three responding hops; returns None otherwise.
    """
    if not trace.destination_reached:
        return None
    tail = trace.last_responsive(3)
    if len(tail) < 3:
        return None
    x, y, d = tail
    if d.address != trace.dst:
        return None
    # Consecutive hop positions — a gap would hide a responding router
    # between the candidates.
    if y.probe_ttl != x.probe_ttl + 1 or d.probe_ttl != y.probe_ttl + 1:
        return None
    return (x.address, y.address)


def _fresh_between(
    trace: Trace, ingress: int, target: int, exclude: set
) -> Optional[List[int]]:
    """New addresses strictly between ``ingress`` and ``target``.

    None signals an unusable trace (target unreached or ingress
    bypassed) as opposed to an empty revelation.
    """
    addresses = trace.addresses
    if (
        not trace.destination_reached
        or ingress not in addresses
        or target not in addresses
    ):
        return None
    start = addresses.index(ingress)
    end = addresses.index(target)
    if end <= start:
        return None
    return [
        address
        for address in addresses[start + 1 : end]
        if address not in exclude
    ]


def reveal_tunnel(
    prober: Prober,
    vantage_point: Router,
    ingress: int,
    egress: int,
    max_steps: int = 16,
    start_ttl: int = 1,
    technique: str = "combined",
    scope: str = "revelation",
) -> Revelation:
    """Run the Sec. 4 revelation recursion on one candidate pair.

    The first trace targets the egress; every newly revealed hop
    closest to the ingress becomes the next target, until a trace adds
    nothing or stops passing through the ingress.

    ``technique`` names the registry entry driving the recursion (it
    is stamped on the result and keys the ``technique.*`` counters);
    ``scope`` is the probe-budget scope the traces charge.
    """
    obs = getattr(prober, "obs", None) or Obs()
    metrics = obs.metrics
    events = obs.events
    revelation = Revelation(
        ingress=ingress, egress=egress, technique=technique
    )
    exclude = {ingress, egress}
    target = egress
    metrics.inc("revelation.attempts")
    metrics.inc(f"technique.{technique}.attempts")
    # Charge the probes below to the caller's budget scope when the
    # prober routes through a measurement service.
    service = getattr(prober, "service", None)
    budget_scope = (
        service.scope(scope) if service is not None else nullcontext()
    )
    with obs.tracer.span(
        "revelation.reveal",
        vp=vantage_point.name, ingress=ingress, egress=egress,
    ), budget_scope:
        try:
            for _ in range(max_steps):
                trace = prober.traceroute(
                    vantage_point, target, start_ttl=start_ttl
                )
                revelation.traces_used += 1
                revelation.probes_used += len(trace.hops)
                revelation.labels_seen |= trace.contains_labels()
                metrics.inc("revelation.traces")
                fresh = _fresh_between(trace, ingress, target, exclude)
                if events.debug:
                    events.emit(
                        "revelation.step", DEBUG, ingress=ingress,
                        egress=egress, target=target,
                        fresh=list(fresh) if fresh else [],
                    )
                if not fresh:
                    break
                metrics.inc("revelation.steps")
                metrics.inc("revelation.revealed_hops", len(fresh))
                revelation.step_reveals.append(len(fresh))
                # Revealed hops sit between the ingress and the
                # previous frontier: prepend in forward order.
                revelation.revealed[:0] = fresh
                exclude.update(fresh)
                target = fresh[0]
        except BudgetExceeded as exc:
            # Keep what the aborted recursion revealed, classified
            # from the completed steps and flagged incomplete; the
            # caller decides whether to hold onto it.
            revelation.complete = False
            revelation.method = _classify(revelation)
            metrics.inc("revelation.incomplete")
            metrics.inc(f"technique.{technique}.incomplete")
            exc.partial_revelation = revelation
            raise
    revelation.method = _classify(revelation)
    metrics.inc("revelation.verdict." + revelation.method.value)
    if revelation.success:
        metrics.inc(f"technique.{technique}.success")
        metrics.inc(
            f"technique.{technique}.revealed_hops",
            len(revelation.revealed),
        )
    if events.info:
        events.emit(
            "revelation.verdict", ingress=ingress, egress=egress,
            method=revelation.method.value,
            revealed=len(revelation.revealed),
        )
        events.emit(
            "technique.verdict", technique=technique,
            success=revelation.success, ingress=ingress, egress=egress,
            revealed=len(revelation.revealed),
            method=revelation.method.value,
        )
    logger.debug(
        "revelation %d->%d: %s, %d hops over %d traces",
        ingress, egress, revelation.method.value,
        len(revelation.revealed), revelation.traces_used,
    )
    return revelation


def _classify(revelation: Revelation) -> RevelationMethod:
    reveals = revelation.step_reveals
    total = sum(reveals)
    if total == 0:
        return RevelationMethod.NONE
    if total == 1:
        return RevelationMethod.DPR_OR_BRPR
    multi_steps = sum(1 for count in reveals if count >= 2)
    single_steps = sum(1 for count in reveals if count == 1)
    if multi_steps and single_steps:
        return RevelationMethod.HYBRID
    if multi_steps:
        return RevelationMethod.DPR
    return RevelationMethod.BRPR


class TunnelAwareTraceroute:
    """The conclusion's envisioned tool (Table 6).

    Runs a normal Paris traceroute, uses the FRPLA return/forward
    asymmetry jump between consecutive hops as an invisible-tunnel
    trigger, and applies the revelation recursion on the fly, splicing
    revealed hops into the reported path.
    """

    def __init__(
        self,
        prober: Prober,
        trigger_threshold: int = 2,
        start_ttl: int = 1,
    ) -> None:
        self.prober = prober
        #: Minimum RFA jump between consecutive hops that triggers
        #: revelation (tunnels shorter than this stay undetected).
        self.trigger_threshold = trigger_threshold
        self.start_ttl = start_ttl

    def trace(
        self, vantage_point: Router, dst: int
    ) -> Tuple[List[int], List[Revelation]]:
        """Traceroute ``dst``; return the enriched path + revelations."""
        base = self.prober.traceroute(
            vantage_point, dst, start_ttl=self.start_ttl
        )
        hops = base.responsive_hops
        path = [hop.address for hop in hops]
        revelations: List[Revelation] = []
        enriched: List[int] = []
        previous_rfa: Optional[int] = None
        for index, hop in enumerate(hops):
            sample = rfa_of_hop(hop)
            if (
                sample is not None
                and previous_rfa is not None
                and index > 0
                and sample.rfa - previous_rfa >= self.trigger_threshold
            ):
                revelation = reveal_tunnel(
                    self.prober,
                    vantage_point,
                    ingress=hops[index - 1].address,
                    egress=hop.address,
                    start_ttl=self.start_ttl,
                )
                if revelation.success:
                    revelations.append(revelation)
                    enriched.extend(revelation.revealed)
            if sample is not None:
                previous_rfa = sample.rfa
            enriched.append(hop.address)
        return enriched, revelations
