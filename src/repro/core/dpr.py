"""DPR — Direct Path Revelation (Sec. 3.2).

Inside an MPLS network, packets toward internal prefixes that are
*not* announced into LDP (everything but loopbacks under the Juniper
default, or under Cisco LDP prefix filters) follow explicit IGP routes
without labels.  Tracing the egress LER's incoming interface address —
revealed by PHP in the original trace — therefore exposes the entire
hidden LSP in a single extra traceroute.
"""

from __future__ import annotations

import logging
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import List, Optional

from repro.net.router import Router
from repro.obs import Obs
from repro.probing.prober import Prober, Trace

__all__ = ["DprResult", "direct_path_revelation"]

logger = logging.getLogger(__name__)


@dataclass
class DprResult:
    """Outcome of one DPR attempt between a candidate LER pair."""

    ingress: int  #: candidate Ingress LER address (X)
    egress: int  #: candidate Egress LER address (Y, the trace target)
    trace: Trace  #: the revelation trace toward the egress
    revealed: List[int] = field(default_factory=list)  #: hidden hops, in order
    through_ingress: bool = False  #: did the trace pass through X?
    labels_seen: bool = False  #: MPLS labels in the revelation trace

    @property
    def success(self) -> bool:
        """DPR succeeded: new unlabeled hops appeared between X and Y."""
        return (
            self.through_ingress
            and bool(self.revealed)
            and not self.labels_seen
            and self.trace.destination_reached
        )


def direct_path_revelation(
    prober: Prober,
    vantage_point: Router,
    ingress: int,
    egress: int,
    known: Optional[List[int]] = None,
    start_ttl: int = 1,
) -> DprResult:
    """Run one DPR probe: traceroute the egress address directly.

    ``known`` lists addresses already attributed to the path (they do
    not count as revelations).  The result's ``revealed`` holds the new
    addresses strictly between the ingress and the egress, in forward
    order.
    """
    obs = getattr(prober, "obs", None) or Obs()
    obs.metrics.inc("dpr.attempts")
    obs.metrics.inc("technique.dpr.attempts")
    service = getattr(prober, "service", None)
    scope = service.scope("dpr") if service is not None else nullcontext()
    with obs.tracer.span(
        "revelation.dpr",
        vp=vantage_point.name, ingress=ingress, egress=egress,
    ), scope:
        trace = prober.traceroute(
            vantage_point, egress, start_ttl=start_ttl
        )
        result = DprResult(ingress=ingress, egress=egress, trace=trace)
        addresses = trace.addresses
        if ingress in addresses:
            result.through_ingress = True
            if trace.destination_reached and egress in addresses:
                start = addresses.index(ingress)
                end = addresses.index(egress)
                if end > start:
                    # Only labels *inside* the candidate tunnel
                    # disqualify DPR; other ASes on the way may
                    # legitimately expose explicit tunnels.
                    hops = trace.responsive_hops
                    result.labels_seen = any(
                        hop.has_labels for hop in hops[start : end + 1]
                    )
                    exclude = set(known or ())
                    exclude.update((ingress, egress))
                    result.revealed = [
                        address
                        for address in addresses[start + 1 : end]
                        if address not in exclude
                    ]
    if result.success:
        obs.metrics.inc("dpr.success")
        obs.metrics.inc("dpr.revealed_hops", len(result.revealed))
        obs.metrics.inc("technique.dpr.success")
        obs.metrics.inc(
            "technique.dpr.revealed_hops", len(result.revealed)
        )
    if obs.events.info:
        obs.events.emit(
            "technique.verdict", technique="dpr",
            success=result.success, ingress=ingress, egress=egress,
            revealed=len(result.revealed),
        )
    return result
