"""BRPR — Backward Recursive Path Revelation (Sec. 3.2).

With LDP announcing *all* internal prefixes (the Cisco default), even
traces toward internal addresses ride LSPs — but PHP makes the LSP
toward each internal prefix end one hop early, exposing the
penultimate router.  Tracing the egress LER's incoming interface thus
reveals exactly one new hop (the last LSR); tracing *that* hop reveals
the one before it, and so on backwards until the ingress LER.
"""

from __future__ import annotations

import logging
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import List, Optional

# net before measure: the measurement plane pulls in the dataplane,
# whose packet model enters the net<->mpls import cycle from the wrong
# side unless repro.net is initialised first.
from repro.net.router import Router
from repro.measure.service import BudgetExceeded
from repro.obs import Obs
from repro.probing.prober import Prober, Trace

__all__ = ["BrprStep", "BrprResult", "backward_recursive_revelation"]

logger = logging.getLogger(__name__)


@dataclass
class BrprStep:
    """One recursion step: a trace toward the latest revealed hop."""

    target: int
    trace: Trace
    revealed: Optional[int]  #: the new hop this step exposed, if any
    labels_seen: bool


@dataclass
class BrprResult:
    """Outcome of a full BRPR recursion between a candidate LER pair."""

    ingress: int
    egress: int
    steps: List[BrprStep] = field(default_factory=list)
    #: Hidden hops in forward order (ingress side first).
    revealed: List[int] = field(default_factory=list)
    #: False when a probe budget aborted the recursion mid-way.
    complete: bool = True

    @property
    def success(self) -> bool:
        """True when at least one hop was revealed.

        Per-step label checks already happened: a hop only counts as
        revealed when it answered without a label.  Labels elsewhere
        in a step's trace (the explicit-tunnel cross-validation) do
        not invalidate the recursion.
        """
        return bool(self.revealed)

    @property
    def probes_used(self) -> int:
        """Total probes spent across the recursion."""
        return sum(len(step.trace.hops) for step in self.steps)


def _new_hop_before(
    trace: Trace, ingress: int, target: int, exclude: set
) -> Optional[int]:
    """The revealed hop immediately before ``target``, if usable.

    BRPR's criterion (Sec. 3.3) only constrains the *last* hop of each
    recursion trace: it must be a fresh address answering without an
    MPLS label.  Earlier hops may be labelled (the cross-validation on
    explicit tunnels) or absent (the invisible case).
    """
    addresses = trace.addresses
    if (
        not trace.destination_reached
        or ingress not in addresses
        or target not in addresses
    ):
        return None
    start = addresses.index(ingress)
    end = addresses.index(target)
    if end <= start + 1:
        return None  # nothing between the ingress and the target
    candidate = addresses[end - 1]
    if candidate in exclude:
        return None
    hop = trace.hop_of(candidate)
    if hop is None or hop.has_labels:
        return None
    return candidate


def backward_recursive_revelation(
    prober: Prober,
    vantage_point: Router,
    ingress: int,
    egress: int,
    max_steps: int = 16,
    start_ttl: int = 1,
) -> BrprResult:
    """Peel an invisible tunnel one LSR at a time, egress first.

    The recursion targets the egress, then each newly revealed hop,
    and stops when a trace reveals nothing new, stops passing through
    the ingress, or ``max_steps`` is reached.
    """
    obs = getattr(prober, "obs", None) or Obs()
    obs.metrics.inc("brpr.attempts")
    obs.metrics.inc("technique.brpr.attempts")
    result = BrprResult(ingress=ingress, egress=egress)
    exclude = {ingress, egress}
    target = egress
    service = getattr(prober, "service", None)
    scope = service.scope("brpr") if service is not None else nullcontext()
    with obs.tracer.span(
        "revelation.brpr",
        vp=vantage_point.name, ingress=ingress, egress=egress,
    ), scope:
        try:
            for _ in range(max_steps):
                trace = prober.traceroute(
                    vantage_point, target, start_ttl=start_ttl
                )
                new_hop = _new_hop_before(
                    trace, ingress, target, exclude
                )
                result.steps.append(
                    BrprStep(
                        target=target,
                        trace=trace,
                        revealed=new_hop,
                        labels_seen=trace.contains_labels(),
                    )
                )
                obs.metrics.inc("brpr.steps")
                if new_hop is None:
                    break
                result.revealed.insert(0, new_hop)
                exclude.add(new_hop)
                target = new_hop
        except BudgetExceeded as exc:
            # Keep the hops already peeled, flagged incomplete.
            result.complete = False
            obs.metrics.inc("brpr.incomplete")
            exc.partial_brpr = result
            raise
    if result.success:
        obs.metrics.inc("brpr.success")
        obs.metrics.inc("brpr.revealed_hops", len(result.revealed))
        obs.metrics.inc("technique.brpr.success")
        obs.metrics.inc(
            "technique.brpr.revealed_hops", len(result.revealed)
        )
    if obs.events.info:
        obs.events.emit(
            "technique.verdict", technique="brpr",
            success=result.success, ingress=ingress, egress=egress,
            revealed=len(result.revealed),
        )
    return result
