"""Intra-AS IGP routing (OSPF-like shortest path first).

One :class:`IgpRouting` instance serves a single AS.  It computes
shortest-path distances and equal-cost next-hop sets between all router
pairs of the AS, honouring directional link weights (the source of
intra-domain path asymmetry in the synthetic Internet).

Results are computed lazily per source router and memoised; a full
all-pairs computation is only ever triggered by the analysis code.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.router import Router
from repro.net.topology import Network

__all__ = ["IgpRouting"]

#: Sentinel distance for unreachable routers.
UNREACHABLE = float("inf")


class IgpRouting:
    """Shortest-path routing inside one AS."""

    def __init__(self, network: Network, asn: int) -> None:
        self.network = network
        self.asn = asn
        self.routers: List[Router] = network.routers_in_as(asn)
        self._index: Dict[str, int] = {
            router.name: i for i, router in enumerate(self.routers)
        }
        # Adjacency: router index -> list of (neighbor_index, weight).
        self._adjacency: List[List[Tuple[int, int]]] = [
            [] for _ in self.routers
        ]
        for link in network.intra_as_links(asn):
            a, b = link.routers
            ia, ib = self._index[a.name], self._index[b.name]
            self._adjacency[ia].append((ib, link.weight_ab))
            self._adjacency[ib].append((ia, link.weight_ba))
        # Memoised SPF results per source index.
        self._dist_cache: Dict[int, List[float]] = {}
        self._next_hop_cache: Dict[int, List[Tuple[int, ...]]] = {}

    # ------------------------------------------------------------------

    def _require_member(self, router: Router) -> int:
        index = self._index.get(router.name)
        if index is None or self.routers[index] is not router:
            raise ValueError(
                f"{router.name} is not in AS{self.asn}"
            )
        return index

    def _spf(self, source: int) -> None:
        """Dijkstra from ``source``; fills distance and next-hop caches.

        ``next_hops[v]`` holds the *first hops out of the source* on all
        equal-cost shortest paths toward ``v`` (sorted, deduplicated),
        which is exactly what a FIB stores.
        """
        n = len(self.routers)
        dist: List[float] = [UNREACHABLE] * n
        first_hops: List[set] = [set() for _ in range(n)]
        dist[source] = 0.0
        queue: List[Tuple[float, int]] = [(0.0, source)]
        while queue:
            d, u = heapq.heappop(queue)
            if d > dist[u]:
                continue
            for v, weight in self._adjacency[u]:
                nd = d + weight
                if nd < dist[v]:
                    dist[v] = nd
                    first_hops[v] = (
                        {v} if u == source else set(first_hops[u])
                    )
                    heapq.heappush(queue, (nd, v))
                elif nd == dist[v]:
                    if u == source:
                        first_hops[v].add(v)
                    else:
                        first_hops[v] |= first_hops[u]
        self._dist_cache[source] = dist
        self._next_hop_cache[source] = [
            tuple(sorted(hops)) for hops in first_hops
        ]

    def _ensure(self, source: int) -> None:
        if source not in self._dist_cache:
            self._spf(source)

    # ------------------------------------------------------------------
    # Public API

    def distance(self, source: Router, target: Router) -> float:
        """IGP metric distance; ``inf`` when unreachable."""
        si = self._require_member(source)
        ti = self._require_member(target)
        self._ensure(si)
        return self._dist_cache[si][ti]

    def next_hops(self, source: Router, target: Router) -> List[Router]:
        """Equal-cost next-hop routers from ``source`` toward ``target``.

        Empty when ``target`` is unreachable; raises when either router
        is outside the AS.  ``source == target`` yields an empty list.
        """
        si = self._require_member(source)
        ti = self._require_member(target)
        if si == ti:
            return []
        self._ensure(si)
        return [self.routers[i] for i in self._next_hop_cache[si][ti]]

    def hop_count(self, source: Router, target: Router) -> Optional[int]:
        """Number of links on one shortest path (first ECMP branch)."""
        path = self.shortest_path(source, target)
        return None if path is None else len(path) - 1

    def shortest_path(
        self, source: Router, target: Router, ecmp_rank: int = 0
    ) -> Optional[List[Router]]:
        """One concrete shortest path, deterministically chosen.

        ``ecmp_rank`` selects among equal-cost branches at every hop
        (modulo the branch count), letting callers enumerate diversity.
        """
        if self.distance(source, target) == UNREACHABLE:
            return None
        path = [source]
        current = source
        guard = 0
        while current is not target:
            hops = self.next_hops(current, target)
            if not hops:
                return None
            current = hops[ecmp_rank % len(hops)]
            path.append(current)
            guard += 1
            if guard > len(self.routers) + 1:
                raise RuntimeError("IGP path did not converge (loop?)")
        return path

    def closest(
        self, source: Router, candidates: Sequence[Router]
    ) -> Optional[Router]:
        """The candidate with minimal IGP distance from ``source``.

        Ties break on router name for determinism.  ``None`` when no
        candidate is reachable.
        """
        best: Optional[Router] = None
        best_key: Tuple[float, str] = (UNREACHABLE, "")
        for candidate in candidates:
            d = self.distance(source, candidate)
            if d == UNREACHABLE:
                continue
            key = (d, candidate.name)
            if best is None or key < best_key:
                best, best_key = candidate, key
        return best

    def ecmp_width(self, source: Router, target: Router) -> int:
        """Number of equal-cost first hops from ``source`` to ``target``."""
        return len(self.next_hops(source, target))
