"""Routing: IGP SPF, BGP-like AS paths, the unified control plane."""

from repro.routing.bgp import BgpRouting
from repro.routing.control import ControlPlane, Route, RouteKind, flow_choice
from repro.routing.igp import IgpRouting

__all__ = [
    "BgpRouting",
    "ControlPlane",
    "IgpRouting",
    "Route",
    "RouteKind",
    "flow_choice",
]
