"""Unified control plane: per-router, per-destination route resolution.

The forwarding engine asks one question at every hop: *given this
router and this destination address, what happens next?*  The answer —
a :class:`Route` — combines:

* longest-prefix match over the global address plan,
* intra-AS IGP shortest paths (with ECMP candidate sets),
* inter-AS BGP selection plus router-level hot-potato egress choice,
* the LDP labelling decision (which FEC, if any, would an ingress LER
  push for this destination).

Routes depend only on ``(router, matched prefix)`` and are memoised on
that key, so replaying millions of probes stays cheap.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.mpls.rsvp import TeTunnelRegistry
from repro.net.addressing import Prefix
from repro.net.router import Router
from repro.net.topology import Link, Network
from repro.net.vendors import LdpPolicy
from repro.routing.bgp import BgpRouting
from repro.routing.igp import IgpRouting

__all__ = ["RouteKind", "Route", "ControlPlane", "flow_choice"]


class RouteKind(Enum):
    """Classification of a resolved route."""

    LOCAL = "local"  #: destination address belongs to this router
    ATTACHED = "attached"  #: destination prefix directly connected
    INTERNAL = "internal"  #: intra-AS route toward an internal prefix
    EXTERNAL = "external"  #: inter-AS (BGP) route
    UNREACHABLE = "unreachable"  #: no matching route


@dataclass(frozen=True)
class Route:
    """Resolved forwarding behaviour for one (router, prefix) pair.

    Attributes:
        kind: see :class:`RouteKind`.
        prefix: the matched destination prefix (None when unreachable).
        next_hops: ECMP candidate next-hop routers (empty for LOCAL /
            ATTACHED / UNREACHABLE; ATTACHED resolves the neighbour from
            the concrete destination address at forwarding time).
        egress: for EXTERNAL routes, the hot-potato egress border
            router of the local AS; for INTERNAL routes, the router the
            matched prefix attaches to (the LSP tail).
        fec: the LDP FEC prefix an MPLS ingress would push for this
            route, or None when the destination is not label-switched.
    """

    kind: RouteKind
    prefix: Optional[Prefix] = None
    next_hops: Tuple[Router, ...] = ()
    egress: Optional[Router] = None
    fec: Optional[Prefix] = None


def flow_choice(candidates: Sequence[Router], key: str, flow_id: int) -> Router:
    """Deterministic ECMP pick: stable per (router, flow).

    Paris traceroute keeps the flow identifier constant so one trace
    follows one path; we reproduce that by hashing ``(key, flow_id)``
    with CRC32 (Python's builtin ``hash`` is salted per process and
    would break reproducibility).
    """
    if not candidates:
        raise ValueError("no ECMP candidates to choose from")
    if len(candidates) == 1:
        return candidates[0]
    digest = zlib.crc32(f"{key}|{flow_id}".encode("ascii"))
    return candidates[digest % len(candidates)]


class ControlPlane:
    """Omniscient route resolver over a :class:`Network`."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self.bgp = BgpRouting(network)
        #: Installed RSVP-TE tunnels (see :mod:`repro.mpls.rsvp`).
        self.te = TeTunnelRegistry()
        self._igp: Dict[int, IgpRouting] = {}
        self._route_cache: Dict[Tuple[str, Prefix], Route] = {}
        self._ldp_all_prefixes: Dict[int, bool] = {}
        self._egress_cache: Dict[Tuple[str, int], Optional[Router]] = {}
        self._invalidation_listeners: List[Callable[[], None]] = []

    def add_invalidation_listener(
        self, callback: Callable[[], None]
    ) -> None:
        """Register a callback fired whenever memoised routes may be
        stale (``invalidate()`` or a TE tunnel install).  Dependent
        caches — e.g. the forwarding engine's trajectory cache — hook
        in here so topology edits cannot leave them serving old paths.
        """
        self._invalidation_listeners.append(callback)

    def remove_invalidation_listener(
        self, callback: Callable[[], None]
    ) -> None:
        """Deregister ``callback`` (no error when absent).

        Long-lived shared control planes (serve snapshots) see engines
        attach and detach continuously; without removal every detached
        engine's flush hooks would pile up and pin the engine alive.
        """
        try:
            self._invalidation_listeners.remove(callback)
        except ValueError:
            pass

    def _notify_invalidation(self) -> None:
        for callback in self._invalidation_listeners:
            callback()

    def install_te_tunnel(self, tunnel) -> None:
        """Validate and install an RSVP-TE tunnel at its head-end."""
        self.te.install(tunnel, self.network)
        self._notify_invalidation()

    def remove_te_tunnel(self, head: str, tail: str) -> None:
        """Tear an RSVP-TE tunnel down (KeyError when absent).

        Fires the invalidation listeners like install does: traffic
        previously steered onto the explicit path falls back to the
        LDP/IGP route, so memoised trajectories and compiled programs
        must flush.
        """
        self.te.remove(head, tail)
        self._notify_invalidation()

    # ------------------------------------------------------------------
    # Sub-plane access

    def igp(self, asn: int) -> IgpRouting:
        """The (lazily built) IGP instance for AS ``asn``."""
        instance = self._igp.get(asn)
        if instance is None:
            instance = IgpRouting(self.network, asn)
            self._igp[asn] = instance
        return instance

    def invalidate(self) -> None:
        """Drop all memoised state (after topology edits)."""
        self._igp.clear()
        self._route_cache.clear()
        self._ldp_all_prefixes.clear()
        self._egress_cache.clear()
        self.bgp.invalidate()
        self._notify_invalidation()

    # ------------------------------------------------------------------
    # LDP policy

    def as_labels_all_prefixes(self, asn: int) -> bool:
        """Effective AS-wide LDP policy.

        A non-loopback internal prefix only has an end-to-end label path
        when *every* MPLS router of the AS advertises all prefixes;
        any loopback-only router (Juniper default) filters the rest
        (Sec. 3.3 of the paper).
        """
        cached = self._ldp_all_prefixes.get(asn)
        if cached is None:
            mpls_routers = [
                router
                for router in self.network.routers_in_as(asn)
                if router.mpls.enabled
            ]
            cached = bool(mpls_routers) and all(
                router.mpls.ldp_policy is LdpPolicy.ALL_PREFIXES
                for router in mpls_routers
            )
            self._ldp_all_prefixes[asn] = cached
        return cached

    def ldp_labels_prefix(self, asn: int, prefix: Prefix) -> bool:
        """True when AS ``asn`` distributes a label for ``prefix``."""
        if self.network.asn_of_prefix(prefix) != asn:
            return False
        owner = self.network.prefix_table.exact(prefix)
        if prefix.length == 32 and isinstance(owner, Router):
            # Loopbacks are labelled under both vendor policies.
            return True
        return self.as_labels_all_prefixes(asn)

    # ------------------------------------------------------------------
    # Helpers

    def attached_routers(self, prefix: Prefix) -> List[Router]:
        """Routers with an interface (or loopback) inside ``prefix``."""
        owner = self.network.prefix_table.exact(prefix)
        if isinstance(owner, Router):
            return [owner]
        if isinstance(owner, Link):
            return sorted(owner.routers, key=lambda r: r.name)
        return []

    def hot_potato_egress(
        self, router: Router, next_asn: int
    ) -> Optional[Router]:
        """Closest local border router with a link into ``next_asn``."""
        key = (router.name, next_asn)
        if key in self._egress_cache:
            return self._egress_cache[key]
        borders = [
            candidate
            for candidate in self.network.routers_in_as(router.asn)
            if any(
                interface.neighbor.router.asn == next_asn
                for interface in candidate.interfaces.values()
            )
        ]
        egress: Optional[Router]
        if not borders:
            egress = None
        elif router in borders:
            egress = router
        else:
            egress = self.igp(router.asn).closest(router, borders)
        self._egress_cache[key] = egress
        return egress

    def _external_peer(self, egress: Router, next_asn: int) -> Optional[Router]:
        """Deterministic eBGP peer pick on ``egress`` toward ``next_asn``."""
        peers = sorted(
            {
                interface.neighbor.router
                for interface in egress.interfaces.values()
                if interface.neighbor.router.asn == next_asn
            },
            key=lambda r: r.name,
        )
        return peers[0] if peers else None

    def is_fec_egress(self, router: Router, fec: Prefix) -> bool:
        """True when ``router`` terminates the LSP for ``fec``.

        The LSP tail is the first router attached to (or owning) the
        FEC prefix; it advertises the null label to its upstream.
        """
        owner = self.network.prefix_table.exact(fec)
        if isinstance(owner, Router):
            return owner is router
        return router.is_connected_to(fec)

    # ------------------------------------------------------------------
    # Route resolution

    def resolve(self, router: Router, address: int) -> Route:
        """Resolve the route at ``router`` for destination ``address``."""
        if router.owns(address):
            return Route(kind=RouteKind.LOCAL)
        hit = self.network.prefix_table.lookup(address)
        if hit is None:
            return Route(kind=RouteKind.UNREACHABLE)
        prefix = hit[0]
        cache_key = (router.name, prefix)
        route = self._route_cache.get(cache_key)
        if route is None:
            route = self._resolve_prefix(router, prefix)
            self._route_cache[cache_key] = route
        return route

    def resolve_prefix(self, router: Router, prefix: Prefix) -> Route:
        """Resolve the route at ``router`` for a known prefix (FEC)."""
        if prefix.length == 32 and router.owns(prefix.network):
            return Route(kind=RouteKind.LOCAL, prefix=prefix)
        cache_key = (router.name, prefix)
        route = self._route_cache.get(cache_key)
        if route is None:
            route = self._resolve_prefix(router, prefix)
            self._route_cache[cache_key] = route
        return route

    def _resolve_prefix(self, router: Router, prefix: Prefix) -> Route:
        dst_asn = self.network.asn_of_prefix(prefix)
        if dst_asn is None:
            return Route(kind=RouteKind.UNREACHABLE, prefix=prefix)
        if router.is_connected_to(prefix):
            return Route(kind=RouteKind.ATTACHED, prefix=prefix)
        if dst_asn == router.asn:
            return self._resolve_internal(router, prefix, dst_asn)
        return self._resolve_external(router, prefix, dst_asn)

    def _resolve_internal(
        self, router: Router, prefix: Prefix, asn: int
    ) -> Route:
        igp = self.igp(asn)
        attached = self.attached_routers(prefix)
        tail = igp.closest(router, [r for r in attached if r.asn == asn])
        if tail is None:
            # No same-AS attachment is IGP-reachable (partitioned AS,
            # or the prefix only attaches across a border).
            return Route(kind=RouteKind.UNREACHABLE, prefix=prefix)
        next_hops = tuple(igp.next_hops(router, tail))
        if not next_hops:
            return Route(kind=RouteKind.UNREACHABLE, prefix=prefix)
        fec: Optional[Prefix] = None
        if router.mpls.enabled and self.ldp_labels_prefix(asn, prefix):
            fec = prefix
        return Route(
            kind=RouteKind.INTERNAL,
            prefix=prefix,
            next_hops=next_hops,
            egress=tail,
            fec=fec,
        )

    def _resolve_external(
        self, router: Router, prefix: Prefix, dst_asn: int
    ) -> Route:
        next_asn = self.bgp.next_as(router.asn, dst_asn)
        if next_asn is None:
            return Route(kind=RouteKind.UNREACHABLE, prefix=prefix)
        egress = self.hot_potato_egress(router, next_asn)
        if egress is None:
            return Route(kind=RouteKind.UNREACHABLE, prefix=prefix)
        if egress is router:
            peer = self._external_peer(router, next_asn)
            if peer is None:
                return Route(kind=RouteKind.UNREACHABLE, prefix=prefix)
            return Route(
                kind=RouteKind.EXTERNAL,
                prefix=prefix,
                next_hops=(peer,),
                egress=router,
            )
        igp = self.igp(router.asn)
        next_hops = tuple(igp.next_hops(router, egress))
        if not next_hops:
            return Route(kind=RouteKind.UNREACHABLE, prefix=prefix)
        fec: Optional[Prefix] = None
        if router.mpls.enabled and router.mpls.bgp_nexthop_labeling:
            # iBGP next-hop-self: tunnel to the egress LER's loopback.
            loopback_fec = Prefix(egress.loopback, 32)
            if self.ldp_labels_prefix(router.asn, loopback_fec):
                fec = loopback_fec
        return Route(
            kind=RouteKind.EXTERNAL,
            prefix=prefix,
            next_hops=next_hops,
            egress=egress,
            fec=fec,
        )
