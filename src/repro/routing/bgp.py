"""Inter-domain (BGP-like) routing at the AS level.

The simulator needs inter-AS reachability with realistic *path
asymmetry* but not the full BGP decision process.  We model:

* an AS-level adjacency graph derived from inter-AS links,
* shortest-AS-path selection with a deterministic tie-break
  (lowest neighbor ASN), computed per destination AS with BFS,
* optional per-AS *preference overrides* so scenario builders can force
  asymmetric AS paths (mimicking policy/hot-potato effects beyond what
  router-level hot-potato already produces).

Router-level egress selection (hot potato) lives in
:mod:`repro.routing.control`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.net.topology import Network

__all__ = ["BgpRouting"]


class BgpRouting:
    """AS-level route selection over the AS adjacency graph."""

    def __init__(self, network: Network) -> None:
        self.network = network
        # Derived lazily on first use: a control plane is cheap to
        # construct, so a fresh engine attached to an already-compiled
        # data plane never pays for the AS graph it will not consult.
        self._adjacency: Optional[Dict[int, Set[int]]] = None
        # next_as cache: dst_asn -> {asn -> chosen next asn}
        self._next_as_cache: Dict[int, Dict[int, int]] = {}
        # (asn, dst_asn) -> forced next asn
        self._overrides: Dict[Tuple[int, int], int] = {}

    @property
    def adjacency(self) -> Dict[int, Set[int]]:
        """The AS adjacency graph, derived from inter-AS links."""
        adjacency = self._adjacency
        if adjacency is None:
            adjacency = {}
            for link in self.network.inter_as_links():
                a, b = link.routers
                adjacency.setdefault(a.asn, set()).add(b.asn)
                adjacency.setdefault(b.asn, set()).add(a.asn)
            for asn in self.network.asns():
                adjacency.setdefault(asn, set())
            self._adjacency = adjacency
        return adjacency

    # ------------------------------------------------------------------
    # Configuration

    def set_preference(self, asn: int, dst_asn: int, next_asn: int) -> None:
        """Force AS ``asn`` to route toward ``dst_asn`` via ``next_asn``.

        ``next_asn`` must be an actual neighbor of ``asn``.  Used by
        scenario builders to inject policy-driven asymmetry.
        """
        if next_asn not in self.adjacency.get(asn, ()):
            raise ValueError(
                f"AS{next_asn} is not a neighbor of AS{asn}"
            )
        self._overrides[(asn, dst_asn)] = next_asn
        self._next_as_cache.pop(dst_asn, None)

    # ------------------------------------------------------------------
    # Route computation

    def _compute_tree(self, dst_asn: int) -> Dict[int, int]:
        """BFS from the destination AS over the AS graph.

        Returns ``{asn: next_asn_toward_dst}`` for every AS that can
        reach ``dst_asn``.  Among equal-length AS paths the lowest
        neighbor ASN wins (deterministic tie-break standing in for
        BGP's lower-router-id rules).
        """
        adjacency = self.adjacency
        depth: Dict[int, int] = {dst_asn: 0}
        next_as: Dict[int, int] = {}
        frontier = deque([dst_asn])
        while frontier:
            current = frontier.popleft()
            for neighbor in sorted(adjacency.get(current, ())):
                candidate_depth = depth[current] + 1
                if neighbor not in depth:
                    depth[neighbor] = candidate_depth
                    next_as[neighbor] = current
                    frontier.append(neighbor)
                elif (
                    depth[neighbor] == candidate_depth
                    and current < next_as.get(neighbor, 1 << 62)
                ):
                    next_as[neighbor] = current
        for (asn, target), forced in self._overrides.items():
            if target == dst_asn and asn in next_as:
                next_as[asn] = forced
        return next_as

    def next_as(self, asn: int, dst_asn: int) -> Optional[int]:
        """Next AS on ``asn``'s selected route toward ``dst_asn``.

        ``None`` when unreachable; ``dst_asn`` itself is never returned
        for ``asn == dst_asn`` (the question is meaningless there).
        """
        if asn == dst_asn:
            raise ValueError("destination AS is the local AS")
        tree = self._next_as_cache.get(dst_asn)
        if tree is None:
            tree = self._compute_tree(dst_asn)
            self._next_as_cache[dst_asn] = tree
        return tree.get(asn)

    def as_path(self, asn: int, dst_asn: int) -> Optional[List[int]]:
        """The full selected AS path, inclusive of both ends."""
        if asn == dst_asn:
            return [asn]
        path = [asn]
        current = asn
        guard = 0
        while current != dst_asn:
            nxt = self.next_as(current, dst_asn)
            if nxt is None:
                return None
            path.append(nxt)
            current = nxt
            guard += 1
            if guard > len(self.adjacency) + 1:
                raise RuntimeError("AS path did not converge (loop?)")
        return path

    def neighbors(self, asn: int) -> Set[int]:
        """Neighbor ASes of ``asn``."""
        return set(self.adjacency.get(asn, ()))

    def invalidate(self) -> None:
        """Drop derived adjacency and cached trees (after edits)."""
        self._adjacency = None
        self._next_as_cache.clear()
