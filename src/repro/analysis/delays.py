"""Delay analysis: RTT correction across revealed tunnels (Fig. 6).

An invisible tunnel makes the RTT *jump* between the ingress and the
egress — the tunnel's propagation delay is real but attributed to a
single inferred link, which confuses delay-anomaly detection (Sec. 1).
Revealing the tunnel decomposes the jump over its actual hops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.revelation import Revelation
from repro.net.router import Router
from repro.probing.prober import Prober, Trace

__all__ = ["RttPoint", "rtt_profile", "corrected_rtt_profile", "rtt_jump"]


@dataclass(frozen=True)
class RttPoint:
    """One point of an RTT-vs-hop curve."""

    hop: int  #: 1-based position along the (possibly enriched) path
    address: int
    rtt_ms: float
    revealed: bool = False  #: True for hops surfaced by revelation


def rtt_profile(trace: Trace) -> List[RttPoint]:
    """Per-hop RTT curve of a plain trace (the "Invisible" line)."""
    return [
        RttPoint(hop=index + 1, address=hop.address, rtt_ms=hop.rtt_ms)
        for index, hop in enumerate(trace.responsive_hops)
    ]


def corrected_rtt_profile(
    trace: Trace,
    revelation: Revelation,
    prober: Prober,
    vantage_point: Router,
) -> List[RttPoint]:
    """RTT curve with the revealed hops spliced in (the "Visible" line).

    RTTs for revealed hops come from pings issued here; they ride the
    same simulated links, so the decomposed curve is consistent with
    the original endpoints.
    """
    points: List[RttPoint] = []
    position = 0
    for hop in trace.responsive_hops:
        if (
            hop.address == revelation.egress
            and revelation.success
            and points
            and points[-1].address == revelation.ingress
        ):
            for revealed_address in revelation.revealed:
                ping = prober.ping(vantage_point, revealed_address)
                position += 1
                points.append(
                    RttPoint(
                        hop=position,
                        address=revealed_address,
                        rtt_ms=ping.rtt_ms if ping.responded else 0.0,
                        revealed=True,
                    )
                )
        position += 1
        points.append(
            RttPoint(hop=position, address=hop.address, rtt_ms=hop.rtt_ms)
        )
    return points


def rtt_jump(profile: List[RttPoint]) -> Tuple[Optional[int], float]:
    """Largest single-hop RTT increase: ``(hop_index, delta_ms)``.

    This is the "jump" Fig. 6 highlights between the ingress and the
    egress of an invisible tunnel; (None, 0.0) for short profiles.
    """
    best_hop: Optional[int] = None
    best_delta = 0.0
    for previous, current in zip(profile, profile[1:]):
        delta = current.rtt_ms - previous.rtt_ms
        if delta > best_delta:
            best_delta = delta
            best_hop = current.hop
    return best_hop, best_delta
