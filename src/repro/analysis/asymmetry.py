"""Routing asymmetry analysis (FRPLA's operating assumption).

FRPLA attributes the return-minus-forward length difference to hidden
tunnel hops, which only works "on average over a large number of
pairs" because forward and return routes differ (BGP hot potato,
Sec. 3.4).  With the simulator's ground truth we can measure that
asymmetry exactly — how often paths differ, by how many hops, and
whether the difference really centres at zero — and thereby validate
the assumption instead of assuming it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.dataplane.engine import ForwardingEngine
from repro.net.router import Router
from repro.stats.distributions import Distribution

__all__ = ["PathPair", "AsymmetryReport", "measure_asymmetry"]


@dataclass(frozen=True)
class PathPair:
    """Ground-truth forward and return router paths for one probe."""

    source: str
    dst: int
    forward: Tuple[str, ...]  #: router names, source first
    reverse: Tuple[str, ...]  #: router names, destination first

    @property
    def complete(self) -> bool:
        """True when both directions were walked end to end."""
        return bool(self.forward) and bool(self.reverse)

    @property
    def length_difference(self) -> int:
        """Return-path links minus forward-path links."""
        return (len(self.reverse) - 1) - (len(self.forward) - 1)

    @property
    def symmetric(self) -> bool:
        """True when the return path is the exact reverse."""
        return self.reverse == tuple(reversed(self.forward))


@dataclass
class AsymmetryReport:
    """Aggregate asymmetry statistics over many pairs."""

    pairs: List[PathPair] = field(default_factory=list)

    @property
    def symmetric_fraction(self) -> float:
        """Share of pairs whose paths mirror exactly (0 when empty)."""
        if not self.pairs:
            return 0.0
        return sum(1 for p in self.pairs if p.symmetric) / len(self.pairs)

    def length_differences(self) -> Distribution:
        """Distribution of return-minus-forward link counts."""
        return Distribution(p.length_difference for p in self.pairs)

    def centred(self, tolerance: float = 1.0) -> bool:
        """Is the length-difference distribution centred near 0?

        This is FRPLA's requirement: routing asymmetry must cancel out
        over many vantage/destination pairs.
        """
        distribution = self.length_differences()
        if not len(distribution):
            return False
        return abs(distribution.median) <= tolerance


def measure_asymmetry(
    engine: ForwardingEngine,
    sources: Sequence[Router],
    destinations: Sequence[int],
    owner_of: Callable[[int], Optional[Router]],
    flow_id: int = 0,
) -> AsymmetryReport:
    """Walk forward and return data paths for every (source, dst).

    Uses full-TTL data probes (ground truth, not ICMP-dependent): the
    forward walk from the source to ``dst``, then the return walk from
    the destination's owner back to the source's loopback.
    """
    report = AsymmetryReport()
    for source in sources:
        for dst in destinations:
            owner = owner_of(dst)
            if owner is None or owner is source:
                continue
            forward = engine.send_probe(
                source, dst, ttl=255, flow_id=flow_id
            )
            if (
                not forward.forward_path
                or forward.forward_path[-1] != owner.name
            ):
                continue
            reverse = engine.send_probe(
                owner, source.loopback, ttl=255, flow_id=flow_id
            )
            if (
                not reverse.forward_path
                or reverse.forward_path[-1] != source.name
            ):
                continue
            report.pairs.append(
                PathPair(
                    source=source.name,
                    dst=dst,
                    forward=tuple(forward.forward_path),
                    reverse=tuple(reverse.forward_path),
                )
            )
    return report
