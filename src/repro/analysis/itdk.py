"""ITDK-like router-level graphs built from traceroute data.

CAIDA's ITDK aggregates traceroute campaigns into a router-level
graph: IP addresses are grouped into routers (alias resolution) and a
link is inferred between routers seen at consecutive hops.  Invisible
MPLS tunnels corrupt exactly this step — the ingress appears adjacent
to every egress — which is what Figs. 1 and 10 quantify.

:class:`TraceGraph` builds such a graph from :class:`Trace` objects.
Alias resolution is pluggable: the simulator supplies ground truth
(address → router name), while ``None`` falls back to one node per
address (interface-level graph).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.net.addressing import format_address
from repro.probing.prober import Trace
from repro.stats.distributions import Distribution

__all__ = ["TraceGraph"]

AliasResolver = Callable[[int], Optional[str]]


class TraceGraph:
    """An undirected router-level graph inferred from traces."""

    def __init__(
        self,
        alias_of: Optional[AliasResolver] = None,
        asn_of: Optional[Callable[[int], Optional[int]]] = None,
        star_nodes: bool = False,
    ) -> None:
        self._alias_of = alias_of or (lambda address: None)
        self._asn_of = asn_of or (lambda address: None)
        #: When True, unresponsive hops become per-trace pseudo-nodes
        #: (ITDK's "pseudo-addresses allocated to non-responsive
        #: routers", pruned in the paper's Fig. 1 cleanup).
        self.star_nodes = star_nodes
        self._adjacency: Dict[str, Set[str]] = {}
        self._node_asn: Dict[str, Optional[int]] = {}
        self._node_addresses: Dict[str, Set[int]] = {}
        self._star_counter = 0

    # ------------------------------------------------------------------
    # Construction

    def node_of(self, address: int) -> str:
        """Node identifier for ``address`` (alias or per-IP fallback)."""
        alias = self._alias_of(address)
        return alias if alias is not None else f"ip_{format_address(address)}"

    def _register(self, address: int) -> str:
        node = self.node_of(address)
        self._adjacency.setdefault(node, set())
        self._node_addresses.setdefault(node, set()).add(address)
        if node not in self._node_asn:
            self._node_asn[node] = self._asn_of(address)
        return node

    def add_edge_addresses(self, a: int, b: int) -> None:
        """Insert the (undirected) link between two addresses' nodes."""
        node_a = self._register(a)
        node_b = self._register(b)
        if node_a == node_b:
            return
        self._adjacency[node_a].add(node_b)
        self._adjacency[node_b].add(node_a)

    def add_trace(self, trace: Trace) -> None:
        """Infer links between consecutive responding hops.

        Only hops at adjacent probe TTLs are linked — a timeout in the
        middle leaves a gap, like CAIDA's processing.  With
        ``star_nodes`` enabled, each unresponsive hop becomes a fresh
        pseudo-node chained between its neighbours instead.
        """
        if self.star_nodes:
            self._add_trace_with_stars(trace)
            return
        hops = trace.responsive_hops
        for hop in hops:
            self._register(hop.address)
        for first, second in zip(hops, hops[1:]):
            if second.probe_ttl == first.probe_ttl + 1:
                self.add_edge_addresses(first.address, second.address)

    def _add_trace_with_stars(self, trace: Trace) -> None:
        previous: Optional[str] = None
        for hop in trace.hops:
            if hop.responded:
                node = self._register(hop.address)
            else:
                self._star_counter += 1
                node = f"star_{self._star_counter}"
                self._adjacency.setdefault(node, set())
                self._node_asn.setdefault(node, None)
            if previous is not None and previous != node:
                self._adjacency[previous].add(node)
                self._adjacency[node].add(previous)
            previous = node

    def prune_pseudo_nodes(self) -> int:
        """Drop star pseudo-nodes (the paper's Fig. 1 cleanup step).

        Returns the number of nodes removed.  Edges through them are
        removed too (not bridged), matching the conservative cleanup.
        """
        pseudo = [
            node for node in self._adjacency if node.startswith("star_")
        ]
        for node in pseudo:
            for peer in self._adjacency[node]:
                self._adjacency[peer].discard(node)
            del self._adjacency[node]
            self._node_asn.pop(node, None)
        return len(pseudo)

    def add_traces(self, traces: Iterable[Trace]) -> None:
        """Ingest many traces."""
        for trace in traces:
            self.add_trace(trace)

    def add_path(self, addresses: List[int]) -> None:
        """Insert a revealed path (e.g. an exposed LSP) as a chain."""
        for a, b in zip(addresses, addresses[1:]):
            self.add_edge_addresses(a, b)

    def remove_edge(self, node_a: str, node_b: str) -> None:
        """Drop one inferred link (used when correcting false edges)."""
        self._adjacency.get(node_a, set()).discard(node_b)
        self._adjacency.get(node_b, set()).discard(node_a)

    # ------------------------------------------------------------------
    # Queries

    def nodes(self) -> List[str]:
        """All node identifiers (sorted)."""
        return sorted(self._adjacency)

    def __len__(self) -> int:
        return len(self._adjacency)

    def has_node(self, node: str) -> bool:
        """True when ``node`` exists."""
        return node in self._adjacency

    def neighbors(self, node: str) -> Set[str]:
        """Adjacent nodes (KeyError when absent)."""
        return set(self._adjacency[node])

    def degree(self, node: str) -> int:
        """Number of distinct neighbours."""
        return len(self._adjacency[node])

    def edge_count(self) -> int:
        """Total undirected edges."""
        return sum(len(peers) for peers in self._adjacency.values()) // 2

    def has_edge(self, node_a: str, node_b: str) -> bool:
        """True when the link was inferred."""
        return node_b in self._adjacency.get(node_a, ())

    def asn_of_node(self, node: str) -> Optional[int]:
        """AS attributed to ``node`` (from its first address)."""
        return self._node_asn.get(node)

    def addresses_of(self, node: str) -> Set[int]:
        """Addresses aggregated into ``node``."""
        return set(self._node_addresses.get(node, ()))

    def nodes_in_as(self, asn: int) -> List[str]:
        """Nodes attributed to ``asn``."""
        return sorted(
            node for node, node_asn in self._node_asn.items()
            if node_asn == asn
        )

    # ------------------------------------------------------------------
    # The paper's statistics

    def degree_distribution(self) -> Distribution:
        """Distribution of node degrees (Figs. 1 and 10)."""
        return Distribution(
            len(peers) for peers in self._adjacency.values()
        )

    def high_degree_nodes(self, threshold: int) -> List[str]:
        """Nodes with degree ≥ ``threshold`` (the HDN trigger, Sec. 4)."""
        return sorted(
            node
            for node, peers in self._adjacency.items()
            if len(peers) >= threshold
        )

    def density(self, nodes: Optional[Iterable[str]] = None) -> float:
        """Graph density ``2E / (V (V-1))``, optionally on a subgraph."""
        if nodes is None:
            vertex_count = len(self._adjacency)
            edge_count = self.edge_count()
        else:
            subset = {n for n in nodes if n in self._adjacency}
            vertex_count = len(subset)
            edge_count = sum(
                1
                for node in subset
                for peer in self._adjacency[node]
                if peer in subset and peer > node
            )
        if vertex_count < 2:
            return 0.0
        return 2 * edge_count / (vertex_count * (vertex_count - 1))

    def clustering_coefficient(self, node: str) -> float:
        """Local clustering coefficient of ``node``."""
        peers = self._adjacency.get(node, set())
        k = len(peers)
        if k < 2:
            return 0.0
        closed = sum(
            1
            for a in peers
            for b in self._adjacency[a]
            if b in peers and b > a
        )
        return 2 * closed / (k * (k - 1))

    def copy(self) -> "TraceGraph":
        """Deep copy (correction keeps the original for comparison)."""
        clone = TraceGraph(self._alias_of, self._asn_of)
        clone._adjacency = {
            node: set(peers) for node, peers in self._adjacency.items()
        }
        clone._node_asn = dict(self._node_asn)
        clone._node_addresses = {
            node: set(addresses)
            for node, addresses in self._node_addresses.items()
        }
        return clone
