"""Alias resolution: grouping interface addresses into routers.

The paper's whole pipeline sits on top of router-level graphs "obtained
by grouping together IP addresses collected with traceroute: this
process is called alias resolution" (Sec. 1).  CAIDA's ITDK does it
for them; offline we implement the classic **Mercator** technique: a
UDP probe to an unused port makes the router answer from the *outgoing*
interface toward the prober, and a response address different from the
probed one proves both addresses sit on one box.

The resolver produces a union-find clustering plus an ``alias_of``
callable directly pluggable into :class:`~repro.analysis.itdk.TraceGraph`,
and can be scored against ground truth (precision/recall over address
pairs) — a luxury the real Internet never grants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.net.router import Router
from repro.probing.prober import Prober

__all__ = ["AliasSets", "MercatorResolver", "score_against_truth"]


class AliasSets:
    """Union-find over addresses; each set is one inferred router."""

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}

    def add(self, address: int) -> None:
        """Register an address (its own singleton set initially)."""
        self._parent.setdefault(address, address)

    def find(self, address: int) -> int:
        """Canonical representative of the address's set."""
        self.add(address)
        root = address
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[address] != root:  # path compression
            self._parent[address], address = root, self._parent[address]
        return root

    def union(self, a: int, b: int) -> None:
        """Merge the sets of ``a`` and ``b``."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            # Smaller representative wins: deterministic set ids.
            if root_b < root_a:
                root_a, root_b = root_b, root_a
            self._parent[root_b] = root_a

    def same(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` were merged."""
        return self.find(a) == self.find(b)

    def sets(self) -> List[Set[int]]:
        """All alias sets, deterministically ordered."""
        by_root: Dict[int, Set[int]] = {}
        for address in self._parent:
            by_root.setdefault(self.find(address), set()).add(address)
        return [by_root[root] for root in sorted(by_root)]

    def alias_of(self) -> Callable[[int], Optional[str]]:
        """An ``alias_of`` resolver for :class:`TraceGraph`."""
        def resolver(address: int) -> Optional[str]:
            if address not in self._parent:
                return None
            from repro.net.addressing import format_address

            return f"router_{format_address(self.find(address))}"

        return resolver

    def __len__(self) -> int:
        return len(self._parent)


@dataclass
class MercatorResolver:
    """Runs Mercator-style alias probing over a set of addresses."""

    prober: Prober
    vantage_point: Router
    probes_sent: int = 0
    aliases_found: int = 0

    def resolve(self, addresses: Iterable[int]) -> AliasSets:
        """Probe every address; merge (probed, response) pairs."""
        sets = AliasSets()
        for address in sorted(set(addresses)):
            sets.add(address)
            result = self.prober.udp_probe(self.vantage_point, address)
            self.probes_sent += 1
            if result.reveals_alias:
                sets.union(address, result.response_address)
                self.aliases_found += 1
        return sets


def score_against_truth(
    sets: AliasSets,
    owner_of: Callable[[int], Optional[object]],
    addresses: Optional[Iterable[int]] = None,
) -> Tuple[float, float]:
    """(precision, recall) of the clustering over address pairs.

    A pair counts as a true alias when ``owner_of`` maps both
    addresses to the same (non-None) object.  Returns (1.0, 1.0) for
    degenerate inputs with no pairs.
    """
    population = sorted(
        set(addresses) if addresses is not None else set()
    )
    if not population:
        population = sorted(
            address for group in sets.sets() for address in group
        )
    true_positive = 0
    predicted = 0
    actual = 0
    for i, a in enumerate(population):
        for b in population[i + 1 :]:
            owner_a, owner_b = owner_of(a), owner_of(b)
            is_true = (
                owner_a is not None and owner_a is owner_b
            )
            is_predicted = sets.same(a, b)
            if is_true:
                actual += 1
            if is_predicted:
                predicted += 1
            if is_true and is_predicted:
                true_positive += 1
    precision = true_positive / predicted if predicted else 1.0
    recall = true_positive / actual if actual else 1.0
    return precision, recall
