"""Internet-model correction (Sec. 7).

Once hidden tunnels are revealed, the biased ITDK-style graph can be
repaired: the false Ingress–Egress edge is replaced by the revealed
LSR chain.  This module applies revelations to a :class:`TraceGraph`
(Fig. 10's degree distributions) and to per-trace path lengths
(Fig. 11's distribution shift).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.analysis.itdk import TraceGraph
from repro.core.revelation import Revelation
from repro.probing.prober import Trace
from repro.stats.distributions import Distribution

__all__ = [
    "corrected_graph",
    "degree_distributions",
    "trace_length",
    "corrected_trace_length",
    "path_length_distributions",
]


def corrected_graph(
    graph: TraceGraph, revelations: Iterable[Revelation]
) -> TraceGraph:
    """Replace false I–E edges with the revealed LSR chains.

    The original graph is left untouched; the copy has, for every
    successful revelation, the direct ingress–egress edge removed and
    the chain ``ingress – H1 – … – Hn – egress`` inserted.
    """
    fixed = graph.copy()
    for revelation in revelations:
        if not revelation.success:
            continue
        node_in = fixed.node_of(revelation.ingress)
        node_out = fixed.node_of(revelation.egress)
        fixed.remove_edge(node_in, node_out)
        fixed.add_path(
            [revelation.ingress, *revelation.revealed, revelation.egress]
        )
    return fixed


def degree_distributions(
    graph: TraceGraph,
    revelations: Iterable[Revelation],
    asn: Optional[int] = None,
) -> Tuple[Distribution, Distribution]:
    """(invisible, visible) degree distributions (Fig. 10).

    ``asn`` restricts both distributions to nodes of one AS (the
    Fig. 10b per-AS view).
    """
    fixed = corrected_graph(graph, revelations)

    def degrees(g: TraceGraph) -> Distribution:
        nodes = g.nodes() if asn is None else g.nodes_in_as(asn)
        return Distribution(g.degree(node) for node in nodes)

    return degrees(graph), degrees(fixed)


def trace_length(trace: Trace) -> Optional[int]:
    """Observed forward path length of a completed trace."""
    return trace.forward_length


def corrected_trace_length(
    trace: Trace,
    revelation_of: Callable[[int, int], Optional[Revelation]],
) -> Optional[int]:
    """Forward path length with hidden hops re-counted.

    For every pair of consecutive responding hops that matches a
    revealed tunnel, the tunnel's hidden hop count is added.  Like the
    paper, only tunnels that were actually revealed contribute (a
    trace through several invisible ASes is still under-counted).
    """
    length = trace.forward_length
    if length is None:
        return None
    hops = trace.responsive_hops
    for first, second in zip(hops, hops[1:]):
        if second.probe_ttl != first.probe_ttl + 1:
            continue
        revelation = revelation_of(first.address, second.address)
        if revelation is not None and revelation.success:
            length += revelation.tunnel_length
    return length


def path_length_distributions(
    traces: Iterable[Trace],
    revelations: Dict[Tuple[int, int], Revelation],
) -> Tuple[Distribution, Distribution]:
    """(invisible, visible) path-length distributions (Fig. 11)."""
    lookup = revelations.get

    def revelation_of(a: int, b: int) -> Optional[Revelation]:
        return lookup((a, b))

    invisible = Distribution()
    visible = Distribution()
    for trace in traces:
        raw = trace_length(trace)
        if raw is None:
            continue
        invisible.add(raw)
        corrected = corrected_trace_length(trace, revelation_of)
        visible.add(corrected if corrected is not None else raw)
    return invisible, visible
