"""Aggregate graph metrics for Internet-model analysis (Sec. 7).

Path-length statistics (shortest paths, average path length, diameter)
and global clustering over :class:`~repro.analysis.itdk.TraceGraph`
instances — the metrics the paper lists as biased by invisible
tunnels.  Pure-Python BFS keeps the module dependency-free; the graphs
involved are campaign-sized, not Internet-sized.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.itdk import TraceGraph
from repro.stats.distributions import Distribution

__all__ = [
    "bfs_distances",
    "connected_components",
    "shortest_path_stats",
    "average_clustering",
    "GraphSummary",
    "summarize_graph",
]


def bfs_distances(graph: TraceGraph, source: str) -> Dict[str, int]:
    """Hop distances from ``source`` to every reachable node."""
    distances = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for peer in graph.neighbors(node):
            if peer not in distances:
                distances[peer] = distances[node] + 1
                frontier.append(peer)
    return distances


def connected_components(graph: TraceGraph) -> List[Set[str]]:
    """Connected components, largest first."""
    remaining = set(graph.nodes())
    components: List[Set[str]] = []
    while remaining:
        seed = next(iter(remaining))
        component = set(bfs_distances(graph, seed))
        components.append(component)
        remaining -= component
    return sorted(components, key=len, reverse=True)


def shortest_path_stats(
    graph: TraceGraph,
    sources: Optional[Iterable[str]] = None,
) -> Tuple[Distribution, int]:
    """(pairwise shortest-path distribution, diameter).

    ``sources`` restricts the BFS origins (sampling for big graphs);
    the distribution covers ordered reachable pairs from them.
    """
    origins = list(sources) if sources is not None else graph.nodes()
    lengths = Distribution()
    diameter = 0
    for source in origins:
        if not graph.has_node(source):
            continue
        for node, distance in bfs_distances(graph, source).items():
            if node == source:
                continue
            lengths.add(distance)
            if distance > diameter:
                diameter = distance
    return lengths, diameter


def average_clustering(graph: TraceGraph) -> float:
    """Mean local clustering coefficient over all nodes (0 if empty)."""
    nodes = graph.nodes()
    if not nodes:
        return 0.0
    return sum(
        graph.clustering_coefficient(node) for node in nodes
    ) / len(nodes)


class GraphSummary:
    """Headline metrics of one graph, ready for before/after tables."""

    def __init__(
        self,
        node_count: int,
        edge_count: int,
        density: float,
        mean_degree: float,
        max_degree: int,
        mean_path_length: Optional[float],
        diameter: int,
        clustering: float,
        components: int,
    ) -> None:
        self.node_count = node_count
        self.edge_count = edge_count
        self.density = density
        self.mean_degree = mean_degree
        self.max_degree = max_degree
        self.mean_path_length = mean_path_length
        self.diameter = diameter
        self.clustering = clustering
        self.components = components

    def as_row(self) -> Tuple:
        """Values in a stable column order (for text tables)."""
        return (
            self.node_count,
            self.edge_count,
            f"{self.density:.4f}",
            f"{self.mean_degree:.2f}",
            self.max_degree,
            "-"
            if self.mean_path_length is None
            else f"{self.mean_path_length:.2f}",
            self.diameter,
            f"{self.clustering:.3f}",
            self.components,
        )


def summarize_graph(
    graph: TraceGraph, path_samples: Optional[int] = None
) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``.

    ``path_samples`` caps the number of BFS origins for the path
    statistics (None = all nodes).
    """
    degrees = graph.degree_distribution()
    nodes = graph.nodes()
    origins = nodes if path_samples is None else nodes[:path_samples]
    lengths, diameter = shortest_path_stats(graph, origins)
    return GraphSummary(
        node_count=len(graph),
        edge_count=graph.edge_count(),
        density=graph.density(),
        mean_degree=degrees.mean if len(degrees) else 0.0,
        max_degree=int(degrees.max) if len(degrees) else 0,
        mean_path_length=lengths.mean if len(lengths) else None,
        diameter=diameter,
        clustering=average_clustering(graph),
        components=len(connected_components(graph)),
    )
