"""Analysis: trace graphs, correction, aliasing, delays, asymmetry."""

from repro.analysis.alias import AliasSets, MercatorResolver, score_against_truth
from repro.analysis.asymmetry import AsymmetryReport, measure_asymmetry
from repro.analysis.correction import (
    corrected_graph,
    degree_distributions,
    path_length_distributions,
)
from repro.analysis.delays import corrected_rtt_profile, rtt_jump, rtt_profile
from repro.analysis.graphs import GraphSummary, summarize_graph
from repro.analysis.itdk import TraceGraph

__all__ = [
    "AliasSets",
    "AsymmetryReport",
    "GraphSummary",
    "MercatorResolver",
    "TraceGraph",
    "corrected_graph",
    "corrected_rtt_profile",
    "degree_distributions",
    "measure_asymmetry",
    "path_length_distributions",
    "rtt_jump",
    "rtt_profile",
    "score_against_truth",
    "summarize_graph",
]
