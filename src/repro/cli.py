"""Command-line interface.

``repro`` exposes the library's main flows without writing Python:

* ``repro emulate <scenario>`` — Fig. 4-style transcripts from the
  emulated testbed;
* ``repro campaign`` — the full synthetic-Internet campaign with the
  per-AS summary tables (optionally saving the dataset as JSON);
* ``repro experiment <id>`` — regenerate one of the paper's tables or
  figures (``fig01`` … ``fig11``, ``table1`` … ``table6``);
* ``repro diff SNAP_A SNAP_B`` — longitudinal comparison of two
  campaign snapshots (tunnels appeared/disappeared/length-changed,
  per-AS deltas);
* ``repro chaos`` — the campaign measured through an injected fault
  profile (loss, latency, rate limiting, blackouts, flaps, malformed
  replies), reporting quarantine counts and the data-quality grade;
* ``repro serve`` — many tenant campaigns multiplexed over shared
  rendered snapshots by the async campaign server (fair scheduling,
  per-tenant budgets and chaos, combined JSONL event stream);
* ``repro fleet`` — a supervised fleet of monitor chains over one
  shared render (copy-on-churn twins, watchdogs, crash-identical
  restarts, churn-spike alerting, SIGTERM drain);
* ``repro list`` — available experiment identifiers.

``repro campaign --checkpoint DIR`` persists every completed probe
unit into a warehouse snapshot under ``DIR``; after an interruption
(budget stop, crash, Ctrl-C), ``repro campaign --resume DIR`` picks
the run back up and produces a result bit-identical to an
uninterrupted one.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    fig01_degree,
    fig04_gns3,
    fig05_ftl,
    fig06_rtt,
    fig07_rfa,
    fig08_te_er,
    fig09_rtla,
    fig10_degree,
    fig11_pathlen,
    graph_summary,
    table1_signatures,
    table2_visibility,
    table3_crossval,
    table4_per_as,
    table5_deployment,
    table6_applicability,
    tnt_crossval,
)
from repro.experiments.common import ContextConfig, campaign_context
from repro.synth.gns3 import SCENARIOS, build_gns3

__all__ = ["EXPERIMENTS", "main"]

#: Experiment id -> module with a ``run()`` returning ``.text``.
EXPERIMENTS: Dict[str, object] = {
    "fig01": fig01_degree,
    "fig04": fig04_gns3,
    "fig05": fig05_ftl,
    "fig06": fig06_rtt,
    "fig07": fig07_rfa,
    "fig08": fig08_te_er,
    "fig09": fig09_rtla,
    "fig10": fig10_degree,
    "fig11": fig11_pathlen,
    "table1": table1_signatures,
    "table2": table2_visibility,
    "table3": table3_crossval,
    "table4": table4_per_as,
    "table5": table5_deployment,
    "table6": table6_applicability,
    "tnt": tnt_crossval,
    "graphs": graph_summary,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Through the Wormhole: Tracking Invisible "
            "MPLS Tunnels' (IMC 2017)"
        ),
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="increase logging verbosity (-v info, -vv debug; one "
        "setting drives stdlib logging and the structured event log)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    emulate = sub.add_parser(
        "emulate", help="traceroute the Fig. 2 testbed"
    )
    emulate.add_argument("scenario", choices=SCENARIOS)
    emulate.add_argument(
        "--target", default="CE2.left",
        help="named target, e.g. CE2.left or PE2.left",
    )

    campaign = sub.add_parser(
        "campaign", help="run the synthetic-Internet campaign"
    )
    campaign.add_argument("--scale", type=float, default=1.0)
    campaign.add_argument("--seed", type=int, default=2017)
    campaign.add_argument("--vantage-points", type=int, default=8)
    campaign.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the parallel trajectory prewarm "
        "(results are bit-identical to a serial run)",
    )
    campaign.add_argument(
        "--probe-budget", type=int, default=None, metavar="N",
        help="stop cleanly (partial result) after N probes",
    )
    campaign.add_argument(
        "--max-retries", type=int, default=0, metavar="N",
        help="re-probe unresponsive (*) hops up to N times",
    )
    campaign.add_argument(
        "--fault-profile", metavar="NAME", default=None,
        help="inject this chaos profile between the measurement "
        "service and the simulator (see 'repro chaos --list')",
    )
    campaign.add_argument(
        "--compiled", action="store_true",
        help="evaluate probes through the compiled batch data plane "
        "(results are bit-identical to the scalar walk)",
    )
    campaign.add_argument(
        "--batch-window", type=int, default=1, metavar="N",
        help="traceroute TTL rounds submitted per probe batch "
        "(1 = serial probing)",
    )
    store_group = campaign.add_mutually_exclusive_group()
    store_group.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="checkpoint the run into a warehouse snapshot under DIR "
        "(each completed trace/ping/revelation is persisted; an "
        "interrupted run becomes resumable)",
    )
    store_group.add_argument(
        "--resume", metavar="DIR", default=None,
        help="resume the campaign checkpointed under DIR; completed "
        "work is restored, only the remainder is probed, and the "
        "result is bit-identical to an uninterrupted run",
    )
    log_group = campaign.add_mutually_exclusive_group()
    log_group.add_argument(
        "--record", metavar="PATH", default=None,
        help="record every probe exchange to a JSONL probe log",
    )
    log_group.add_argument(
        "--replay", metavar="PATH", default=None,
        help="serve probes from a recorded probe log (no simulation)",
    )
    campaign.add_argument(
        "--stats", action="store_true",
        help="print per-phase timings and engine cache counters",
    )
    campaign.add_argument(
        "--save", metavar="PATH", default=None,
        help="write the campaign dataset as JSON",
    )
    campaign.add_argument(
        "--report", metavar="PATH", default=None,
        help="write a markdown campaign report",
    )
    campaign.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the structured event trace as JSONL (all levels)",
    )
    campaign.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the metrics registry snapshot (.prom/.txt for "
        "Prometheus text format, anything else for JSON)",
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate one table/figure"
    )
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    experiment.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the experiment's structured document as "
        "JSON (experiments without one fail with an error)",
    )
    experiment.add_argument(
        "--scale", type=float, default=None,
        help="AS size multiplier for context-driven experiments "
        "(those whose run() takes a ContextConfig)",
    )
    experiment.add_argument(
        "--seed", type=int, default=None,
        help="topology seed for context-driven experiments",
    )
    experiment.add_argument(
        "--vantage-points", type=int, default=None,
        help="vantage point count for context-driven experiments",
    )
    experiment.add_argument(
        "--stubs-per-transit", type=int, default=None,
        help="stub AS fan-out for context-driven experiments",
    )

    diff = sub.add_parser(
        "diff",
        help="compare two campaign snapshots (tunnel churn, per-AS "
        "deltas)",
    )
    diff.add_argument(
        "snapshot_a",
        help="first snapshot: its directory, or a warehouse root "
        "holding exactly one snapshot",
    )
    diff.add_argument("snapshot_b", help="second snapshot, likewise")
    diff.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the diff document (repro.store.diff/1) as "
        "JSON",
    )

    monitor = sub.add_parser(
        "monitor",
        help="run a continuous-monitoring chain: churn + incremental "
        "epoch re-campaigns + tunnel-lifecycle timeline",
    )
    monitor.add_argument(
        "--warehouse", metavar="DIR", default=None,
        help="warehouse root holding the chain's epoch snapshots "
        "(re-running the same command resumes the chain); required "
        "unless --list",
    )
    monitor.add_argument(
        "--epochs", type=int, default=3, metavar="N",
        help="monitoring epochs to run (epoch 0 is the baseline "
        "full campaign)",
    )
    monitor.add_argument(
        "--churn-profile", default="gentle", metavar="NAME",
        help="shipped churn profile applied between epochs "
        "(see --list)",
    )
    monitor.add_argument(
        "--list", action="store_true", dest="list_profiles",
        help="list shipped churn profiles and exit",
    )
    monitor.add_argument("--scale", type=float, default=0.3)
    monitor.add_argument("--seed", type=int, default=2017)
    monitor.add_argument("--vantage-points", type=int, default=4)
    monitor.add_argument("--stubs-per-transit", type=int, default=3)
    monitor.add_argument(
        "--churn-seed", type=int, default=None, metavar="N",
        help="churn RNG seed (defaults to --seed)",
    )
    monitor.add_argument(
        "--full", action="store_true",
        help="disable the incremental path: re-reveal every pair "
        "every epoch (the control arm)",
    )
    monitor.add_argument(
        "--fault-profile", metavar="NAME", default=None,
        help="non-mutating chaos profile injected under every epoch "
        "(flap profiles are refused — churn owns the topology)",
    )
    monitor.add_argument(
        "--probe-budget", type=int, default=None, metavar="N",
        help="per-epoch campaign probe budget; exhausting it stops "
        "the chain with a resumable partial epoch",
    )
    monitor.add_argument(
        "--compiled", action="store_true",
        help="evaluate probes through the compiled batch data plane",
    )
    monitor.add_argument(
        "--batch-window", type=int, default=1, metavar="N",
        help="traceroute TTL rounds submitted per probe batch",
    )
    monitor.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the folded timeline (repro.monitor/1) as JSON",
    )
    monitor.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the structured event stream (monitor.* counters "
        "included) as JSONL",
    )

    configs = sub.add_parser(
        "configs", help="dump IOS-style configs for a testbed scenario"
    )
    configs.add_argument("scenario", choices=SCENARIOS)
    configs.add_argument(
        "--router", default=None, help="only this router's config"
    )

    export = sub.add_parser(
        "export", help="write every figure's data series as CSV"
    )
    export.add_argument("directory")

    chaos = sub.add_parser(
        "chaos",
        help="run the campaign under an injected fault profile",
    )
    chaos.add_argument(
        "--profile", default="hostile",
        help="shipped fault profile name (see --list)",
    )
    chaos.add_argument(
        "--list", action="store_true", dest="list_profiles",
        help="list shipped fault profiles and exit",
    )
    chaos.add_argument("--scale", type=float, default=0.5)
    chaos.add_argument("--seed", type=int, default=2017)
    chaos.add_argument("--vantage-points", type=int, default=4)
    chaos.add_argument(
        "--probe-budget", type=int, default=None, metavar="N",
        help="stop cleanly (partial result) after N probes",
    )
    chaos.add_argument(
        "--max-retries", type=int, default=1, metavar="N",
        help="re-probe unresponsive (*) hops up to N times",
    )
    chaos.add_argument(
        "--compiled", action="store_true",
        help="evaluate probes through the compiled batch data plane "
        "(bit-identical, faults included)",
    )
    chaos.add_argument(
        "--batch-window", type=int, default=1, metavar="N",
        help="traceroute TTL rounds submitted per probe batch",
    )
    chaos.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive ping losses before a target is parked "
        "until the end of the phase (0 disables the breaker)",
    )
    chaos_store = chaos.add_mutually_exclusive_group()
    chaos_store.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="checkpoint the faulty run into a warehouse snapshot "
        "under DIR (resume is bit-identical, faults included)",
    )
    chaos_store.add_argument(
        "--resume", metavar="DIR", default=None,
        help="resume the chaos run checkpointed under DIR",
    )
    chaos.add_argument(
        "--quarantine-out", metavar="PATH", default=None,
        help="write the quarantined-reply records as JSONL",
    )
    chaos.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the run summary (data_quality included) as JSON",
    )

    serve = sub.add_parser(
        "serve",
        help="multiplex tenant campaigns over shared rendered "
        "snapshots",
    )
    serve.add_argument(
        "--tenants", type=int, default=8, metavar="N",
        help="tenant campaigns to submit",
    )
    serve.add_argument(
        "--snapshots", type=int, default=2, metavar="M",
        help="distinct topology seeds the tenants are spread over "
        "(each is rendered once and shared)",
    )
    serve.add_argument("--scale", type=float, default=0.3)
    serve.add_argument("--seed", type=int, default=2017)
    serve.add_argument("--vantage-points", type=int, default=3)
    serve.add_argument("--stubs-per-transit", type=int, default=2)
    serve.add_argument(
        "--max-active", type=int, default=4,
        help="sessions running concurrently (each holds one worker "
        "thread; the rest queue)",
    )
    serve.add_argument(
        "--weights", default=None, metavar="W1,W2,...",
        help="comma-separated fair-scheduler weights cycled over the "
        "tenants (default: equal)",
    )
    serve.add_argument(
        "--probe-budget", type=int, default=None, metavar="N",
        help="per-tenant probe budget (clean partial result when hit)",
    )
    serve.add_argument(
        "--fault-profile", metavar="NAME", default=None,
        help="chaos profile injected per tenant; network-mutating "
        "profiles are refused on shared snapshots (see 'repro chaos "
        "--list')",
    )
    serve.add_argument(
        "--max-targets", type=int, default=None, metavar="N",
        help="truncate each tenant's target list to N targets",
    )
    serve.add_argument(
        "--events-out", metavar="PATH", default=None,
        help="write the combined tenant-tagged event stream as JSONL",
    )
    serve.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the server summary (registry reuse, per-tenant "
        "grants) as JSON",
    )

    fleet = sub.add_parser(
        "fleet",
        help="run a supervised fleet of monitor chains over one "
        "shared rendered topology (copy-on-churn twins, crash "
        "recovery, churn alerting)",
    )
    fleet.add_argument(
        "--warehouse", metavar="DIR", required=True,
        help="warehouse root shared by every chain; the folded "
        "repro.fleet/1 aggregate is written there as fleet.json",
    )
    fleet.add_argument(
        "--chains", type=int, default=3, metavar="N",
        help="concurrent monitor chains (chain i churns with seed "
        "base+i over a private copy-on-churn twin)",
    )
    fleet.add_argument("--epochs", type=int, default=3, metavar="N")
    fleet.add_argument("--scale", type=float, default=0.3)
    fleet.add_argument("--seed", type=int, default=2017)
    fleet.add_argument("--vantage-points", type=int, default=4)
    fleet.add_argument("--stubs-per-transit", type=int, default=3)
    fleet.add_argument(
        "--churn-profile", default="gentle", metavar="NAME",
        help="shipped churn profile applied between epochs "
        "(see 'repro monitor --list')",
    )
    fleet.add_argument(
        "--churn-seed", type=int, default=None, metavar="N",
        help="base churn seed; chain i uses base+i (defaults to "
        "--seed)",
    )
    fleet.add_argument(
        "--fault-profile", metavar="NAME", default=None,
        help="non-mutating chaos profile injected under every "
        "chain's epochs (flap profiles are refused — churn owns "
        "each twin)",
    )
    fleet.add_argument(
        "--probe-budget", type=int, default=None, metavar="N",
        help="per-epoch campaign probe budget per chain",
    )
    fleet.add_argument(
        "--compiled", action="store_true",
        help="evaluate probes through the compiled batch data plane",
    )
    fleet.add_argument(
        "--batch-window", type=int, default=1, metavar="N",
        help="traceroute TTL rounds submitted per probe batch",
    )
    fleet.add_argument(
        "--restart-budget", type=int, default=3, metavar="N",
        help="deaths tolerated per chain before it is parked "
        "(parking downgrades the fleet grade, never fails the run)",
    )
    fleet.add_argument(
        "--epoch-deadline", type=int, default=None, metavar="N",
        help="watchdog: kill and restart any epoch that submits "
        "more than N probes (simulated clock — probe ticks)",
    )
    fleet.add_argument(
        "--backoff-base-ms", type=float, default=25.0, metavar="MS",
        help="base for the exponential restart backoff",
    )
    fleet.add_argument(
        "--kill-chain", action="append", default=None,
        metavar="INDEX[:PROBES]",
        help="fault drill: hard-kill chain INDEX's first attempt "
        "after PROBES cumulative probes (default 100); repeatable. "
        "The chain restarts from its checkpoints and must converge "
        "byte-identically",
    )
    fleet.add_argument(
        "--alert-factor", type=float, default=2.0, metavar="X",
        help="churn-spike alert when a transition's lifecycle-event "
        "count exceeds X times the chain's trailing baseline",
    )
    fleet.add_argument(
        "--alert-min-events", type=int, default=2, metavar="N",
        help="minimum lifecycle events before a spike can alert",
    )
    fleet.add_argument(
        "--resume", action="store_true",
        help="continue a fleet whose warehouse already holds a "
        "fleet.json (completed epochs are skipped; crashed epochs "
        "resume from their checkpoints)",
    )
    fleet.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the fleet report (ledger + repro.fleet/1 "
        "document) as JSON",
    )

    sub.add_parser("list", help="list experiment identifiers")
    return parser


def _cmd_emulate(args: argparse.Namespace) -> int:
    testbed = build_gns3(args.scenario)
    trace = testbed.traceroute(args.target)
    print(testbed.render(trace))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    trace_sink = None
    if args.trace_out:
        from repro.obs import DEBUG, JsonlSink, get_event_log

        # Attach before the campaign stack exists: the global event
        # log is exactly what lets --trace-out capture a run the CLI
        # has not built yet.
        trace_sink = JsonlSink(args.trace_out)
        log = get_event_log()
        log.attach(trace_sink)
        log.set_level(DEBUG)
    from repro.store import StoreMismatch

    if args.fault_profile is not None:
        from repro.faults import fault_profile

        try:
            fault_profile(args.fault_profile)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        context = campaign_context(
            ContextConfig(
                scale=args.scale,
                seed=args.seed,
                vantage_points=args.vantage_points,
                workers=args.workers,
                probe_budget=args.probe_budget,
                max_retries=args.max_retries,
                record_path=args.record,
                replay_path=args.replay,
                checkpoint_dir=args.resume or args.checkpoint,
                resume=args.resume is not None,
                fault_profile=args.fault_profile,
                compiled_plane=args.compiled,
                batch_window=args.batch_window,
            )
        )
    except StoreMismatch as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = context.result
    registry = context.internet.engine.obs.metrics
    if trace_sink is not None:
        from repro.obs import get_event_log

        log = get_event_log()
        log.emit(
            "campaign.metrics", counters=registry.counters_snapshot()
        )
        log.detach(trace_sink)
        trace_sink.close()
    if args.metrics_out:
        from repro.obs.export import write_metrics

        write_metrics(registry, args.metrics_out)
    print(
        f"{context.internet.network}, {len(context.internet.vps)} VPs; "
        f"{len(result.traces)} traces, {len(result.pairs)} candidate "
        f"pairs, {len(result.successful_revelations())} tunnels revealed"
    )
    if result.partial:
        print(f"PARTIAL RUN: {result.stop_summary()}")
    if args.fault_profile is not None and result.data_quality:
        quality = result.data_quality
        print(
            f"data quality: {quality.get('grade')} "
            f"(confidence {quality.get('confidence')}, "
            f"response rate {quality.get('response_rate')})"
        )
    if result.checkpoint_dir:
        print(f"snapshot: {result.checkpoint_dir}")
    if args.record:
        print(f"probe log recorded to {args.record}")
    if args.replay:
        print(f"probes replayed from {args.replay}")
    if args.stats:
        from repro.campaign.report import render_perf_section
        from repro.serve.registry import default_registry

        print()
        print(render_perf_section(result))
        reuse = default_registry().stats()
        if reuse["builds_avoided"]:
            print(
                f"snapshot reuse: {reuse['builds_avoided']} "
                f"internet build(s) avoided this process "
                f"(~{reuse['saved_ms']} ms saved across "
                f"{reuse['renders']} rendered snapshot(s))"
            )
    print()
    print(table4_per_as.run(context.config).text)
    print()
    print(table5_deployment.run(context.config).text)
    if args.save:
        from repro.probing.dataset import save_dataset

        save_dataset(
            args.save,
            result.traces,
            pings=result.pings,
            revelations=result.revelations,
            metadata={"seed": args.seed, "scale": args.scale},
        )
        print(f"\ndataset written to {args.save}")
    if args.report:
        from pathlib import Path

        from repro.campaign.report import render_report

        names = {
            asn: profile.name
            for asn, profile in context.internet.profiles.items()
        }
        Path(args.report).write_text(
            render_report(
                result,
                context.aggregator,
                frpla=context.frpla,
                as_names=names,
            )
        )
        print(f"report written to {args.report}")
    if args.trace_out:
        print(f"trace written to {args.trace_out}")
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    module = EXPERIMENTS[args.id]
    overrides = {
        key: value
        for key, value in (
            ("scale", args.scale),
            ("seed", args.seed),
            ("vantage_points", args.vantage_points),
            ("stubs_per_transit", args.stubs_per_transit),
        )
        if value is not None
    }
    if overrides:
        import inspect

        if "config" not in inspect.signature(module.run).parameters:
            print(
                f"error: experiment {args.id!r} takes no context "
                "overrides",
                file=sys.stderr,
            )
            return 2
        result = module.run(ContextConfig(**overrides))
    else:
        result = module.run()
    print(result.text)
    if args.json:
        document = getattr(result, "document", None)
        if document is None:
            print(
                f"error: experiment {args.id!r} has no structured "
                "document",
                file=sys.stderr,
            )
            return 2
        import json

        from pathlib import Path

        Path(args.json).write_text(json.dumps(document, indent=1))
        print(f"document written to {args.json}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.store import diff_snapshots, render_diff

    try:
        document = diff_snapshots(args.snapshot_a, args.snapshot_b)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_diff(document))
    if args.json:
        import json

        from pathlib import Path

        Path(args.json).write_text(json.dumps(document, indent=1))
        print(f"diff written to {args.json}")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.synth.churn import CHURN_PROFILES

    if args.list_profiles:
        for name, profile in sorted(CHURN_PROFILES.items()):
            rates = ", ".join(
                f"{field}={value}"
                for field, value in (
                    ("link", profile.link_cost_flips),
                    ("ldp", profile.ldp_policy_flips),
                    ("te+", profile.te_installs),
                    ("te-", profile.te_teardowns),
                    ("vendor", profile.vendor_upgrades),
                )
                if value
            )
            print(f"{name:<10} {rates or 'no events'}")
        return 0
    if not args.warehouse:
        print(
            "error: --warehouse is required (or use --list)",
            file=sys.stderr,
        )
        return 2
    trace_sink = None
    if args.trace_out:
        from repro.obs import DEBUG, JsonlSink, get_event_log

        trace_sink = JsonlSink(args.trace_out)
        log = get_event_log()
        log.attach(trace_sink)
        log.set_level(DEBUG)
    from repro.monitor import MonitorConfig, MonitorLoop
    from repro.store import (
        StoreMismatch,
        chain_snapshots,
        fold_timeline,
        render_timeline,
    )

    try:
        loop = MonitorLoop(
            MonitorConfig(
                warehouse=args.warehouse,
                epochs=args.epochs,
                scale=args.scale,
                seed=args.seed,
                vantage_points=args.vantage_points,
                stubs_per_transit=args.stubs_per_transit,
                churn_profile=args.churn_profile,
                churn_seed=args.churn_seed,
                incremental=not args.full,
                fault_profile=args.fault_profile,
                probe_budget=args.probe_budget,
                compiled_plane=args.compiled,
                batch_window=args.batch_window,
            )
        )
        report = loop.run()
    except (StoreMismatch, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if trace_sink is not None:
            from repro.obs import get_event_log

            log = get_event_log()
            if "loop" in locals():
                # The final counters event carries the monitor.*
                # family for the trace digest (`trace_inspect.py`).
                log.emit(
                    "campaign.metrics",
                    counters=(
                        loop.obs.metrics.counters_snapshot()
                    ),
                )
            log.detach(trace_sink)
            trace_sink.close()
    for outcome in report.epochs:
        state = (
            "partial" if outcome.partial
            else "cached" if outcome.skipped
            else "resumed" if outcome.resumed
            else "ran"
        )
        print(
            f"epoch {outcome.epoch}: {state} — "
            f"{outcome.tunnels} tunnels, {outcome.pairs} pairs "
            f"({outcome.pairs_carried} carried), "
            f"{outcome.campaign_probes} campaign + "
            f"{outcome.evidence_probes} evidence probes, "
            f"{len(outcome.churn_events)} churn events"
        )
    if report.partial:
        print(f"monitor stopped early: {report.stop_reason}")
        return 0
    chains = chain_snapshots(args.warehouse, chain=report.chain)
    timeline = fold_timeline(chains[report.chain])
    print()
    print(render_timeline(timeline))
    if args.json:
        import json
        from pathlib import Path

        Path(args.json).write_text(json.dumps(timeline, indent=1))
        print(f"timeline written to {args.json}")
    return 0


def _parse_kill_plan(specs) -> Dict[int, int]:
    """``--kill-chain INDEX[:PROBES]`` entries -> {index: probes}."""
    plan: Dict[int, int] = {}
    for spec in specs or []:
        index, _, probes = str(spec).partition(":")
        try:
            plan[int(index)] = int(probes) if probes else 100
        except ValueError:
            raise ValueError(
                f"bad --kill-chain {spec!r}: expected "
                "INDEX or INDEX:PROBES"
            ) from None
    return plan


def _cmd_fleet(args: argparse.Namespace) -> int:
    import signal
    from pathlib import Path

    from repro.fleet import FleetConfig, FleetSupervisor
    from repro.store import render_fleet

    try:
        kill_plan = _parse_kill_plan(args.kill_chain)
        config = FleetConfig(
            warehouse=args.warehouse,
            chains=args.chains,
            epochs=args.epochs,
            scale=args.scale,
            seed=args.seed,
            vantage_points=args.vantage_points,
            stubs_per_transit=args.stubs_per_transit,
            churn_profile=args.churn_profile,
            churn_seed=args.churn_seed,
            fault_profile=args.fault_profile,
            probe_budget=args.probe_budget,
            compiled_plane=args.compiled,
            batch_window=args.batch_window,
            restart_budget=args.restart_budget,
            epoch_deadline=args.epoch_deadline,
            backoff_base_ms=args.backoff_base_ms,
            alert_factor=args.alert_factor,
            alert_min_events=args.alert_min_events,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    marker = Path(args.warehouse) / "fleet.json"
    if marker.exists() and not args.resume:
        print(
            f"error: {marker} already exists — this warehouse "
            "already ran a fleet; pass --resume to continue it "
            "(completed epochs are skipped, crashed epochs resume "
            "from their checkpoints) or use a fresh --warehouse",
            file=sys.stderr,
        )
        return 2
    supervisor = FleetSupervisor(config, kill_plan=kill_plan)
    previous = signal.signal(
        signal.SIGTERM,
        lambda signum, frame: supervisor.request_drain(),
    )
    try:
        report = supervisor.run()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        signal.signal(signal.SIGTERM, previous)
    for outcome in report.chains:
        extras = []
        if outcome.restarts:
            extras.append(f"{outcome.restarts} restarts")
        if outcome.injected_kills:
            extras.append(f"{outcome.injected_kills} injected kills")
        if outcome.watchdog_kills:
            extras.append(f"{outcome.watchdog_kills} watchdog kills")
        print(
            f"chain {outcome.index} ({outcome.chain}): "
            f"{outcome.status} — "
            f"{outcome.epochs_completed}/{config.epochs} epochs"
            + (f" ({', '.join(extras)})" if extras else "")
        )
        if outcome.stop_reason:
            print(f"  {outcome.stop_reason}")
    if report.drained:
        print(
            "fleet drained; re-run with --resume to continue "
            "every unfinished chain"
        )
    print()
    print(render_fleet(report.document))
    if args.json:
        import json

        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=1)
        )
        print(f"fleet report written to {args.json}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import FAULT_PROFILES, fault_profile

    if args.list_profiles:
        for name, profile in FAULT_PROFILES.items():
            kind = (
                "inert" if profile.inert
                else "network flaps" if profile.mutates_network
                else "reply faults"
            )
            print(f"{name:12s} {kind}")
        return 0
    try:
        fault_profile(args.profile)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    from repro.store import StoreMismatch

    try:
        context = campaign_context(
            ContextConfig(
                scale=args.scale,
                seed=args.seed,
                vantage_points=args.vantage_points,
                probe_budget=args.probe_budget,
                max_retries=args.max_retries,
                breaker_threshold=args.breaker_threshold or None,
                fault_profile=args.profile,
                checkpoint_dir=args.resume or args.checkpoint,
                resume=args.resume is not None,
                compiled_plane=args.compiled,
                batch_window=args.batch_window,
            )
        )
    except StoreMismatch as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = context.result
    quality = result.data_quality or {}
    counters = quality.get("counters", {})
    print(
        f"chaos profile {args.profile!r}: "
        f"{len(result.traces)} traces, {len(result.pairs)} candidate "
        f"pairs, {len(result.successful_revelations())} tunnels revealed"
    )
    print(
        f"faults injected: {counters.get('faults_injected', 0)}, "
        f"quarantined: {counters.get('quarantined', 0)}, "
        f"retries exhausted: {counters.get('retries_exhausted', 0)}, "
        f"pings parked: {counters.get('pings_parked', 0)}"
    )
    print(
        f"data quality: {quality.get('grade', 'n/a')} "
        f"(confidence {quality.get('confidence', 'n/a')}, "
        f"response rate {quality.get('response_rate', 'n/a')})"
    )
    if result.partial:
        summary = result.stop_summary()
        if summary:
            # The orchestrator's hint names the generic subcommand;
            # a chaos run must resume under the same fault profile.
            summary = summary.replace(
                "repro campaign --resume",
                f"repro chaos --profile {args.profile} --resume",
            )
        print(f"PARTIAL RUN: {summary}")
    if result.checkpoint_dir:
        print(f"snapshot: {result.checkpoint_dir}")
    if args.quarantine_out:
        import json

        with open(args.quarantine_out, "w", encoding="utf-8") as sink:
            for record in result.quarantine:
                sink.write(json.dumps(record, sort_keys=True))
                sink.write("\n")
        print(f"quarantine log written to {args.quarantine_out}")
    if args.json:
        import json

        from pathlib import Path

        document = {
            "profile": args.profile,
            "seed": args.seed,
            "scale": args.scale,
            "partial": result.partial,
            "volumes": {
                "traces": len(result.traces),
                "pings": len(result.pings),
                "pairs": len(result.pairs),
                "revelations": len(result.revelations),
                "revealed": len(result.successful_revelations()),
                "quarantined": len(result.quarantine),
            },
            "data_quality": quality,
        }
        Path(args.json).write_text(json.dumps(document, indent=1))
        print(f"summary written to {args.json}")
    return 0


def _cmd_configs(args: argparse.Namespace) -> int:
    from repro.synth.ios_config import network_configs, router_config

    testbed = build_gns3(args.scenario)
    if args.router is not None:
        print(router_config(testbed.network.router(args.router)))
        return 0
    for name, text in network_configs(testbed.network).items():
        print(f"### {name}")
        print(text)
        print()
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.export import export_all_figures

    written = export_all_figures(args.directory)
    for path in written:
        print(path)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import AdmissionError, ServeClient, TenantSpec, TopologySpec

    if args.tenants < 1 or args.snapshots < 1:
        print(
            "error: --tenants and --snapshots must be >= 1",
            file=sys.stderr,
        )
        return 2
    weights = [1.0] * args.tenants
    if args.weights:
        try:
            cycle = [float(w) for w in args.weights.split(",")]
        except ValueError:
            print(
                f"error: bad --weights {args.weights!r}",
                file=sys.stderr,
            )
            return 2
        weights = [cycle[i % len(cycle)] for i in range(args.tenants)]
    sink = None
    if args.events_out:
        from repro.obs import JsonlSink

        sink = JsonlSink(args.events_out)
    client = ServeClient(max_active=args.max_active, stream_sink=sink)
    try:
        handles = []
        for index in range(args.tenants):
            spec = TenantSpec(
                tenant=f"tenant-{index:02d}",
                topology=TopologySpec(
                    scale=args.scale,
                    seed=args.seed + index % args.snapshots,
                    vantage_points=args.vantage_points,
                    stubs_per_transit=args.stubs_per_transit,
                ),
                weight=weights[index],
                probe_budget=args.probe_budget,
                fault_profile=args.fault_profile,
                max_targets=args.max_targets,
            )
            try:
                handles.append(client.submit(spec))
            except AdmissionError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        for handle in handles:
            result = handle.wait()
            revealed = len(result.successful_revelations())
            flag = " PARTIAL" if result.partial else ""
            print(
                f"{handle.spec.tenant}: {len(result.traces)} traces, "
                f"{len(result.pairs)} candidate pairs, "
                f"{revealed} tunnels revealed{flag}"
            )
        stats = client.stats()
        reuse = stats["registry"]
        print(
            f"snapshots: {reuse['renders']} rendered, "
            f"{reuse['builds_avoided']} build(s) avoided "
            f"(~{reuse['saved_ms']} ms saved)"
        )
        if args.json:
            import json

            from pathlib import Path

            Path(args.json).write_text(json.dumps(stats, indent=1))
            print(f"summary written to {args.json}")
        if args.events_out:
            print(f"event stream written to {args.events_out}")
    finally:
        client.close()
        if sink is not None:
            sink.close()
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    for identifier in sorted(EXPERIMENTS):
        module = EXPERIMENTS[identifier]
        summary = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{identifier:8s} {summary}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    from repro.obs import configure

    configure(args.verbose)
    handlers: Dict[str, Callable[[argparse.Namespace], int]] = {
        "emulate": _cmd_emulate,
        "campaign": _cmd_campaign,
        "experiment": _cmd_experiment,
        "diff": _cmd_diff,
        "monitor": _cmd_monitor,
        "fleet": _cmd_fleet,
        "chaos": _cmd_chaos,
        "configs": _cmd_configs,
        "export": _cmd_export,
        "serve": _cmd_serve,
        "list": _cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
