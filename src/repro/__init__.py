"""repro — a reproduction of *Through the Wormhole: Tracking Invisible
MPLS Tunnels* (Vanaubel, Mérindol, Pansiot, Donnet — ACM IMC 2017).

The package provides, from the bottom up:

* a packet-level network simulator with faithful MPLS/TTL mechanics
  (:mod:`repro.net`, :mod:`repro.routing`, :mod:`repro.mpls`,
  :mod:`repro.dataplane`),
* a backend-agnostic measurement plane — probe backends, budgets,
  retries, record/replay (:mod:`repro.measure`),
* Paris-traceroute/ping probing (:mod:`repro.probing`),
* the paper's four measurement techniques — FRPLA, RTLA, DPR, BRPR —
  and their combined revelation pipeline (:mod:`repro.core`),
* emulation testbeds and a synthetic Internet (:mod:`repro.synth`),
* campaign orchestration and analysis (:mod:`repro.campaign`,
  :mod:`repro.analysis`),
* one experiment module per table/figure of the paper
  (:mod:`repro.experiments`).

Quickstart::

    from repro import build_gns3, reveal_tunnel

    testbed = build_gns3("backward-recursive")
    trace = testbed.traceroute("CE2.left")
    print(testbed.render(trace))          # the invisible tunnel
    revelation = reveal_tunnel(
        testbed.prober, testbed.vantage_point,
        testbed.address("PE1.left"), testbed.address("PE2.left"),
    )
    print([testbed.name_of(a) for a in revelation.revealed])
"""

from repro.campaign.orchestrator import (
    Campaign,
    CampaignConfig,
    CampaignResult,
)
from repro.core.brpr import backward_recursive_revelation
from repro.core.classify import expected_visibility, technique_applicability
from repro.core.dpr import direct_path_revelation
from repro.core.frpla import FrplaAnalyzer, rfa_of_hop, rfa_samples
from repro.core.revelation import (
    Revelation,
    RevelationMethod,
    TunnelAwareTraceroute,
    candidate_endpoints,
    reveal_tunnel,
)
from repro.core.rtla import RtlaAnalyzer
from repro.core.signatures import Signature, SignatureInventory
from repro.dataplane.engine import ForwardingEngine
from repro.measure import (
    MeasurementPolicy,
    ProbeService,
    RecordingBackend,
    ReplayBackend,
    SimBackend,
)
from repro.mpls.config import MplsConfig, PoppingMode
from repro.net.addressing import Prefix, format_address, parse_address
from repro.net.topology import Network
from repro.net.vendors import BROCADE, CISCO, JUNIPER, JUNIPER_E, LdpPolicy
from repro.probing.prober import Prober, Trace
from repro.routing.control import ControlPlane
from repro.synth.gns3 import build_gns3
from repro.synth.internet import (
    InternetConfig,
    SyntheticInternet,
    build_internet,
)

__version__ = "1.0.0"

__all__ = [
    "BROCADE",
    "CISCO",
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "ControlPlane",
    "ForwardingEngine",
    "FrplaAnalyzer",
    "InternetConfig",
    "JUNIPER",
    "JUNIPER_E",
    "LdpPolicy",
    "MeasurementPolicy",
    "MplsConfig",
    "Network",
    "PoppingMode",
    "Prefix",
    "ProbeService",
    "Prober",
    "RecordingBackend",
    "ReplayBackend",
    "Revelation",
    "RevelationMethod",
    "RtlaAnalyzer",
    "Signature",
    "SignatureInventory",
    "SimBackend",
    "SyntheticInternet",
    "Trace",
    "TunnelAwareTraceroute",
    "backward_recursive_revelation",
    "build_gns3",
    "build_internet",
    "candidate_endpoints",
    "direct_path_revelation",
    "expected_visibility",
    "format_address",
    "parse_address",
    "reveal_tunnel",
    "rfa_of_hop",
    "rfa_samples",
    "technique_applicability",
]
