"""Routers and interfaces.

A :class:`Router` owns a loopback address and a set of numbered
:class:`Interface` objects, each attached to a link subnet.  Routers
carry a vendor profile (TTL signatures, defaults) and an MPLS
configuration; the forwarding engine consults both.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, TYPE_CHECKING

from repro.mpls.config import MplsConfig
from repro.net.addressing import Prefix, format_address
from repro.net.vendors import CISCO, VendorProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.topology import Link

__all__ = ["Interface", "Router"]


class Interface:
    """One router interface attached to a link subnet."""

    __slots__ = ("router", "name", "address", "prefix", "link")

    def __init__(
        self,
        router: "Router",
        name: str,
        address: int,
        prefix: Prefix,
        link: "Link",
    ) -> None:
        self.router = router
        self.name = name
        self.address = address
        self.prefix = prefix
        self.link = link

    @property
    def neighbor(self) -> "Interface":
        """The interface on the other end of the attached link."""
        return self.link.other(self)

    def __repr__(self) -> str:
        return (
            f"Interface({self.router.name}.{self.name}="
            f"{format_address(self.address)})"
        )


class Router:
    """A simulated router.

    Attributes:
        name: unique topology-wide identifier.
        asn: owning Autonomous System number.
        vendor: behaviour profile (signatures, LDP defaults).
        mpls: MPLS configuration (may be the disabled config).
        loopback: /32 loopback address, also the router id.
        icmp_enabled: when False the router never answers probes
            (models ICMP-silent hops).
        icmp_response_rate: probability of answering any one probe
            (models ICMP rate limiting; 1.0 = always).  Sampling is
            deterministic per probe, see the forwarding engine.
    """

    def __init__(
        self,
        name: str,
        asn: int,
        loopback: int,
        vendor: VendorProfile = CISCO,
        mpls: Optional[MplsConfig] = None,
        icmp_enabled: bool = True,
    ) -> None:
        self.name = name
        self.asn = asn
        self.loopback = loopback
        self.vendor = vendor
        self.mpls = mpls if mpls is not None else MplsConfig.disabled()
        self.icmp_enabled = icmp_enabled
        self.icmp_response_rate = 1.0
        self.interfaces: Dict[str, Interface] = {}
        self._addresses: Set[int] = {loopback}

    # ------------------------------------------------------------------
    # Interfaces and addresses

    def attach(
        self, name: str, address: int, prefix: Prefix, link: "Link"
    ) -> Interface:
        """Create and register an interface (used by the topology)."""
        if name in self.interfaces:
            raise ValueError(f"{self.name}: duplicate interface {name!r}")
        interface = Interface(self, name, address, prefix, link)
        self.interfaces[name] = interface
        self._addresses.add(address)
        return interface

    def interface(self, name: str) -> Interface:
        """Look up an interface by name (KeyError when absent)."""
        return self.interfaces[name]

    @property
    def addresses(self) -> Set[int]:
        """All addresses owned by this router (loopback + interfaces)."""
        return self._addresses

    def owns(self, address: int) -> bool:
        """True when ``address`` belongs to this router."""
        return address in self._addresses

    def connected_prefixes(self) -> Iterator[Prefix]:
        """Iterate the link prefixes this router is attached to."""
        for interface in self.interfaces.values():
            yield interface.prefix

    def is_connected_to(self, prefix: Prefix) -> bool:
        """True when one of the router's interfaces sits in ``prefix``."""
        return any(
            interface.prefix == prefix
            for interface in self.interfaces.values()
        )

    def neighbors(self) -> List["Router"]:
        """Directly connected routers, in interface order."""
        return [
            interface.neighbor.router
            for interface in self.interfaces.values()
        ]

    def interface_toward(self, neighbor: "Router") -> Optional[Interface]:
        """The local interface whose link reaches ``neighbor``."""
        for interface in self.interfaces.values():
            if interface.neighbor.router is neighbor:
                return interface
        return None

    def incoming_address_from(self, neighbor: "Router") -> Optional[int]:
        """Address of *this* router's interface facing ``neighbor``.

        This is the address traceroute reveals when a probe arrives
        from ``neighbor`` — the classic "incoming interface" rule.
        """
        interface = self.interface_toward(neighbor)
        return None if interface is None else interface.address

    # ------------------------------------------------------------------
    # Behaviour shortcuts used by the forwarding engine

    @property
    def mpls_enabled(self) -> bool:
        """True when this router label-switches."""
        return self.mpls.enabled

    def initial_ttl(self, message: str) -> int:
        """Initial IP-TTL for a locally-generated ``message``.

        ``message`` is ``"time-exceeded"``, ``"echo-reply"`` or
        ``"echo-request"`` (the latter reuses the echo-reply value).
        """
        if message == "time-exceeded":
            return self.vendor.ttl_time_exceeded
        if message in ("echo-reply", "echo-request"):
            return self.vendor.ttl_echo_reply
        raise ValueError(f"unknown message kind: {message!r}")

    def __repr__(self) -> str:
        return f"Router({self.name}, AS{self.asn})"
