"""IPv4 addressing primitives.

The simulator manipulates millions of addresses while replaying probe
packets, so addresses are plain ``int`` values internally.  This module
provides the conversions, prefix arithmetic, and a longest-prefix-match
table that the routing and forwarding layers are built on.

Everything here is deliberately dependency-free (no :mod:`ipaddress`):
profiling showed stdlib ``IPv4Address`` objects dominating runtime in
early prototypes, and an int-based representation keeps the forwarding
engine allocation-free on its hot path.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "MAX_ADDRESS",
    "parse_address",
    "format_address",
    "Prefix",
    "PrefixTable",
    "AddressAllocator",
]

#: Highest representable IPv4 address (255.255.255.255).
MAX_ADDRESS = 0xFFFFFFFF

_OCTET_RANGE = range(256)


def parse_address(text: str) -> int:
    """Parse dotted-quad ``text`` into an integer address.

    >>> parse_address("10.0.0.1")
    167772161

    Raises :class:`ValueError` for malformed input.
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"malformed IPv4 address: {text!r}")
        octet = int(part)
        if octet not in _OCTET_RANGE:
            raise ValueError(f"octet out of range in address: {text!r}")
        value = (value << 8) | octet
    return value


def format_address(value: int) -> str:
    """Format integer ``value`` as a dotted quad.

    >>> format_address(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= MAX_ADDRESS:
        raise ValueError(f"address out of range: {value}")
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


class Prefix:
    """An IPv4 prefix (network address + mask length).

    Instances are immutable, hashable, and ordered by (network, length)
    so they can be used as dict keys and sorted deterministically.
    """

    __slots__ = ("network", "length")

    def __init__(self, network: int, length: int) -> None:
        if not 0 <= length <= 32:
            raise ValueError(f"prefix length out of range: {length}")
        mask = self.mask_for(length)
        if network & ~mask & MAX_ADDRESS:
            raise ValueError(
                f"host bits set in prefix {format_address(network)}/{length}"
            )
        self.network = network
        self.length = length

    @staticmethod
    def mask_for(length: int) -> int:
        """Return the netmask integer for a prefix ``length``."""
        if length == 0:
            return 0
        return (MAX_ADDRESS << (32 - length)) & MAX_ADDRESS

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` notation."""
        try:
            addr_text, len_text = text.split("/")
        except ValueError as exc:
            raise ValueError(f"malformed prefix: {text!r}") from exc
        return cls(parse_address(addr_text), int(len_text))

    @classmethod
    def containing(cls, address: int, length: int) -> "Prefix":
        """Return the /``length`` prefix that contains ``address``."""
        return cls(address & cls.mask_for(length), length)

    @property
    def mask(self) -> int:
        """Netmask of this prefix as an integer."""
        return self.mask_for(self.length)

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered by this prefix."""
        return 1 << (32 - self.length)

    @property
    def broadcast(self) -> int:
        """Highest address in the prefix."""
        return self.network | (~self.mask & MAX_ADDRESS)

    def contains(self, address: int) -> bool:
        """True when ``address`` falls within this prefix."""
        return (address & self.mask) == self.network

    def covers(self, other: "Prefix") -> bool:
        """True when ``other`` is a (non-strict) sub-prefix of this one."""
        return other.length >= self.length and self.contains(other.network)

    def hosts(self) -> Iterator[int]:
        """Iterate over usable host addresses.

        For prefixes shorter than /31 the network and broadcast
        addresses are skipped, matching conventional subnetting.  /31
        (point-to-point, RFC 3021) and /32 yield every address.
        """
        if self.length >= 31:
            yield from range(self.network, self.broadcast + 1)
        else:
            yield from range(self.network + 1, self.broadcast)

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Iterate sub-prefixes of this prefix at ``new_length``."""
        if new_length < self.length:
            raise ValueError(
                f"cannot subnet /{self.length} into shorter /{new_length}"
            )
        step = 1 << (32 - new_length)
        for network in range(self.network, self.broadcast + 1, step):
            yield Prefix(network, new_length)

    def __contains__(self, address: int) -> bool:
        return self.contains(address)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Prefix)
            and self.network == other.network
            and self.length == other.length
        )

    def __hash__(self) -> int:
        return hash((self.network, self.length))

    def __lt__(self, other: "Prefix") -> bool:
        return (self.network, self.length) < (other.network, other.length)

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    def __str__(self) -> str:
        return f"{format_address(self.network)}/{self.length}"


class PrefixTable:
    """Longest-prefix-match table mapping prefixes to arbitrary values.

    The table keeps one dict per prefix length and matches from the
    longest populated length downward, which is fast for the small
    number of distinct lengths a simulated network uses (/32 loopbacks,
    /30 or /31 links, aggregate blocks).
    """

    def __init__(self) -> None:
        self._by_length: Dict[int, Dict[int, Tuple[Prefix, object]]] = {}
        self._lengths: List[int] = []
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: Prefix, value: object) -> None:
        """Insert (or replace) the entry for ``prefix``."""
        bucket = self._by_length.get(prefix.length)
        if bucket is None:
            bucket = {}
            self._by_length[prefix.length] = bucket
            self._lengths = sorted(self._by_length, reverse=True)
        if prefix.network not in bucket:
            self._size += 1
        bucket[prefix.network] = (prefix, value)

    def remove(self, prefix: Prefix) -> None:
        """Remove the entry for ``prefix`` (KeyError when absent)."""
        bucket = self._by_length.get(prefix.length)
        if bucket is None or prefix.network not in bucket:
            raise KeyError(str(prefix))
        del bucket[prefix.network]
        self._size -= 1
        if not bucket:
            del self._by_length[prefix.length]
            self._lengths = sorted(self._by_length, reverse=True)

    def lookup(self, address: int) -> Optional[Tuple[Prefix, object]]:
        """Return ``(prefix, value)`` for the longest match, or None."""
        for length in self._lengths:
            network = address & Prefix.mask_for(length)
            hit = self._by_length[length].get(network)
            if hit is not None:
                return hit
        return None

    def lookup_value(self, address: int) -> Optional[object]:
        """Return only the value of the longest match, or None."""
        hit = self.lookup(address)
        return None if hit is None else hit[1]

    def exact(self, prefix: Prefix) -> Optional[object]:
        """Return the value stored for exactly ``prefix``, or None."""
        bucket = self._by_length.get(prefix.length)
        if bucket is None:
            return None
        hit = bucket.get(prefix.network)
        return None if hit is None else hit[1]

    def items(self) -> Iterator[Tuple[Prefix, object]]:
        """Iterate all ``(prefix, value)`` entries, longest first."""
        for length in self._lengths:
            yield from self._by_length[length].values()


class AddressAllocator:
    """Carves link and loopback prefixes out of disjoint pools.

    Topology builders use one allocator per network so every interface
    and loopback receives a unique, deterministic address.  Link
    subnets are /31 by default (point-to-point) and loopbacks /32.
    """

    def __init__(
        self,
        link_pool: str = "10.0.0.0/8",
        loopback_pool: str = "172.16.0.0/12",
        link_length: int = 31,
    ) -> None:
        self._link_pool = Prefix.parse(link_pool)
        self._loopback_pool = Prefix.parse(loopback_pool)
        if self._link_pool.covers(self._loopback_pool) or self._loopback_pool.covers(
            self._link_pool
        ):
            raise ValueError("link and loopback pools must be disjoint")
        self._link_length = link_length
        self._link_iter = self._link_pool.subnets(link_length)
        self._loopback_iter = self._loopback_pool.hosts()

    @property
    def link_length(self) -> int:
        """Prefix length used for link subnets."""
        return self._link_length

    def next_link_prefix(self) -> Prefix:
        """Allocate the next unused link subnet."""
        try:
            return next(self._link_iter)
        except StopIteration:
            raise RuntimeError("link address pool exhausted") from None

    def next_loopback(self) -> int:
        """Allocate the next unused loopback address."""
        try:
            return next(self._loopback_iter)
        except StopIteration:
            raise RuntimeError("loopback address pool exhausted") from None

    def link_addresses(self) -> Tuple[Prefix, int, int]:
        """Allocate a link subnet and return (prefix, addr_a, addr_b)."""
        prefix = self.next_link_prefix()
        hosts = list(prefix.hosts())
        return prefix, hosts[0], hosts[1]


def summarize(addresses: Iterable[int]) -> List[Prefix]:
    """Return the minimal list of /32 prefixes covering ``addresses``.

    Helper used by tests and dataset exports; intentionally simple.
    """
    return [Prefix(addr, 32) for addr in sorted(set(addresses))]
