"""Router vendor behaviour profiles.

The paper's techniques hinge on vendor-specific defaults:

* initial TTLs of generated ICMP messages (Table 1 signatures),
* LDP label-advertising policy (Cisco: all IGP prefixes; Juniper:
  loopbacks only),
* whether the ``min(IP-TTL, LSE-TTL)`` rule runs when a label is popped
  at the penultimate hop (documented for Cisco, commonly observed on
  Juniper egresses too — Sec. 6 of the paper).

A :class:`VendorProfile` bundles those defaults; concrete routers may
still override individual knobs through their MPLS configuration (see
:mod:`repro.mpls.config`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Tuple

__all__ = [
    "LdpPolicy",
    "VendorProfile",
    "CISCO",
    "JUNIPER",
    "JUNIPER_E",
    "BROCADE",
    "PROFILES",
    "profile_named",
]


class LdpPolicy(Enum):
    """Which internal prefixes a router advertises into LDP."""

    ALL_PREFIXES = "all-prefixes"
    LOOPBACK_ONLY = "loopback-only"


@dataclass(frozen=True)
class VendorProfile:
    """Immutable description of a router brand/OS behaviour.

    Attributes:
        name: human-readable brand/OS label.
        ttl_time_exceeded: initial IP-TTL of ICMP time-exceeded replies.
        ttl_echo_reply: initial IP-TTL of ICMP echo-reply messages.
        ldp_policy: default LDP label-advertising policy.
        min_ttl_on_pop: whether popping a label applies
            ``IP-TTL = min(IP-TTL, LSE-TTL)``.
        rfc4950: whether time-exceeded replies quote the MPLS label
            stack (ICMP extensions).
    """

    name: str
    ttl_time_exceeded: int
    ttl_echo_reply: int
    ldp_policy: LdpPolicy
    min_ttl_on_pop: bool = True
    rfc4950: bool = True

    @property
    def signature(self) -> Tuple[int, int]:
        """The ``<time-exceeded, echo-reply>`` pair-signature (Table 1)."""
        return (self.ttl_time_exceeded, self.ttl_echo_reply)

    def __str__(self) -> str:
        return self.name


#: Cisco IOS / IOS XR — signature <255, 255>, LDP labels all prefixes.
CISCO = VendorProfile(
    name="cisco",
    ttl_time_exceeded=255,
    ttl_echo_reply=255,
    ldp_policy=LdpPolicy.ALL_PREFIXES,
)

#: Juniper Junos — signature <255, 64>, LDP labels loopbacks only.
JUNIPER = VendorProfile(
    name="juniper",
    ttl_time_exceeded=255,
    ttl_echo_reply=64,
    ldp_policy=LdpPolicy.LOOPBACK_ONLY,
)

#: Juniper JunosE — signature <128, 128>.
JUNIPER_E = VendorProfile(
    name="junos-e",
    ttl_time_exceeded=128,
    ttl_echo_reply=128,
    ldp_policy=LdpPolicy.LOOPBACK_ONLY,
)

#: Brocade / Alcatel / Linux-based — signature <64, 64>.  The paper
#: observes this signature behaving like Juniper for revelation
#: purposes (AS3549 analysis, Sec. 6), hence loopback-only LDP.
BROCADE = VendorProfile(
    name="brocade",
    ttl_time_exceeded=64,
    ttl_echo_reply=64,
    ldp_policy=LdpPolicy.LOOPBACK_ONLY,
)

#: Registry of all built-in profiles, keyed by name.
PROFILES: Dict[str, VendorProfile] = {
    profile.name: profile
    for profile in (CISCO, JUNIPER, JUNIPER_E, BROCADE)
}


def profile_named(name: str) -> VendorProfile:
    """Look up a built-in profile by name (KeyError when unknown)."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown vendor profile {name!r}; known: {sorted(PROFILES)}"
        ) from None
