"""Network model: addressing, routers, vendors, topology."""

from repro.net.addressing import (
    AddressAllocator,
    Prefix,
    PrefixTable,
    format_address,
    parse_address,
)
from repro.net.router import Interface, Router
from repro.net.topology import Link, Network
from repro.net.vendors import (
    BROCADE,
    CISCO,
    JUNIPER,
    JUNIPER_E,
    LdpPolicy,
    VendorProfile,
    profile_named,
)

__all__ = [
    "AddressAllocator",
    "BROCADE",
    "CISCO",
    "Interface",
    "JUNIPER",
    "JUNIPER_E",
    "LdpPolicy",
    "Link",
    "Network",
    "Prefix",
    "PrefixTable",
    "Router",
    "VendorProfile",
    "format_address",
    "parse_address",
    "profile_named",
]
