"""Multi-AS network topology container.

The :class:`Network` owns routers, links, and the global address plan.
It answers the two questions everything above it keeps asking:

* *who owns this address?* (``owner_of``/``lookup``), and
* *which link carries this prefix?* (``prefix_table``).

Topologies are built either manually (GNS3-style testbeds, unit tests)
or through :mod:`repro.net.builder` / :mod:`repro.synth.internet`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.net.addressing import (
    AddressAllocator,
    Prefix,
    PrefixTable,
    format_address,
)
from repro.net.router import Interface, Router
from repro.net.vendors import VendorProfile, CISCO
from repro.mpls.config import MplsConfig

__all__ = ["FrozenNetworkError", "Link", "Network"]


class FrozenNetworkError(RuntimeError):
    """Raised when code tries to mutate a frozen (shared) network.

    Rendered internets handed out by the serve snapshot registry are
    shared read-only between tenants; any structural edit would leak
    one tenant's mutation into every other tenant's measurements.
    """


class Link:
    """A point-to-point link between two router interfaces.

    Attributes:
        prefix: the subnet shared by both endpoints.
        delay_ms: one-way propagation delay (used for RTT modelling).
        weight_ab / weight_ba: directional IGP weights (intra-AS only).
    """

    __slots__ = (
        "prefix",
        "side_a",
        "side_b",
        "delay_ms",
        "weight_ab",
        "weight_ba",
    )

    def __init__(
        self,
        prefix: Prefix,
        delay_ms: float,
        weight_ab: int,
        weight_ba: int,
    ) -> None:
        self.prefix = prefix
        self.delay_ms = delay_ms
        self.weight_ab = weight_ab
        self.weight_ba = weight_ba
        self.side_a: Optional[Interface] = None
        self.side_b: Optional[Interface] = None

    def other(self, interface: Interface) -> Interface:
        """The endpoint opposite ``interface``."""
        if interface is self.side_a:
            assert self.side_b is not None
            return self.side_b
        if interface is self.side_b:
            assert self.side_a is not None
            return self.side_a
        raise ValueError("interface does not belong to this link")

    def weight_from(self, router: Router) -> int:
        """IGP weight in the direction leaving ``router``."""
        assert self.side_a is not None and self.side_b is not None
        if self.side_a.router is router:
            return self.weight_ab
        if self.side_b.router is router:
            return self.weight_ba
        raise ValueError(f"{router.name} is not an endpoint of this link")

    @property
    def routers(self) -> Tuple[Router, Router]:
        """Both endpoint routers."""
        assert self.side_a is not None and self.side_b is not None
        return (self.side_a.router, self.side_b.router)

    @property
    def inter_as(self) -> bool:
        """True when the endpoints belong to different ASes."""
        a, b = self.routers
        return a.asn != b.asn

    def __repr__(self) -> str:
        a, b = self.routers
        return f"Link({a.name}--{b.name}, {self.prefix})"


class Network:
    """Container for a multi-AS topology."""

    def __init__(self, allocator: Optional[AddressAllocator] = None) -> None:
        self.routers: Dict[str, Router] = {}
        self.links: List[Link] = []
        self.allocator = allocator or AddressAllocator()
        #: Longest-prefix table: link prefixes -> Link, /32 loopbacks -> Router.
        self.prefix_table = PrefixTable()
        self._address_owner: Dict[int, Router] = {}
        self._by_asn: Dict[int, List[Router]] = {}
        #: AS that "owns" (originates) each prefix.
        self._prefix_asn: Dict[Prefix, int] = {}
        self._frozen = False

    # ------------------------------------------------------------------
    # Freezing (shared read-only snapshots)

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` has sealed this topology."""
        return self._frozen

    def freeze(self) -> None:
        """Seal the topology against structural mutation.

        Called by the serve snapshot registry after a rendered
        internet passes :meth:`validate`; from then on
        :meth:`add_router`/:meth:`add_link` raise
        :class:`FrozenNetworkError`, and chaos backends refuse to fire
        network-mutating flaps against it.  There is deliberately no
        ``unfreeze``: a shared snapshot stays immutable for life.
        """
        self._frozen = True

    def _ensure_mutable(self) -> None:
        """Raise :class:`FrozenNetworkError` when frozen."""
        if self._frozen:
            raise FrozenNetworkError(
                "network is frozen (shared rendered snapshot); "
                "structural edits are forbidden"
            )

    # ------------------------------------------------------------------
    # Construction

    def add_router(
        self,
        name: str,
        asn: int,
        vendor: VendorProfile = CISCO,
        mpls: Optional[MplsConfig] = None,
        loopback: Optional[int] = None,
    ) -> Router:
        """Create a router; loopback auto-allocated unless given."""
        self._ensure_mutable()
        if name in self.routers:
            raise ValueError(f"duplicate router name {name!r}")
        if loopback is None:
            loopback = self.allocator.next_loopback()
        router = Router(name, asn, loopback, vendor=vendor, mpls=mpls)
        self.routers[name] = router
        self._register_address(loopback, router)
        lo_prefix = Prefix(loopback, 32)
        self.prefix_table.insert(lo_prefix, router)
        self._prefix_asn[lo_prefix] = asn
        self._by_asn.setdefault(asn, []).append(router)
        return router

    def add_link(
        self,
        a: Router,
        b: Router,
        weight: int = 1,
        weight_back: Optional[int] = None,
        delay_ms: float = 1.0,
        prefix: Optional[Prefix] = None,
        if_name_a: Optional[str] = None,
        if_name_b: Optional[str] = None,
    ) -> Link:
        """Connect ``a`` and ``b`` with a point-to-point subnet.

        The subnet is auto-allocated unless ``prefix`` is supplied; its
        originating AS is ``a``'s AS (relevant only for inter-AS links,
        where the convention is that the first router's operator numbers
        the link).
        """
        self._ensure_mutable()
        if a is b:
            raise ValueError("cannot link a router to itself")
        if prefix is None:
            prefix, addr_a, addr_b = self.allocator.link_addresses()
        else:
            hosts = list(prefix.hosts())
            if len(hosts) < 2:
                raise ValueError(f"prefix {prefix} too small for a link")
            addr_a, addr_b = hosts[0], hosts[1]
        link = Link(
            prefix,
            delay_ms=delay_ms,
            weight_ab=weight,
            weight_ba=weight if weight_back is None else weight_back,
        )
        name_a = if_name_a or f"if{len(a.interfaces)}"
        name_b = if_name_b or f"if{len(b.interfaces)}"
        link.side_a = a.attach(name_a, addr_a, prefix, link)
        link.side_b = b.attach(name_b, addr_b, prefix, link)
        self._register_address(addr_a, a)
        self._register_address(addr_b, b)
        self.links.append(link)
        self.prefix_table.insert(prefix, link)
        self._prefix_asn[prefix] = a.asn
        return link

    def _register_address(self, address: int, router: Router) -> None:
        existing = self._address_owner.get(address)
        if existing is not None and existing is not router:
            raise ValueError(
                f"address {format_address(address)} already owned by "
                f"{existing.name}"
            )
        self._address_owner[address] = router

    # ------------------------------------------------------------------
    # Queries

    def router(self, name: str) -> Router:
        """Look up a router by name (KeyError when absent)."""
        return self.routers[name]

    def owner_of(self, address: int) -> Optional[Router]:
        """Router owning ``address`` exactly, or None."""
        return self._address_owner.get(address)

    def prefix_of(self, address: int) -> Optional[Prefix]:
        """Longest-match prefix containing ``address``, or None."""
        hit = self.prefix_table.lookup(address)
        return None if hit is None else hit[0]

    def asn_of_prefix(self, prefix: Prefix) -> Optional[int]:
        """AS originating ``prefix``, or None when unknown."""
        return self._prefix_asn.get(prefix)

    def asn_of_address(self, address: int) -> Optional[int]:
        """AS of the longest-match prefix for ``address``."""
        prefix = self.prefix_of(address)
        return None if prefix is None else self._prefix_asn.get(prefix)

    def routers_in_as(self, asn: int) -> List[Router]:
        """All routers in AS ``asn`` (creation order)."""
        return list(self._by_asn.get(asn, []))

    def asns(self) -> List[int]:
        """All AS numbers present, ascending."""
        return sorted(self._by_asn)

    def border_routers(self, asn: int) -> List[Router]:
        """Routers of ``asn`` that have at least one inter-AS link."""
        return [
            router
            for router in self.routers_in_as(asn)
            if any(
                interface.neighbor.router.asn != asn
                for interface in router.interfaces.values()
            )
        ]

    def internal_prefixes(self, asn: int) -> List[Prefix]:
        """All prefixes originated by AS ``asn`` (loopbacks + links)."""
        return sorted(
            prefix
            for prefix, owner_asn in self._prefix_asn.items()
            if owner_asn == asn
        )

    def intra_as_links(self, asn: int) -> Iterator[Link]:
        """Links with both endpoints inside AS ``asn``."""
        for link in self.links:
            a, b = link.routers
            if a.asn == asn and b.asn == asn:
                yield link

    def inter_as_links(self) -> Iterator[Link]:
        """Links crossing AS borders."""
        for link in self.links:
            if link.inter_as:
                yield link

    def validate(self) -> None:
        """Sanity-check structural invariants; raises on violation."""
        for link in self.links:
            if link.side_a is None or link.side_b is None:
                raise AssertionError(f"dangling link {link.prefix}")
        for name, router in self.routers.items():
            if router.name != name:
                raise AssertionError(f"router name mismatch: {name}")
            for interface in router.interfaces.values():
                if not interface.prefix.contains(interface.address):
                    raise AssertionError(
                        f"{interface!r} outside its prefix"
                    )

    def __repr__(self) -> str:
        return (
            f"Network({len(self.routers)} routers, {len(self.links)} links, "
            f"{len(self.asns())} ASes)"
        )
