"""Integration tests for campaign orchestration and post-processing."""

import pytest

from repro.campaign.crossval import (
    CrossValOutcome,
    cross_validate,
    extract_explicit_tunnels,
)
from repro.campaign.orchestrator import Campaign, CampaignConfig
from repro.campaign.targets import select_targets, split_among_teams
from repro.analysis.itdk import TraceGraph
from repro.experiments.common import ContextConfig, campaign_context
from repro.synth.internet import InternetConfig, build_internet
from repro.synth.profiles import paper_profiles


@pytest.fixture(scope="module")
def context():
    return campaign_context(ContextConfig())


@pytest.fixture(scope="module")
def small_internet():
    return build_internet(
        InternetConfig(
            profiles=tuple(paper_profiles(0.5)),
            vantage_points=4,
            stubs_per_transit=2,
            seed=7,
        )
    )


class TestCampaignPipeline:
    def test_phases_populate_result(self, context):
        result = context.result
        assert result.traces
        assert result.pings
        assert result.pairs
        assert result.revelations
        assert result.probes_sent > 0
        assert result.revelation_probes > 0

    def test_pairs_live_in_suspicious_ases(self, context):
        transits = set(context.internet.transit_asns)
        for pair in context.result.pairs:
            assert pair.asn in transits
            assert context.asn_of(pair.ingress) == pair.asn
            assert context.asn_of(pair.egress) == pair.asn

    def test_pairs_are_unique(self, context):
        keys = [(p.ingress, p.egress) for p in context.result.pairs]
        assert len(keys) == len(set(keys))

    def test_every_pair_has_a_revelation_entry(self, context):
        for pair in context.result.pairs:
            assert (
                pair.ingress, pair.egress,
            ) in context.result.revelations

    def test_revealed_addresses_are_internal_ground_truth(self, context):
        # Every revealed address must truly belong to the pair's AS —
        # the techniques must not hallucinate hops.
        for (x, _), revelation in context.result.revelations.items():
            asn = context.asn_of(x)
            for address in revelation.revealed:
                assert context.asn_of(address) == asn

    def test_revealed_hops_are_really_on_the_path(self, context):
        # Ground truth check: revealed routers are core routers of
        # the transit AS (names AS<asn>_P*), not edge fabrications.
        internet = context.internet
        for revelation in context.result.successful_revelations():
            for address in revelation.revealed:
                router = internet.router_of_address(address)
                assert router is not None

    def test_uhp_as_yields_no_pairs(self, context):
        assert all(pair.asn != 2856 for pair in context.result.pairs)

    def test_requires_vantage_points(self, context):
        with pytest.raises(ValueError):
            Campaign(
                context.internet.prober, [], context.asn_of
            )

    def test_hdn_filter_restricts_pairs(self, small_internet):
        internet = small_internet
        campaign = Campaign(
            internet.prober,
            internet.vps,
            internet.asn_of_address,
            CampaignConfig(
                suspicious_asns=tuple(internet.transit_asns),
                hdn_addresses=frozenset(),  # nothing qualifies
            ),
        )
        result = campaign.run(internet.campaign_targets()[:10])
        assert result.pairs == []


class TestAggregator:
    def test_roles_partition(self, context):
        aggregator = context.aggregator
        roles = {
            aggregator.role_of(pair.ingress)
            for pair in context.result.pairs
        }
        assert "other" not in roles

    def test_summary_counts_consistent(self, context):
        for asn in context.aggregator.asns():
            summary = context.aggregator.revelation_summary(asn)
            assert 0 <= summary.revealed_pairs <= summary.ie_pairs
            assert summary.raw_lsps <= summary.revealed_pairs
            assert 0.0 <= summary.pct_revealed <= 1.0
            assert 0.0 <= summary.pct_ips_also_lers <= 1.0

    def test_density_drops_overall(self, context):
        # Revelation overwhelmingly thins the I–E mesh.  A *small* AS
        # whose 1-LSR tunnels share a hub can see density tick up
        # (chains double the edge count around the hub), so the claim
        # is aggregate, like the paper's Table 4.
        drops, rises = 0, 0
        for asn in context.aggregator.asns():
            summary = context.aggregator.revelation_summary(asn)
            if summary.revealed_pairs == 0:
                continue
            if summary.density_after < summary.density_before - 1e-9:
                drops += 1
            elif summary.density_after > summary.density_before + 1e-9:
                rises += 1
        assert drops > rises
        assert drops >= 3

    def test_deployment_shares_sum_to_one(self, context):
        for asn in context.aggregator.asns():
            row = context.aggregator.deployment_row(asn)
            if row.technique_shares:
                assert sum(row.technique_shares.values()) == pytest.approx(
                    1.0
                )
            if row.signature_shares:
                assert sum(row.signature_shares.values()) == pytest.approx(
                    1.0
                )

    def test_ftl_distribution_counts_successes(self, context):
        total = len(context.aggregator.ftl_distribution())
        assert total == len(context.result.successful_revelations())


class TestTargetSelection:
    def test_hdn_driven_selection(self, context):
        graph = TraceGraph(context.alias_of, context.asn_of)
        graph.add_traces(context.result.traces)
        selection = select_targets(graph, threshold=6)
        assert selection.hdns
        assert selection.set_a
        # A and B are disjoint from the HDNs themselves.
        assert not (set(selection.hdns) & selection.target_nodes)
        assert selection.destinations
        assert selection.hdn_addresses

    def test_exclude_asns(self, context):
        graph = TraceGraph(context.alias_of, context.asn_of)
        graph.add_traces(context.result.traces)
        everything = select_targets(graph, threshold=6)
        all_asns = {
            graph.asn_of_node(node) for node in everything.target_nodes
        }
        filtered = select_targets(
            graph, threshold=6, exclude_asns=all_asns
        )
        assert filtered.destinations == []

    def test_split_among_teams(self):
        buckets = split_among_teams(range(10), 3)
        assert [len(b) for b in buckets] == [4, 3, 3]
        assert sorted(sum(buckets, [])) == list(range(10))

    def test_split_requires_teams(self):
        with pytest.raises(ValueError):
            split_among_teams([1], 0)


class TestCrossValidation:
    @pytest.fixture(scope="class")
    def crossval(self):
        context = campaign_context(
            ContextConfig(ttl_propagate_everywhere=True)
        )
        tunnels = extract_explicit_tunnels(
            context.result.traces, context.asn_of
        )
        vp_by_name = {vp.name: vp for vp in context.internet.vps}
        outcome = cross_validate(
            context.internet.prober, vp_by_name, tunnels
        )
        return context, tunnels, outcome

    def test_tunnels_extracted(self, crossval):
        _, tunnels, _ = crossval
        assert tunnels
        for tunnel in tunnels:
            assert tunnel.lsrs
            assert tunnel.ingress != tunnel.egress

    def test_every_tunnel_classified(self, crossval):
        _, tunnels, outcome = crossval
        assert len(outcome.outcomes) == len(tunnels)

    def test_shares_sum_to_one(self, crossval):
        _, _, outcome = crossval
        shares = outcome.table3_shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_single_lsr_tunnels_are_ambiguous(self, crossval):
        _, tunnels, outcome = crossval
        for tunnel in tunnels:
            verdict = outcome.outcomes[(tunnel.ingress, tunnel.egress)]
            if (
                len(tunnel.lsrs) == 1
                and verdict is not CrossValOutcome.FAILED
                and verdict is not CrossValOutcome.NOT_REDISCOVERED
            ):
                assert verdict is CrossValOutcome.AMBIGUOUS


class TestDurationEstimate:
    def test_paper_rate_model(self, context):
        result = context.result
        seconds = result.duration_estimate_seconds(rate_pps=25, teams=5)
        total = result.probes_sent + result.revelation_probes
        assert seconds == pytest.approx(total / 125)

    def test_rejects_bad_parameters(self, context):
        with pytest.raises(ValueError):
            context.result.duration_estimate_seconds(rate_pps=0)
        with pytest.raises(ValueError):
            context.result.duration_estimate_seconds(teams=0)
