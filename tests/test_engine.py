"""Unit tests for the forwarding engine on micro-topologies."""

import pytest

from repro.dataplane.engine import EndReason, ForwardingEngine
from repro.dataplane.packet import ECHO_REPLY, ECHO_REQUEST, TIME_EXCEEDED, Packet
from repro.mpls.config import MplsConfig, PoppingMode
from repro.net.topology import Network
from repro.net.vendors import BROCADE, CISCO, JUNIPER


def build_chain(length=4, asn_map=None, vendors=None, mpls=None):
    """R0 -- R1 -- ... chain with optional per-router settings."""
    network = Network()
    routers = []
    for i in range(length):
        routers.append(
            network.add_router(
                f"R{i}",
                asn=(asn_map or {}).get(i, 1),
                vendor=(vendors or {}).get(i, CISCO),
                mpls=(mpls or {}).get(i),
            )
        )
    for a, b in zip(routers, routers[1:]):
        network.add_link(a, b, delay_ms=2.0)
    return network, routers


class TestPlainIpForwarding:
    def test_destination_reached_echo_reply(self):
        network, routers = build_chain(3)
        engine = ForwardingEngine(network)
        outcome = engine.send_probe(
            routers[0], routers[2].loopback, ttl=10
        )
        assert outcome.reply_kind == ECHO_REPLY
        assert outcome.responder == routers[2].loopback
        assert outcome.forward_path == ["R0", "R1", "R2"]

    def test_ttl_expiry_generates_time_exceeded(self):
        network, routers = build_chain(4)
        engine = ForwardingEngine(network)
        outcome = engine.send_probe(
            routers[0], routers[3].loopback, ttl=2
        )
        assert outcome.reply_kind == TIME_EXCEEDED
        assert outcome.responder_router == "R2"
        # Reply source is R2's interface facing R1 (incoming side).
        assert outcome.responder == routers[2].incoming_address_from(
            routers[1]
        )

    def test_reply_ttl_counts_return_hops(self):
        network, routers = build_chain(5)
        engine = ForwardingEngine(network)
        outcome = engine.send_probe(
            routers[0], routers[4].loopback, ttl=3
        )
        # R3 replies with initial 255; R2, R1 decrement on the way back.
        assert outcome.reply_ttl == 253

    def test_rtt_accumulates_link_delays(self):
        network, routers = build_chain(3)
        engine = ForwardingEngine(network)
        outcome = engine.send_probe(
            routers[0], routers[2].loopback, ttl=10
        )
        # 2 links out + 2 links back at 2 ms each.
        assert outcome.rtt_ms == pytest.approx(8.0)

    def test_icmp_disabled_router_is_silent(self):
        network, routers = build_chain(4)
        routers[2].icmp_enabled = False
        engine = ForwardingEngine(network)
        outcome = engine.send_probe(
            routers[0], routers[3].loopback, ttl=2
        )
        assert not outcome.responded

    def test_icmp_disabled_destination_is_silent(self):
        network, routers = build_chain(3)
        routers[2].icmp_enabled = False
        engine = ForwardingEngine(network)
        outcome = engine.send_probe(
            routers[0], routers[2].loopback, ttl=10
        )
        assert not outcome.responded

    def test_unroutable_destination_no_reply(self):
        network, routers = build_chain(2)
        engine = ForwardingEngine(network)
        outcome = engine.send_probe(routers[0], 0x01010101, ttl=10)
        assert not outcome.responded
        assert outcome.forward_path == ["R0"]

    def test_vendor_initial_ttls(self):
        network, routers = build_chain(
            4, vendors={1: JUNIPER, 2: JUNIPER}
        )
        engine = ForwardingEngine(network)
        te = engine.send_probe(routers[0], routers[3].loopback, ttl=2)
        assert te.responder_router == "R2"
        assert te.reply_ttl == 254  # Juniper TE 255, R1 decrements
        echo = engine.send_probe(routers[0], routers[2].loopback, ttl=64)
        assert echo.reply_ttl == 63  # Juniper echo-reply 64, one dec

    def test_brocade_signature(self):
        network, routers = build_chain(3, vendors={1: BROCADE})
        engine = ForwardingEngine(network)
        te = engine.send_probe(routers[0], routers[2].loopback, ttl=1)
        assert te.responder_router == "R1"
        assert te.reply_ttl == 64


class TestMplsForwarding:
    def _mpls_chain(self, propagate, popping=PoppingMode.PHP, length=6):
        """AS1: R0 | AS2 (MPLS): R1..R(n-2) | AS3: R(n-1)."""
        config = MplsConfig.from_vendor(
            CISCO, ttl_propagate=propagate, popping=popping
        )
        asn_map = {0: 1, length - 1: 3}
        asn_map.update({i: 2 for i in range(1, length - 1)})
        mpls = {i: config for i in range(1, length - 1)}
        return build_chain(length, asn_map=asn_map, mpls=mpls)

    def test_invisible_tunnel_hides_core(self):
        network, routers = self._mpls_chain(propagate=False)
        engine = ForwardingEngine(network)
        dst = routers[5].loopback
        responders = []
        for ttl in range(1, 8):
            outcome = engine.send_probe(routers[0], dst, ttl=ttl)
            if outcome.responded:
                responders.append(outcome.responder_router)
            if outcome.reply_kind == ECHO_REPLY:
                break
        # R2, R3 (the LSRs) never answer: the tunnel is invisible.
        assert "R2" not in responders
        assert "R3" not in responders
        assert responders[-1] == "R5"

    def test_explicit_tunnel_quotes_labels(self):
        network, routers = self._mpls_chain(propagate=True)
        engine = ForwardingEngine(network)
        dst = routers[5].loopback
        outcome = engine.send_probe(routers[0], dst, ttl=2)
        assert outcome.responder_router == "R2"
        assert outcome.quoted_labels
        label, lse_ttl = outcome.quoted_labels[0]
        assert lse_ttl == 1

    def test_min_rule_counts_tunnel_on_return(self):
        network, routers = self._mpls_chain(propagate=False)
        engine = ForwardingEngine(network)
        dst = routers[5].loopback
        # Egress LER (R4) appears at TTL 2 (R1 ingress, then R4: the
        # two LSRs R2, R3 consume no IP-TTL).
        outcome = engine.send_probe(routers[0], dst, ttl=2)
        assert outcome.responder_router == "R4"
        # The reply deficit covers the return tunnel (2 LSRs, counted
        # by the min copy at the LH) plus the ingress R1.
        assert 255 - outcome.reply_ttl == 3

    def test_min_rule_disabled_loses_tunnel_hops(self):
        config = MplsConfig.from_vendor(
            CISCO, ttl_propagate=False
        ).with_overrides(min_ttl_on_pop=False)
        network, routers = build_chain(
            6,
            asn_map={0: 1, 1: 2, 2: 2, 3: 2, 4: 2, 5: 3},
            mpls={i: config for i in range(1, 5)},
        )
        engine = ForwardingEngine(network)
        outcome = engine.send_probe(
            routers[0], routers[5].loopback, ttl=2
        )
        assert outcome.responder_router == "R4"
        # Without the min rule only the ingress decrement shows: the
        # return path looks one hop long.
        assert 255 - outcome.reply_ttl == 1

    def test_uhp_hides_egress_toward_attached_destination(self):
        network, routers = self._mpls_chain(
            propagate=False, popping=PoppingMode.UHP
        )
        engine = ForwardingEngine(network)
        # Destination = AS3 router's incoming interface (attached to
        # the egress): the egress disposition never decrements.
        dst = routers[5].incoming_address_from(routers[4])
        responders = {}
        for ttl in range(1, 6):
            outcome = engine.send_probe(routers[0], dst, ttl=ttl)
            if outcome.responded:
                responders[ttl] = outcome.responder_router
            if outcome.reply_kind == ECHO_REPLY:
                break
        assert "R4" not in responders.values()  # egress invisible
        assert responders[max(responders)] == "R5"

    def test_rfc4950_disabled_omits_label_quote(self):
        config = MplsConfig.from_vendor(CISCO, ttl_propagate=True)
        config = config.with_overrides(rfc4950=False)
        network, routers = build_chain(
            6,
            asn_map={0: 1, 1: 2, 2: 2, 3: 2, 4: 2, 5: 3},
            mpls={i: config for i in range(1, 5)},
        )
        engine = ForwardingEngine(network)
        outcome = engine.send_probe(
            routers[0], routers[5].loopback, ttl=2
        )
        assert outcome.responder_router == "R2"
        assert outcome.quoted_labels == []

    def test_loop_guard_terminates(self):
        network, routers = build_chain(2)
        engine = ForwardingEngine(network, max_hops=3)
        packet = Packet(
            src=routers[0].loopback,
            dst=routers[1].loopback,
            ip_ttl=255,
            kind=ECHO_REQUEST,
        )
        # Not a real loop, but the guard caps the walk length anyway.
        end = engine._simulate(packet, routers[0])
        assert end.reason in (EndReason.DELIVERED, EndReason.LOOP)


class TestReplyTransit:
    def test_reply_crossing_return_tunnel(self):
        # Probe into AS3; the reply from AS3 re-crosses the MPLS AS2.
        config = MplsConfig.from_vendor(CISCO, ttl_propagate=False)
        network, routers = build_chain(
            7,
            asn_map={0: 1, 1: 2, 2: 2, 3: 2, 4: 2, 5: 2, 6: 3},
            mpls={i: config for i in range(1, 6)},
        )
        engine = ForwardingEngine(network)
        outcome = engine.send_probe(
            routers[0], routers[6].loopback, ttl=10
        )
        assert outcome.reply_kind == ECHO_REPLY
        # Return path ground truth covers every router.
        assert outcome.return_path[0] == "R6"
        assert outcome.return_path[-1] == "R0"
        assert len(outcome.return_path) == 7


class TestNegativePaths:
    def test_partitioned_as_internal_unreachable(self):
        network = Network()
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)  # same AS, no link
        engine = ForwardingEngine(network)
        outcome = engine.send_probe(a, b.loopback, ttl=10)
        assert not outcome.responded
        assert outcome.forward_path == ["A"]

    def test_reply_dies_when_return_route_missing(self):
        # One-way reachability: the reply's path exists here, so
        # instead kill it with a zero response rate at the source's
        # only neighbour? No — replies are not ICMP-gated in transit.
        # Use an expiring reply instead: a destination whose vendor
        # initial TTL (64) is smaller than the return path length.
        network = Network()
        routers = [
            network.add_router(f"R{i}", asn=1, vendor=BROCADE)
            for i in range(70)
        ]
        for a, b in zip(routers, routers[1:]):
            network.add_link(a, b)
        engine = ForwardingEngine(network)
        outcome = engine.send_probe(
            routers[0], routers[-1].loopback, ttl=255
        )
        # The echo-reply starts at 64 and must cross 68 hops: it dies
        # in transit and the VP hears nothing.
        assert outcome.forward_path[-1] == "R69"
        assert not outcome.responded

    def test_probe_kind_validation(self):
        network = Network()
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)
        network.add_link(a, b)
        engine = ForwardingEngine(network)
        with pytest.raises(ValueError):
            engine.send_probe(a, b.loopback, ttl=1, kind="bogus")

    def test_udp_probe_outgoing_interface(self):
        network = Network()
        a = network.add_router("A", asn=1)
        b = network.add_router("B", asn=1)
        c = network.add_router("C", asn=1)
        network.add_link(a, b)
        far = network.add_link(b, c)
        engine = ForwardingEngine(network)
        outcome = engine.send_probe(
            a, far.side_a.address, ttl=64, kind="udp-probe"
        )
        assert outcome.reply_kind == "dest-unreachable"
        assert outcome.responder == b.incoming_address_from(a)


class TestEngineCornerCases:
    def test_te_step_off_path_falls_back_to_ip(self):
        # A packet carrying a TE tunnel whose path does not include
        # the current router drops the label and continues as IP.
        from repro.mpls.rsvp import TeTunnel
        from repro.mpls.labels import LabelStackEntry
        from repro.net.addressing import Prefix

        network, routers = build_chain(3)
        engine = ForwardingEngine(network)
        tunnel = TeTunnel(name="t", path=("R1", "R2"))
        packet = Packet(
            src=routers[0].loopback,
            dst=routers[2].loopback,
            ip_ttl=10,
            kind=ECHO_REQUEST,
        )
        packet.push(
            LabelStackEntry(label=99, ttl=255),
            Prefix(routers[2].loopback, 32),
        )
        packet.te_tunnel = tunnel
        end = engine._simulate(packet, routers[0])  # R0 not on path
        assert end.reason is EndReason.DELIVERED

    def test_uhp_expiry_at_egress_replies_directly(self):
        # LSE expiring on arrival at a UHP egress must produce a
        # reply (regression: it used to die in a zero-length detour).
        config = MplsConfig.from_vendor(
            CISCO, ttl_propagate=True, popping=PoppingMode.UHP
        )
        network, routers = build_chain(
            6,
            asn_map={0: 1, 1: 2, 2: 2, 3: 2, 4: 2, 5: 3},
            mpls={i: config for i in range(1, 5)},
        )
        engine = ForwardingEngine(network)
        # TTL that makes the LSE hit zero exactly at the egress R4.
        outcome = engine.send_probe(
            routers[0], routers[5].loopback, ttl=4
        )
        assert outcome.responded
        assert outcome.responder_router == "R4"
        assert outcome.quoted_labels  # explicit-null stack quoted

    def test_max_hops_guard(self):
        network, routers = build_chain(5)
        engine = ForwardingEngine(network, max_hops=2)
        outcome = engine.send_probe(
            routers[0], routers[4].loopback, ttl=255
        )
        # The walk is cut short: no reply ever materialises.
        assert not outcome.responded
        assert len(outcome.forward_path) <= 3
