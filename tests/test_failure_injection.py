"""Failure-injection robustness tests.

The paper's techniques must degrade gracefully when routers are
silent, rate limited, or RFC 4950-deaf.  These tests inject each
failure into the testbed/Internet and check both the degradation and
the absence of false revelations.
"""

import pytest

from repro.campaign.orchestrator import Campaign, CampaignConfig
from repro.core.revelation import reveal_tunnel
from repro.synth.failures import (
    disable_rfc4950,
    pick_routers,
    rate_limit_routers,
    restore,
    silence_routers,
)
from repro.synth.gns3 import build_gns3
from repro.synth.internet import InternetConfig, build_internet
from repro.synth.profiles import paper_profiles


def small_internet(seed=11):
    return build_internet(
        InternetConfig(
            profiles=tuple(paper_profiles(0.5)),
            vantage_points=4,
            stubs_per_transit=2,
            seed=seed,
        )
    )


class TestPickers:
    def test_fraction_validation(self):
        internet = small_internet()
        with pytest.raises(ValueError):
            pick_routers(internet.network, 1.5, seed=1)

    def test_seeded_sampling_is_deterministic(self):
        internet = small_internet()
        a = pick_routers(internet.network, 0.3, seed=5)
        b = pick_routers(internet.network, 0.3, seed=5)
        assert [r.name for r in a] == [r.name for r in b]

    def test_asn_restriction(self):
        internet = small_internet()
        routers = pick_routers(
            internet.network, 1.0, seed=1, asns=[3257]
        )
        assert routers
        assert all(router.asn == 3257 for router in routers)

    def test_restore(self):
        internet = small_internet()
        routers = silence_routers(internet.network, 0.2, seed=3)
        assert all(not router.icmp_enabled for router in routers)
        restore(routers)
        assert all(router.icmp_enabled for router in routers)


class TestRateLimiting:
    def test_rate_zero_means_silent(self):
        testbed = build_gns3("backward-recursive")
        rate_limit_routers(testbed.network, rate=0.0, asns=[2])
        trace = testbed.traceroute("CE2.left")
        names = [h.responder_router for h in trace.responsive_hops]
        assert "PE1" not in names and "PE2" not in names

    def test_rate_one_means_normal(self):
        testbed = build_gns3("backward-recursive")
        rate_limit_routers(testbed.network, rate=1.0, asns=[2])
        trace = testbed.traceroute("CE2.left")
        assert trace.destination_reached

    def test_partial_rate_drops_some_probes(self):
        internet = small_internet()
        rate_limit_routers(
            internet.network, rate=0.5, asns=internet.transit_asns,
            seed=2,
        )
        vp = internet.vps[0]
        responses = 0
        probes = 0
        for dst in internet.campaign_targets()[:10]:
            trace = internet.prober.traceroute(vp, dst)
            probes += len(trace.hops)
            responses += len(trace.responsive_hops)
        assert 0 < responses < probes

    def test_rate_validation(self):
        internet = small_internet()
        with pytest.raises(ValueError):
            rate_limit_routers(internet.network, rate=2.0)


class TestSilenceImpactOnRevelation:
    def test_silent_core_blocks_brpr_without_false_positives(self):
        testbed = build_gns3("backward-recursive")
        testbed.network.router("P2").icmp_enabled = False
        revelation = reveal_tunnel(
            testbed.prober,
            testbed.vantage_point,
            ingress=testbed.address("PE1.left"),
            egress=testbed.address("PE2.left"),
        )
        # P3 is still revealed; the recursion then hits silence and
        # stops — partial but never wrong.
        assert revelation.tunnel_length <= 3
        for address in revelation.revealed:
            owner = testbed.network.owner_of(address)
            assert owner is not None and owner.asn == 2

    def test_silent_egress_kills_candidate_pair(self):
        testbed = build_gns3("backward-recursive")
        testbed.network.router("PE2").icmp_enabled = False
        trace = testbed.traceroute("CE2.left")
        from repro.core.revelation import candidate_endpoints

        pair = candidate_endpoints(trace)
        # PE2's silence leaves a star before CE2: no candidate pair.
        assert pair is None


class TestRfc4950Failure:
    def test_explicit_tunnel_loses_labels(self):
        testbed = build_gns3("default")
        disable_rfc4950(testbed.network, fraction=1.0, asns=[2])
        trace = testbed.traceroute("CE2.left")
        assert not trace.contains_labels()
        # The LSRs still answer (ttl-propagate): path is complete.
        names = [h.responder_router for h in trace.responsive_hops]
        assert "P1" in names

    def test_crossval_misses_unquoted_tunnels(self):
        from repro.campaign.crossval import extract_explicit_tunnels

        testbed = build_gns3("default")
        disable_rfc4950(testbed.network, fraction=1.0, asns=[2])
        traces = [testbed.traceroute("CE2.left")]
        tunnels = extract_explicit_tunnels(
            traces, testbed.network.asn_of_address
        )
        assert tunnels == []  # no label run -> no explicit tunnel


class TestCampaignUnderFailures:
    def test_campaign_survives_mixed_failures(self):
        internet = small_internet(seed=23)
        silence_routers(
            internet.network, 0.05, seed=1, asns=internet.transit_asns
        )
        rate_limit_routers(
            internet.network, rate=0.9, fraction=0.3, seed=2,
            asns=internet.transit_asns,
        )
        campaign = Campaign(
            internet.prober,
            internet.vps,
            internet.asn_of_address,
            CampaignConfig(
                suspicious_asns=tuple(internet.transit_asns)
            ),
        )
        result = campaign.run(internet.campaign_targets())
        assert result.traces
        # Revelations may shrink but never fabricate hops.
        for (x, _), revelation in result.revelations.items():
            asn = internet.asn_of_address(x)
            for address in revelation.revealed:
                assert internet.asn_of_address(address) == asn


class TestRestoreRoundTrip:
    """Satellite: restore() is an exact inverse of every injection."""

    def _pristine(self, network):
        return {
            name: (
                router.icmp_enabled,
                router.icmp_response_rate,
                router.mpls,
            )
            for name, router in sorted(network.routers.items())
        }

    def test_stacked_injections_restore_exactly(self):
        internet = small_internet()
        pristine = self._pristine(internet.network)
        touched = {}
        for router in silence_routers(
            internet.network, 0.3, seed=1
        ):
            touched[router.name] = router
        for router in rate_limit_routers(
            internet.network, rate=0.5, fraction=0.4, seed=2
        ):
            touched[router.name] = router
        for router in disable_rfc4950(
            internet.network, 0.5, seed=3
        ):
            touched[router.name] = router
        assert touched  # the injections overlapped some routers
        assert self._pristine(internet.network) != pristine

        restore(touched.values())
        after = self._pristine(internet.network)
        assert after == pristine
        for name, (_, _, mpls) in pristine.items():
            # Exact round-trip: the original MplsConfig object comes
            # back, not a lookalike.
            assert internet.network.routers[name].mpls is mpls
            assert not hasattr(
                internet.network.routers[name], "_fault_stash"
            )

    def test_restored_network_measures_identically(self):
        untouched = small_internet()
        wrecked = small_internet()
        routers = []
        routers += silence_routers(wrecked.network, 0.3, seed=1)
        routers += rate_limit_routers(
            wrecked.network, rate=0.5, fraction=0.4, seed=2
        )
        routers += disable_rfc4950(wrecked.network, 0.5, seed=3)
        restore(routers)

        vp = untouched.vps[0]
        vp_restored = wrecked.vps[0]
        for dst in untouched.campaign_targets()[:8]:
            baseline = untouched.prober.traceroute(vp, dst)
            again = wrecked.prober.traceroute(vp_restored, dst)
            assert again == baseline
        assert (
            wrecked.prober.probes_sent
            == untouched.prober.probes_sent
        )
