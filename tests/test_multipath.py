"""Tests for ECMP multipath enumeration."""

import pytest

from repro.dataplane.engine import ForwardingEngine
from repro.measure import RecordingBackend, ReplayBackend, SimBackend
from repro.net.topology import Network
from repro.probing.multipath import enumerate_paths, path_diversity
from repro.probing.prober import Prober


def build_diamond(parallel=2, tail_len=1):
    """src -> {mid_0..mid_{k-1}} -> join -> tail... equal costs."""
    network = Network()
    src = network.add_router("src", asn=1)
    join = network.add_router("join", asn=1)
    for i in range(parallel):
        mid = network.add_router(f"mid{i}", asn=1)
        network.add_link(src, mid)
        network.add_link(mid, join)
    previous = join
    for i in range(tail_len):
        nxt = network.add_router(f"tail{i}", asn=1)
        network.add_link(previous, nxt)
        previous = nxt
    return network, src, previous


class TestEnumeratePaths:
    def test_single_path_topology(self):
        network, src, dst = build_diamond(parallel=1)
        prober = Prober(ForwardingEngine(network))
        result = enumerate_paths(prober, src, dst.loopback, flows=8)
        assert result.path_count == 1
        assert sum(len(f) for f in result.flows) == 8

    def test_two_way_ecmp_found(self):
        network, src, dst = build_diamond(parallel=2)
        prober = Prober(ForwardingEngine(network))
        result = enumerate_paths(prober, src, dst.loopback, flows=32)
        assert result.path_count == 2

    def test_three_way_ecmp_found(self):
        network, src, dst = build_diamond(parallel=3)
        prober = Prober(ForwardingEngine(network))
        result = enumerate_paths(prober, src, dst.loopback, flows=64)
        assert result.path_count == 3

    def test_paths_share_endpoints(self):
        network, src, dst = build_diamond(parallel=2)
        prober = Prober(ForwardingEngine(network))
        result = enumerate_paths(prober, src, dst.loopback, flows=32)
        lasts = {path[-1] for path in result.paths}
        assert lasts == {dst.loopback}

    def test_divergence_point_is_first_hop(self):
        network, src, dst = build_diamond(parallel=2)
        prober = Prober(ForwardingEngine(network))
        result = enumerate_paths(prober, src, dst.loopback, flows=32)
        points = result.divergence_points
        # Paths diverge right after the source: the first responding
        # hop differs, so there is no common prefix to diverge from.
        assert points == set() or all(
            network.owner_of(p) is not None for p in points
        )

    def test_incomplete_traces_skipped(self):
        network, src, dst = build_diamond(parallel=2)
        network.router("mid0").icmp_enabled = False
        prober = Prober(ForwardingEngine(network))
        result = enumerate_paths(prober, src, dst.loopback, flows=32)
        # Flows hashed onto mid0 produce starred traces and are
        # dropped; only the clean path remains.
        assert result.path_count == 1

    def test_flow_count_validation(self):
        network, src, dst = build_diamond()
        prober = Prober(ForwardingEngine(network))
        with pytest.raises(ValueError):
            enumerate_paths(prober, src, dst.loopback, flows=0)

    def test_probe_accounting(self):
        network, src, dst = build_diamond()
        prober = Prober(ForwardingEngine(network))
        result = enumerate_paths(prober, src, dst.loopback, flows=4)
        assert result.probes_used == prober.probes_sent


class TestBackendApi:
    """ECMP exploration through the explicit measurement-plane API."""

    def test_flow_sweep_under_explicit_backend(self):
        network, src, dst = build_diamond(parallel=2)
        prober = Prober(SimBackend(ForwardingEngine(network)))
        result = enumerate_paths(prober, src, dst.loopback, flows=32)
        assert result.path_count == 2
        # Every flow maps to exactly one path, and all flows landed.
        assert sum(len(f) for f in result.flows) == 32

    def test_constant_flow_never_splits_across_paths(self):
        network, src, dst = build_diamond(parallel=3)
        prober = Prober(SimBackend(ForwardingEngine(network)))
        # Paris traceroute pins one flow id for the whole TTL sweep:
        # re-tracing the same flow must walk the same ECMP path every
        # time, hop for hop.
        for flow_id in range(1, 9):
            first = prober.traceroute(src, dst.loopback, flow_id=flow_id)
            again = prober.traceroute(src, dst.loopback, flow_id=flow_id)
            assert first.addresses == again.addresses
            assert first.destination_reached

    def test_distinct_flows_cover_all_parallel_paths(self):
        network, src, dst = build_diamond(parallel=3)
        prober = Prober(SimBackend(ForwardingEngine(network)))
        result = enumerate_paths(prober, src, dst.loopback, flows=64)
        first_hops = {path[0] for path in result.paths}
        mids = {
            network.router(f"mid{i}").loopback for i in range(3)
        }
        # The sweep found all three mids (loopbacks of the replying
        # interfaces vary, but the path count pins the diversity).
        assert result.path_count == 3
        assert len(first_hops) == 3
        assert mids  # topology sanity

    def test_enumeration_replays_identically(self, tmp_path):
        network, src, dst = build_diamond(parallel=2)
        path = str(tmp_path / "multipath.jsonl")
        recording = RecordingBackend(
            SimBackend(ForwardingEngine(network)), path
        )
        prober = Prober(recording)
        live = enumerate_paths(prober, src, dst.loopback, flows=16)
        recording.close()

        replayed = enumerate_paths(
            Prober(ReplayBackend(path)), src, dst.loopback, flows=16
        )
        assert replayed.paths == live.paths
        assert replayed.flows == live.flows
        assert replayed.probes_used == live.probes_used


class TestPathDiversity:
    def test_survey(self):
        network, src, dst = build_diamond(parallel=2, tail_len=2)
        prober = Prober(ForwardingEngine(network))
        join = network.router("join")
        survey = path_diversity(
            prober, src, [dst.loopback, join.loopback], flows=32
        )
        assert survey[dst.loopback] == 2
        assert survey[join.loopback] == 2


class TestDivergencePoints:
    def test_mid_path_divergence(self):
        # src -> common -> {a, b} -> join
        network = Network()
        src = network.add_router("src", asn=1)
        common = network.add_router("common", asn=1)
        a = network.add_router("a", asn=1)
        b = network.add_router("b", asn=1)
        join = network.add_router("join", asn=1)
        network.add_link(src, common)
        network.add_link(common, a)
        network.add_link(common, b)
        network.add_link(a, join)
        network.add_link(b, join)
        prober = Prober(ForwardingEngine(network))
        result = enumerate_paths(prober, src, join.loopback, flows=32)
        assert result.path_count == 2
        points = result.divergence_points
        assert len(points) == 1
        assert network.owner_of(next(iter(points))) is common

    def test_first_hop_divergence_has_no_points(self):
        network, src, dst = build_diamond(parallel=2)
        prober = Prober(ForwardingEngine(network))
        result = enumerate_paths(prober, src, dst.loopback, flows=32)
        assert result.path_count == 2
        assert result.divergence_points == set()
