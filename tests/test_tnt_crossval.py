"""TNT cross-validation: per-class recall/precision vs ground truth.

The contract under test (ISSUE: TNT as first registry entrant): the
``tnt`` experiment renders one internet carrying *both* tunnel
classes, classifies every extracted tunnel against the installed
RSVP-TE ground truth, and reports recall/precision per class; LDP
recall matches the Table 3 regime while RSVP-TE recall collapses
(revelation rides the IGP, never the explicit path); and the CLI
exposes the experiment with context overrides and a JSON artifact.
"""

import json

import pytest

from repro.campaign.crossval import extract_explicit_tunnels
from repro.cli import main
from repro.experiments.common import ContextConfig, campaign_context
from repro.experiments.tnt_crossval import (
    DEFAULT_TE_TUNNELS,
    run,
)

BASE = dict(
    scale=0.3,
    seed=7,
    vantage_points=4,
    stubs_per_transit=3,
)


@pytest.fixture(scope="module")
def result():
    return run(ContextConfig(**BASE))


class TestPerClassValidation:
    def test_both_classes_tallied(self, result):
        assert set(result.per_class) == {"ldp", "rsvp-te"}
        assert result.per_class["ldp"].tunnels > 0
        assert result.per_class["rsvp-te"].tunnels > 0
        assert result.tunnels_found == sum(
            stats.tunnels for stats in result.per_class.values()
        )

    def test_tally_invariants(self, result):
        for stats in result.per_class.values():
            assert 0 <= stats.correct <= stats.claimed <= stats.tunnels
            assert 0.0 <= stats.recall <= 1.0
            assert 0.0 <= stats.precision <= 1.0

    def test_ldp_recall_dominates_te(self, result):
        """Sec. 3.4: revelation probes target internal prefixes, which
        ride the IGP/LDP — an RSVP-TE explicit path that detours off
        the IGP shortest path can never be recovered."""
        ldp = result.per_class["ldp"]
        te = result.per_class["rsvp-te"]
        assert ldp.recall > 0.5
        assert ldp.recall > te.recall

    def test_document_mirrors_tallies(self, result):
        document = result.document
        assert document["experiment"] == "tnt-crossval"
        assert document["tunnels_found"] == result.tunnels_found
        for label, stats in result.per_class.items():
            entry = document["classes"][label]
            assert entry["tunnels"] == stats.tunnels
            assert entry["claimed"] == stats.claimed
            assert entry["correct"] == stats.correct
            assert entry["recall"] == round(stats.recall, 4)
            assert entry["precision"] == round(stats.precision, 4)

    def test_text_renders_one_row_per_class(self, result):
        text = result.text
        assert "TNT cross-validation" in text
        assert "ldp" in text
        assert "rsvp-te" in text
        assert "Recall" in text and "Precision" in text


class TestUhpNullExtraction:
    def test_null_mode_is_a_strict_superset(self, result):
        """UHP tails quote explicit null, so the paper's same-AS rule
        alone drops every RSVP-TE tunnel; the null-aware mode keeps
        the LDP set intact and adds the TE tunnels on top."""
        context = campaign_context(
            ContextConfig(
                ttl_propagate_everywhere=True,
                te_tunnels_per_transit=DEFAULT_TE_TUNNELS,
                te_ttl_propagate=True,
                **BASE,
            )
        )
        classic = extract_explicit_tunnels(
            context.result.traces, context.asn_of
        )
        with_null = extract_explicit_tunnels(
            context.result.traces, context.asn_of,
            include_uhp_null=True,
        )

        def keys(tunnels):
            return {(t.vp, t.ingress, t.egress) for t in tunnels}

        assert keys(classic) < keys(with_null)
        assert len(with_null) == result.tunnels_found


class TestCli:
    def test_tnt_experiment_writes_the_artifact(self, capsys, tmp_path):
        path = tmp_path / "tnt-crossval.json"
        code = main([
            "experiment", "tnt",
            "--scale", "0.3", "--seed", "7",
            "--vantage-points", "4", "--stubs-per-transit", "3",
            "--json", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "TNT cross-validation" in out
        document = json.loads(path.read_text())
        assert document["experiment"] == "tnt-crossval"
        assert set(document["classes"]) == {"ldp", "rsvp-te"}

    def test_overrides_rejected_without_config_support(self, capsys):
        assert main(["experiment", "table1", "--scale", "0.3"]) == 2
        err = capsys.readouterr().err
        assert "takes no context overrides" in err
