"""Tests for the shared experiment infrastructure."""


from repro.experiments.common import (
    ContextConfig,
    campaign_context,
    format_table,
)


class TestContextCaching:
    def test_same_config_returns_same_object(self):
        a = campaign_context(ContextConfig())
        b = campaign_context(ContextConfig())
        assert a is b

    def test_different_config_builds_fresh(self):
        a = campaign_context(ContextConfig())
        b = campaign_context(ContextConfig(seed=999, scale=0.4))
        assert a is not b
        assert a.internet.network is not b.internet.network

    def test_propagate_everywhere_flag(self):
        visible = campaign_context(
            ContextConfig(ttl_propagate_everywhere=True)
        )
        for asn in visible.internet.transit_asns:
            for router in visible.internet.network.routers_in_as(asn):
                assert router.mpls.ttl_propagate

    def test_alias_and_asn_resolvers(self):
        context = campaign_context(ContextConfig())
        router = context.internet.network.routers_in_as(3257)[0]
        assert context.alias_of(router.loopback) == router.name
        assert context.asn_of(router.loopback) == 3257
        assert context.alias_of(0x01010101) is None


class TestFormatTable:
    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_no_title(self):
        text = format_table(["x"], [(1,)])
        assert not text.startswith("\n")
        assert text.splitlines()[0].strip() == "x"

    def test_columns_align(self):
        text = format_table(
            ["name", "v"], [("long-name-here", 1), ("s", 22)]
        )
        lines = text.splitlines()
        # All rows have equal padded width for column one.
        positions = {line.rstrip().rfind(" ") for line in lines[2:]}
        assert len(positions) >= 1

    def test_mixed_types_stringified(self):
        text = format_table(
            ["a"], [(None,), (1.5,), ("x",)]
        )
        assert "None" in text and "1.5" in text
