"""Correctness tests for the engine's trajectory cache.

The cached dataplane must be *observationally invisible*: every
measurement (traceroute hops, pings, UDP alias probes) produced by a
trajectory-cached engine must equal, field for field, what the
original walk-per-probe engine produces — on the synthetic Internet
and on all four GNS3 golden scenarios — and topology edits must flush
the cache so failure injection cannot see stale paths.
"""

import pytest

from repro.dataplane.engine import ForwardingEngine
from repro.mpls.config import MplsConfig, PoppingMode
from repro.mpls.rsvp import TeTunnel
from repro.net.topology import Network
from repro.net.vendors import CISCO
from repro.routing.control import ControlPlane
from repro.synth.gns3 import SCENARIOS, build_gns3
from repro.synth.internet import InternetConfig, build_internet


@pytest.fixture(scope="module")
def twins():
    cached = build_internet(InternetConfig(seed=77))
    uncached = build_internet(
        InternetConfig(seed=77, trajectory_cache=False)
    )
    return cached, uncached


class TestCachedEqualsUncached:
    def test_traceroutes_byte_identical_on_internet(self, twins):
        cached, uncached = twins
        targets = cached.campaign_targets()[:20]
        for vp_c, vp_u in zip(cached.vps, uncached.vps):
            for dst in targets:
                trace_c = cached.prober.traceroute(vp_c, dst, start_ttl=2)
                trace_u = uncached.prober.traceroute(
                    vp_u, dst, start_ttl=2
                )
                assert trace_c == trace_u
                # Repeat with a warm cache: still identical.
                assert cached.prober.traceroute(
                    vp_c, dst, start_ttl=2
                ) == trace_u

    def test_pings_and_udp_probes_identical(self, twins):
        cached, uncached = twins
        vp_c, vp_u = cached.vps[0], uncached.vps[0]
        trace = cached.prober.traceroute(
            vp_c, cached.campaign_targets()[0], start_ttl=2
        )
        for address in trace.addresses:
            assert cached.prober.ping(vp_c, address) == (
                uncached.prober.ping(vp_u, address)
            )
            assert cached.prober.udp_probe(vp_c, address) == (
                uncached.prober.udp_probe(vp_u, address)
            )

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_gns3_scenarios_byte_identical(self, scenario):
        cached = build_gns3(scenario)
        uncached = build_gns3(scenario, trajectory_cache=False)
        trace_c = cached.traceroute("CE2.left")
        trace_u = uncached.traceroute("CE2.left")
        assert trace_c == trace_u
        assert cached.render(trace_c) == uncached.render(trace_u)


class TestCacheManagement:
    def test_counters_and_stats(self):
        internet = build_internet(InternetConfig(seed=77))
        engine = internet.engine
        vp = internet.vps[0]
        dst = internet.campaign_targets()[0]
        internet.prober.traceroute(vp, dst, start_ttl=2)
        assert engine.trajectory_misses > 0
        # A TTL ladder over one flow shares a single trajectory.
        assert engine.trajectory_hits > 0
        internet.prober.traceroute(vp, dst, start_ttl=2)
        stats = engine.cache_stats()
        assert stats["trajectory_hits"] == engine.trajectory_hits
        assert 0.0 < stats["hit_rate"] <= 1.0
        assert stats["cached_trajectories"] == len(engine._trajectories)
        assert stats["packets_simulated"] == engine.packets_simulated

    def test_invalidate_flushes_trajectories(self):
        internet = build_internet(InternetConfig(seed=77))
        vp = internet.vps[0]
        dst = internet.campaign_targets()[0]
        internet.prober.traceroute(vp, dst, start_ttl=2)
        assert internet.engine._trajectories
        internet.control.invalidate()
        assert not internet.engine._trajectories
        # The trace after a flush still matches the one before it.
        before = internet.prober.traceroute(vp, dst, start_ttl=2)
        internet.control.invalidate()
        after = internet.prober.traceroute(vp, dst, start_ttl=2)
        assert before == after

    def test_te_tunnel_install_flushes_trajectories(self):
        network = Network()
        src = network.add_router("src", asn=1)
        config = MplsConfig.from_vendor(CISCO, ttl_propagate=False)
        ingress = network.add_router("in", asn=2, mpls=config)
        top = network.add_router("top", asn=2, mpls=config)
        bot = network.add_router("bot", asn=2, mpls=config)
        egress = network.add_router("out", asn=2, mpls=config)
        dst = network.add_router("dst", asn=3)
        network.add_link(src, ingress)
        network.add_link(ingress, top, weight=1)
        network.add_link(top, egress, weight=1)
        network.add_link(ingress, bot, weight=5)
        network.add_link(bot, egress, weight=5)
        network.add_link(egress, dst)
        control = ControlPlane(network)
        engine = ForwardingEngine(network, control)
        before = engine.send_probe(src, dst.loopback, ttl=255, flow_id=1)
        assert "top" in before.forward_path
        assert engine._trajectories
        control.install_te_tunnel(
            TeTunnel(
                name="detour", path=("in", "bot", "out"),
                popping=PoppingMode.UHP,
            )
        )
        assert not engine._trajectories
        after = engine.send_probe(src, dst.loopback, ttl=255, flow_id=1)
        assert "bot" in after.forward_path

    def test_uncached_engine_matches_probe_counters(self):
        network = Network()
        routers = [
            network.add_router(f"R{i}", asn=1, vendor=CISCO)
            for i in range(4)
        ]
        for a, b in zip(routers, routers[1:]):
            network.add_link(a, b)
        cached = ForwardingEngine(network)
        uncached_control = ControlPlane(network)
        uncached = ForwardingEngine(
            network, uncached_control, trajectory_cache=False
        )
        for ttl in range(1, 5):
            outcome_c = cached.send_probe(
                routers[0], routers[3].loopback, ttl=ttl, flow_id=1
            )
            outcome_u = uncached.send_probe(
                routers[0], routers[3].loopback, ttl=ttl, flow_id=1
            )
            assert outcome_c == outcome_u
        # Both engines account one probe + one reply per responsive hop.
        assert cached.packets_simulated == uncached.packets_simulated
