"""Property-based invariants of the forwarding engine.

Random multi-AS topologies with random MPLS configurations must never
break the basic physics of the simulator: probes terminate, TTLs stay
in range, paths never loop, and responding addresses always belong to
routers that the probe actually visited.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.dataplane.engine import ForwardingEngine
from repro.mpls.config import MplsConfig, PoppingMode
from repro.net.topology import Network
from repro.net.vendors import BROCADE, CISCO, JUNIPER
from repro.probing.prober import Prober

VENDORS = (CISCO, JUNIPER, BROCADE)


def random_network(seed):
    """Seeded random multi-AS network with random MPLS settings."""
    rng = random.Random(seed)
    network = Network()
    n_as = rng.randint(2, 4)
    routers = []
    for asn in range(1, n_as + 1):
        size = rng.randint(2, 5)
        as_routers = []
        mpls_as = rng.random() < 0.7
        for i in range(size):
            vendor = rng.choice(VENDORS)
            config = None
            if mpls_as:
                config = MplsConfig.from_vendor(
                    vendor,
                    ttl_propagate=rng.random() < 0.5,
                    popping=(
                        PoppingMode.UHP
                        if rng.random() < 0.2
                        else PoppingMode.PHP
                    ),
                )
            as_routers.append(
                network.add_router(
                    f"AS{asn}_R{i}", asn=asn, vendor=vendor, mpls=config
                )
            )
        # Intra-AS chain + a chord.
        for a, b in zip(as_routers, as_routers[1:]):
            network.add_link(a, b, weight=rng.randint(1, 3))
        if len(as_routers) > 2 and rng.random() < 0.5:
            a, b = rng.sample(as_routers, 2)
            if a.interface_toward(b) is None:
                network.add_link(a, b, weight=rng.randint(1, 3))
        routers.append(as_routers)
    # Inter-AS chain so everything is reachable.
    for prev_as, next_as in zip(routers, routers[1:]):
        network.add_link(rng.choice(prev_as), rng.choice(next_as))
    return network, routers


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_high_ttl_probe_terminates_cleanly(seed):
    network, routers = random_network(seed)
    engine = ForwardingEngine(network)
    source = routers[0][0]
    dst = routers[-1][-1].loopback
    outcome = engine.send_probe(source, dst, ttl=255, flow_id=1)
    # Either the destination answered or something silenced the reply;
    # the forward walk itself must have reached the destination owner.
    assert outcome.forward_path[0] == source.name
    assert outcome.forward_path[-1] == routers[-1][-1].name


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 12))
def test_reply_ttl_in_range(seed, ttl):
    network, routers = random_network(seed)
    engine = ForwardingEngine(network)
    outcome = engine.send_probe(
        routers[0][0], routers[-1][-1].loopback, ttl=ttl, flow_id=2
    )
    if outcome.responded:
        assert 0 < outcome.reply_ttl <= 255


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_forward_path_never_revisits(seed):
    network, routers = random_network(seed)
    engine = ForwardingEngine(network)
    outcome = engine.send_probe(
        routers[0][0], routers[-1][-1].loopback, ttl=255, flow_id=3
    )
    assert len(outcome.forward_path) == len(set(outcome.forward_path))


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_responders_lie_on_the_true_path(seed):
    network, routers = random_network(seed)
    engine = ForwardingEngine(network)
    prober = Prober(engine)
    source = routers[0][0]
    dst = routers[-1][-1].loopback
    truth = set(
        engine.send_probe(source, dst, ttl=255, flow_id=4).forward_path
    )
    trace = prober.traceroute(source, dst, flow_id=4)
    for hop in trace.responsive_hops:
        assert hop.responder_router in truth


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_traceroute_is_idempotent(seed):
    network, routers = random_network(seed)
    prober = Prober(ForwardingEngine(network))
    source = routers[0][0]
    dst = routers[-1][-1].loopback
    first = prober.traceroute(source, dst, flow_id=7)
    second = prober.traceroute(source, dst, flow_id=7)
    assert first.addresses == second.addresses
    assert [h.reply_ttl for h in first.hops] == [
        h.reply_ttl for h in second.hops
    ]


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_rtt_monotone_along_one_trace(seed):
    # With per-link positive delays and a fixed flow, deeper hops on
    # the same forward path cannot come back faster... except when the
    # reply path differs per responder; so assert only non-negativity
    # and that the destination RTT is the maximum of its own path.
    network, routers = random_network(seed)
    prober = Prober(ForwardingEngine(network))
    trace = prober.traceroute(
        routers[0][0], routers[-1][-1].loopback, flow_id=5
    )
    for hop in trace.responsive_hops:
        assert hop.rtt_ms >= 0.0


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_probe_conservation(seed):
    # The prober's accounting equals the engine's probe count.
    network, routers = random_network(seed)
    engine = ForwardingEngine(network)
    prober = Prober(engine)
    prober.traceroute(routers[0][0], routers[-1][-1].loopback)
    prober.ping(routers[0][0], routers[-1][-1].loopback)
    assert prober.probes_sent >= 2
