"""The Juniper variant of the Fig. 2 testbed.

The paper: "We also analyzed a similar Juniper testbed, except for the
UHP case which is not available for LDP on Junos."  Junos differences
that must show up in emulation: the `<255, 64>` signature, loopback-
only LDP by default (DPR territory), and the RTLA gap.
"""

import pytest

from repro.core.dpr import direct_path_revelation
from repro.core.rtla import RtlaAnalyzer
from repro.core.signatures import SignatureInventory
from repro.mpls.config import MplsConfig
from repro.net.vendors import JUNIPER, LdpPolicy
from repro.synth.gns3 import build_gns3, scenario_config


class TestJuniperDefaults:
    @pytest.fixture(scope="class")
    def testbed(self):
        # Junos defaults: loopback-only LDP; hide tunnels explicitly.
        config = MplsConfig.from_vendor(JUNIPER, ttl_propagate=False)
        return build_gns3(vendor=JUNIPER, config=config)

    def test_default_policy_is_loopback_only(self):
        config = MplsConfig.from_vendor(JUNIPER)
        assert config.ldp_policy is LdpPolicy.LOOPBACK_ONLY

    def test_forward_tunnel_invisible(self, testbed):
        trace = testbed.traceroute("CE2.left")
        names = [h.responder_router for h in trace.responsive_hops]
        assert names == ["CE1", "PE1", "PE2", "CE2"]

    def test_dpr_reveals_content(self, testbed):
        result = direct_path_revelation(
            testbed.prober,
            testbed.vantage_point,
            ingress=testbed.address("PE1.left"),
            egress=testbed.address("PE2.left"),
        )
        assert result.success
        assert [testbed.name_of(a) for a in result.revealed] == [
            "P1.left", "P2.left", "P3.left",
        ]

    def test_signature_is_255_64(self, testbed):
        inventory = SignatureInventory()
        inventory.observe_trace(testbed.traceroute("CE2.left"))
        inventory.observe_ping(
            testbed.prober.ping(
                testbed.vantage_point, testbed.address("PE2.left")
            )
        )
        signature = inventory.signature(testbed.address("PE2.left"))
        assert signature.pair == (255, 64)
        assert signature.rtla_capable

    def test_rtla_gap_measures_return_tunnel(self, testbed):
        analyzer = RtlaAnalyzer()
        analyzer.add_trace(testbed.traceroute("CE2.left"))
        analyzer.add_ping(
            testbed.prober.ping(
                testbed.vantage_point, testbed.address("PE2.left")
            )
        )
        estimate = analyzer.estimate(testbed.address("PE2.left"))
        assert estimate is not None
        assert estimate.tunnel_length == 3

    def test_echo_reply_ttls_are_64_based(self, testbed):
        ping = testbed.prober.ping(
            testbed.vantage_point, testbed.address("PE2.left")
        )
        assert ping.responded
        assert ping.reply_ttl <= 64


class TestJuniperScenarioSweep:
    def test_backward_recursive_with_juniper_edges(self):
        # Forcing all-prefixes on Junos (operators can) restores BRPR.
        testbed = build_gns3("backward-recursive", vendor=JUNIPER)
        from repro.core.brpr import backward_recursive_revelation

        result = backward_recursive_revelation(
            testbed.prober,
            testbed.vantage_point,
            ingress=testbed.address("PE1.left"),
            egress=testbed.address("PE2.left"),
        )
        assert result.success
        assert len(result.revealed) == 3

    def test_default_scenario_explicit_labels(self):
        testbed = build_gns3("default", vendor=JUNIPER)
        trace = testbed.traceroute("CE2.left")
        assert trace.contains_labels()

    def test_scenario_config_unknown_name(self):
        with pytest.raises(ValueError):
            scenario_config("not-a-scenario")
