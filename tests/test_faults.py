"""Fault-injection backend tests (``repro.faults``).

The chaos plane's contract: profiles are declarative and validated,
fault injection is deterministic (same profile, same probe sequence →
same faults), a zero-fault profile is perfectly transparent (byte-
identical probe logs), and flaps drive the same invalidation hooks a
real route change would.
"""

import pytest

from repro.faults import (
    FAULT_PROFILES,
    LOSS_LADDER,
    FaultProfile,
    FaultyBackend,
    fault_profile,
    profile_names,
    spoofed_address,
)
from repro.measure import RecordingBackend, SimBackend
from repro.measure.backend import ProbeRequest
from repro.probing.prober import Prober
from repro.synth.internet import InternetConfig, build_internet
from repro.synth.profiles import paper_profiles


def small_internet(seed=11):
    return build_internet(
        InternetConfig(
            profiles=tuple(paper_profiles(0.4)),
            vantage_points=3,
            stubs_per_transit=2,
            seed=seed,
        )
    )


class TestProfiles:
    def test_registry_is_consistent(self):
        assert profile_names() == list(FAULT_PROFILES)
        for name, profile in FAULT_PROFILES.items():
            assert profile.name == name

    def test_lookup_unknown_name(self):
        with pytest.raises(ValueError):
            fault_profile("definitely-not-a-profile")

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultProfile(loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultProfile(spoof_source_rate=-0.1)

    def test_flap_action_validation(self):
        with pytest.raises(ValueError):
            FaultProfile(flaps=((10, "explode"),))

    @pytest.mark.parametrize("name", sorted(FAULT_PROFILES))
    def test_wire_round_trip(self, name):
        profile = FAULT_PROFILES[name]
        assert FaultProfile.from_wire(profile.to_wire()) == profile

    def test_from_wire_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            FaultProfile.from_wire({"name": "x", "loss_rat": 0.5})

    def test_inert_and_mutation_flags(self):
        assert FAULT_PROFILES["none"].inert
        assert not FAULT_PROFILES["hostile"].inert
        assert FAULT_PROFILES["flap"].mutates_network
        assert not FAULT_PROFILES["hostile"].mutates_network

    def test_loss_ladder_intensities_nest(self):
        """Same seed + growing rates: drop sets nest along the ladder."""
        rungs = [FAULT_PROFILES[name] for name in LOSS_LADDER]
        assert all(name in FAULT_PROFILES for name in LOSS_LADDER)
        seeds = {profile.seed for profile in rungs}
        assert len(seeds) == 1
        rates = [profile.loss_rate for profile in rungs]
        fractions = [profile.loss_router_fraction for profile in rungs]
        assert rates == sorted(rates)
        assert fractions == sorted(fractions)


def _record_log(tmp_path, name, wrap):
    """Record a few traceroutes, optionally through a no-op wrapper."""
    internet = small_internet()
    backend = SimBackend(internet.engine)
    if wrap:
        backend = FaultyBackend(backend, fault_profile("none"))
    path = str(tmp_path / name)
    recording = RecordingBackend(backend, path)
    prober = Prober(recording)
    vp = internet.vps[0]
    for dst in internet.campaign_targets()[:6]:
        prober.traceroute(vp, dst)
        prober.ping(vp, dst)
    recording.close()
    with open(path, "rb") as handle:
        return handle.read()


class TestTransparency:
    def test_zero_fault_profile_is_byte_identical(self, tmp_path):
        bare = _record_log(tmp_path, "bare.jsonl", wrap=False)
        wrapped = _record_log(tmp_path, "wrapped.jsonl", wrap=True)
        assert bare == wrapped

    def test_inert_wrapper_reports_inner_name(self):
        internet = small_internet()
        inner = SimBackend(internet.engine)
        assert (
            FaultyBackend(inner, fault_profile("none")).name
            == inner.name
        )
        assert FaultyBackend(
            inner, fault_profile("hostile")
        ).name.startswith("faulty+")


def _faulty_traces(profile_name, count=8):
    internet = small_internet()
    backend = FaultyBackend(
        SimBackend(internet.engine), fault_profile(profile_name)
    )
    prober = Prober(backend)
    vp = internet.vps[0]
    return [
        prober.traceroute(vp, dst)
        for dst in internet.campaign_targets()[:count]
    ], backend


class TestDeterminism:
    def test_same_profile_same_sequence_same_faults(self):
        first, _ = _faulty_traces("hostile")
        second, _ = _faulty_traces("hostile")
        assert first == second

    def test_injection_counters_populated(self):
        _, backend = _faulty_traces("hostile", count=12)
        metrics = backend.obs.metrics
        assert metrics.get("faults.injected") > 0
        per_kind = sum(
            value
            for name, value in metrics.counters_snapshot().items()
            if name.startswith("faults.injected.")
        )
        assert per_kind == metrics.get("faults.injected")


class TestFaultEffects:
    def test_loss_profile_drops_replies(self):
        clean, _ = _faulty_traces("none")
        lossy, backend = _faulty_traces("loss-heavy")
        clean_hops = sum(len(t.responsive_hops) for t in clean)
        lossy_hops = sum(len(t.responsive_hops) for t in lossy)
        assert lossy_hops < clean_hops
        assert backend.obs.metrics.get("faults.injected.loss") > 0

    def test_latency_profile_spikes_by_exact_amount(self):
        clean, _ = _faulty_traces("none")
        spiked, backend = _faulty_traces("latency")
        assert backend.obs.metrics.get("faults.injected.latency") > 0
        spike = fault_profile("latency").latency_spike_ms
        observed_spikes = 0
        for before, after in zip(clean, spiked):
            for hop_a, hop_b in zip(before.hops, after.hops):
                if hop_b.rtt_ms != hop_a.rtt_ms:
                    assert hop_b.rtt_ms == pytest.approx(
                        hop_a.rtt_ms + spike
                    )
                    observed_spikes += 1
        assert observed_spikes > 0

    def test_spoofed_sources_land_outside_known_space(self):
        internet = small_internet()
        assert internet.asn_of_address(spoofed_address(12345)) is None
        spoofy, backend = _faulty_traces("malformed", count=12)
        assert (
            backend.obs.metrics.get("faults.injected.spoof-source") > 0
        )
        spoofed = [
            hop.address
            for trace in spoofy
            for hop in trace.responsive_hops
            if hop.address >= 0xE0000000
        ]
        assert spoofed  # unsanitized prober sees the bogus sources


def _weight_sum(network):
    return sum(
        link.weight_ab + link.weight_ba
        for asn in sorted(network.asns())
        for link in network.intra_as_links(asn)
    )


class TestFlaps:
    def test_route_change_fires_invalidation(self):
        internet = small_internet()
        backend = FaultyBackend(
            SimBackend(internet.engine), fault_profile("flap")
        )
        fired = []
        backend.add_invalidation_listener(lambda: fired.append(True))
        vp = internet.vps[0]
        dst = internet.campaign_targets()[0]
        before = _weight_sum(internet.network)
        for _ in range(125):
            backend.submit(ProbeRequest(vp.name, dst, 4, 7))
        assert fired
        assert backend.obs.metrics.get("faults.flaps.route-change") == 1
        # One link perturbed by +7 in each direction.
        assert _weight_sum(internet.network) == before + 14

    def test_router_down_then_up_round_trips(self):
        internet = small_internet()
        profile = FaultProfile(
            name="updown",
            flaps=((5, "router-down"), (10, "router-up")),
        )
        backend = FaultyBackend(SimBackend(internet.engine), profile)
        vp = internet.vps[0]
        dst = internet.campaign_targets()[0]
        for _ in range(7):
            backend.submit(ProbeRequest(vp.name, dst, 4, 7))
        downed = [
            router
            for router in internet.network.routers.values()
            if not router.icmp_enabled
        ]
        assert len(downed) == 1
        for _ in range(7):
            backend.submit(ProbeRequest(vp.name, dst, 4, 7))
        assert all(
            router.icmp_enabled
            for router in internet.network.routers.values()
        )

    def test_fault_state_round_trip_replays_fired_flaps(self):
        internet = small_internet()
        backend = FaultyBackend(
            SimBackend(internet.engine), fault_profile("flap")
        )
        vp = internet.vps[0]
        dst = internet.campaign_targets()[0]
        for _ in range(125):  # crosses the route-change at probe 120
            backend.submit(ProbeRequest(vp.name, dst, 4, 7))
        state = backend.fault_state()
        assert state["clock"] == 125
        assert state["flaps_fired"] == 1

        fresh = small_internet()
        restored = FaultyBackend(
            SimBackend(fresh.engine), fault_profile("flap")
        )
        restored.restore_fault_state(state)
        assert restored.fault_state() == state
        untouched = small_internet()
        # The restored stack carries the already-fired route-change
        # perturbation; an untouched one does not.
        assert _weight_sum(fresh.network) == (
            _weight_sum(untouched.network) + 14
        )

    def test_flap_profile_disables_prewarm_cache(self):
        internet = small_internet()
        inner = SimBackend(internet.engine)
        assert FaultyBackend(
            inner, fault_profile("none")
        ).trajectory_cache == bool(
            getattr(inner, "trajectory_cache", False)
        )
        assert not FaultyBackend(
            inner, fault_profile("flap")
        ).trajectory_cache
