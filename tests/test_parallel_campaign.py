"""Parallel campaign execution must be bit-identical to serial.

``workers > 1`` only prewarms the forwarding engine's trajectory
cache in forked workers; the measurements themselves are replayed by
the same serial code path.  These tests pin that contract on the
seeded Internet, plus the ping-phase merge semantics that make any
shard order deterministic.
"""

import pytest

from repro.campaign.orchestrator import (
    Campaign,
    CampaignConfig,
    CampaignResult,
)
from repro.net.topology import Network
from repro.probing.prober import PingResult, Trace, TraceHop
from repro.synth.internet import InternetConfig, build_internet


def _run_campaign(workers):
    internet = build_internet(InternetConfig(seed=77))
    campaign = Campaign(
        internet.prober,
        internet.vps,
        internet.asn_of_address,
        CampaignConfig(
            suspicious_asns=tuple(internet.transit_asns),
            workers=workers,
        ),
    )
    return campaign.run(internet.campaign_targets())


@pytest.fixture(scope="module")
def serial_and_parallel():
    return _run_campaign(1), _run_campaign(4)


class TestParallelEqualsSerial:
    def test_measurements_bit_identical(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        assert serial.traces == parallel.traces
        assert serial.pings == parallel.pings
        assert serial.pairs == parallel.pairs
        assert serial.revelations == parallel.revelations
        assert serial.probes_sent == parallel.probes_sent
        assert serial.revelation_probes == parallel.revelation_probes

    def test_analyzer_state_identical(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        assert serial.inventory._te == parallel.inventory._te
        assert serial.inventory._er == parallel.inventory._er
        assert serial.rtla._te_ttl == parallel.rtla._te_ttl
        assert serial.rtla._er_ttl == parallel.rtla._er_ttl

    def test_perf_stats_populated(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        assert serial.perf.workers == 1
        assert parallel.perf.workers == 4
        for result in (serial, parallel):
            phases = result.perf.phase_seconds
            assert set(phases) == {
                "trace", "ping", "extract", "revelation",
            }
            assert all(seconds >= 0.0 for seconds in phases.values())
            assert result.perf.total_seconds == pytest.approx(
                sum(phases.values())
            )
            assert result.perf.packets_simulated > 0
            assert 0.0 <= result.perf.hit_rate <= 1.0
        # The parallel replay runs against a prewarmed cache.
        assert parallel.perf.hit_rate > serial.perf.hit_rate


class _ScriptedProber:
    """Ping stub with per-(vp, address) scripted responsiveness."""

    def __init__(self, responses):
        self.responses = responses
        self.probes_sent = 0
        self.engine = None

    def ping(self, source, dst):
        self.probes_sent += 1
        responded = self.responses[(source.name, dst)]
        return PingResult(
            dst=dst,
            responded=responded,
            reply_ttl=60 if responded else None,
            source=source.name,
        )


def _trace_seeing(source, address):
    return Trace(
        source=source,
        source_address=1,
        dst=9999,
        flow_id=1,
        hops=[TraceHop(probe_ttl=2, address=address)],
    )


class TestPingPhaseMerge:
    def _campaign(self, responses):
        network = Network()
        vp_a = network.add_router("A", asn=1)
        vp_b = network.add_router("B", asn=1)
        prober = _ScriptedProber(responses)
        return Campaign(
            prober, [vp_a, vp_b], lambda address: 1, CampaignConfig()
        )

    def test_first_responsive_ping_wins(self):
        campaign = self._campaign(
            {("A", 42): True, ("B", 42): True}
        )
        result = CampaignResult()
        result.traces = [_trace_seeing("A", 42), _trace_seeing("B", 42)]
        campaign.ping_phase(result)
        # Both VPs answered; the first (A) must not be clobbered.
        assert result.pings[42].source == "A"

    def test_responsive_ping_replaces_unresponsive(self):
        campaign = self._campaign(
            {("A", 42): False, ("B", 42): True}
        )
        result = CampaignResult()
        result.traces = [_trace_seeing("A", 42), _trace_seeing("B", 42)]
        campaign.ping_phase(result)
        assert result.pings[42].source == "B"
        assert result.pings[42].responded

    def test_unresponsive_never_downgrades(self):
        campaign = self._campaign(
            {("A", 42): True, ("B", 42): False}
        )
        result = CampaignResult()
        result.traces = [_trace_seeing("A", 42), _trace_seeing("B", 42)]
        campaign.ping_phase(result)
        assert result.pings[42].source == "A"
        assert result.pings[42].responded
