"""Tests for RSVP-TE explicit-route tunnels."""

import pytest

from repro.dataplane.engine import ForwardingEngine
from repro.mpls.config import MplsConfig, PoppingMode
from repro.mpls.rsvp import TeTunnel, TeTunnelRegistry
from repro.net.topology import Network
from repro.net.vendors import CISCO
from repro.probing.prober import Prober
from repro.routing.control import ControlPlane


def build_te_network():
    """Diamond inside AS2: the IGP prefers the top path, a TE tunnel
    can pin the bottom one.

        src(AS1) - in - top1 - top2 - out - dst(AS3)
                     \\-- bot1 --------/
    """
    network = Network()
    src = network.add_router("src", asn=1)
    config = MplsConfig.from_vendor(CISCO, ttl_propagate=False)
    ingress = network.add_router("in", asn=2, mpls=config)
    top1 = network.add_router("top1", asn=2, mpls=config)
    top2 = network.add_router("top2", asn=2, mpls=config)
    bot1 = network.add_router("bot1", asn=2, mpls=config)
    egress = network.add_router("out", asn=2, mpls=config)
    dst = network.add_router("dst", asn=3)
    network.add_link(src, ingress)
    network.add_link(ingress, top1, weight=1)
    network.add_link(top1, top2, weight=1)
    network.add_link(top2, egress, weight=1)
    network.add_link(ingress, bot1, weight=5)
    network.add_link(bot1, egress, weight=5)
    # The customer numbers its uplink (AS3 prefix): targeting dst's
    # interface is an *external* destination for AS2, like the
    # campaign's A ∪ B addresses.
    network.add_link(dst, egress)
    return network, src, ingress, egress, dst


class TestTeTunnelModel:
    def test_path_validation(self):
        with pytest.raises(ValueError):
            TeTunnel(name="t", path=("a",))
        with pytest.raises(ValueError):
            TeTunnel(name="t", path=("a", "b", "a"))

    def test_next_hop_and_penultimate(self):
        tunnel = TeTunnel(name="t", path=("a", "b", "c"))
        assert tunnel.head == "a"
        assert tunnel.tail == "c"
        assert tunnel.next_hop("a") == "b"
        assert tunnel.next_hop("c") is None
        assert tunnel.next_hop("zz") is None
        assert tunnel.is_penultimate("b")
        assert not tunnel.is_penultimate("a")

    def test_registry_install_checks_adjacency(self):
        network, src, ingress, egress, dst = build_te_network()
        registry = TeTunnelRegistry()
        with pytest.raises(ValueError):
            registry.install(
                TeTunnel(name="bad", path=("in", "top2")), network
            )
        with pytest.raises(ValueError):
            registry.install(
                TeTunnel(name="bad", path=("src", "in")), network
            )  # crosses AS border
        with pytest.raises(ValueError):
            registry.install(
                TeTunnel(name="bad", path=("in", "nosuch")), network
            )

    def test_registry_duplicate_rejected(self):
        network, *_ = build_te_network()
        registry = TeTunnelRegistry()
        tunnel = TeTunnel(name="t", path=("in", "bot1", "out"))
        registry.install(tunnel, network)
        with pytest.raises(ValueError):
            registry.install(
                TeTunnel(name="t2", path=("in", "bot1", "out")), network
            )
        assert registry.tunnels_at("in") == (tunnel,)
        registry.remove("in", "out")
        assert len(registry) == 0


class TestTeForwarding:
    def _engine(self, tunnel=None):
        network, src, ingress, egress, dst = build_te_network()
        control = ControlPlane(network)
        if tunnel is not None:
            control.install_te_tunnel(tunnel)
        engine = ForwardingEngine(network, control)
        return network, engine, src, dst

    def test_without_tunnel_traffic_takes_igp_path(self):
        network, engine, src, dst = self._engine()
        outcome = engine.send_probe(src, dst.loopback, ttl=255)
        assert "top1" in outcome.forward_path
        assert "bot1" not in outcome.forward_path

    def test_tunnel_pins_explicit_path(self):
        tunnel = TeTunnel(
            name="detour", path=("in", "bot1", "out"),
            popping=PoppingMode.UHP,
        )
        network, engine, src, dst = self._engine(tunnel)
        outcome = engine.send_probe(src, dst.loopback, ttl=255)
        assert "bot1" in outcome.forward_path
        assert "top1" not in outcome.forward_path
        assert outcome.reply_kind == "echo-reply"

    def test_uhp_te_tunnel_is_invisible(self):
        tunnel = TeTunnel(
            name="detour", path=("in", "bot1", "out"),
            popping=PoppingMode.UHP, ttl_propagate=False,
        )
        network, engine, src, dst = self._engine(tunnel)
        prober = Prober(engine)
        # Target the AS3 router's incoming interface, like a campaign
        # destination: the tunnel and its tail stay dark.
        target = dst.incoming_address_from(network.router("out"))
        trace = prober.traceroute(src, target)
        names = [hop.responder_router for hop in trace.responsive_hops]
        assert "bot1" not in names
        assert "out" not in names
        assert names[-1] == "dst"

    def test_php_te_tunnel_counts_on_return(self):
        tunnel = TeTunnel(
            name="detour", path=("in", "bot1", "out"),
            popping=PoppingMode.PHP, ttl_propagate=False,
        )
        network, engine, src, dst = self._engine(tunnel)
        prober = Prober(engine)
        trace = prober.traceroute(src, dst.loopback)
        names = [hop.responder_router for hop in trace.responsive_hops]
        assert "bot1" not in names  # still invisible forward
        # But the egress is visible and shows the FRPLA shift... the
        # *forward* tunnel hides bot1; the reply rides the reverse LDP
        # path, so its return length counts real hops.
        out_hop = next(
            hop for hop in trace.responsive_hops
            if hop.responder_router == "out"
        )
        assert 255 - out_hop.reply_ttl + 1 > out_hop.probe_ttl

    def test_te_with_propagation_reveals_path(self):
        tunnel = TeTunnel(
            name="detour", path=("in", "bot1", "out"),
            popping=PoppingMode.PHP, ttl_propagate=True,
        )
        network, engine, src, dst = self._engine(tunnel)
        prober = Prober(engine)
        trace = prober.traceroute(src, dst.loopback)
        names = [hop.responder_router for hop in trace.responsive_hops]
        assert "bot1" in names
        bot_hop = next(
            hop for hop in trace.responsive_hops
            if hop.responder_router == "bot1"
        )
        assert bot_hop.has_labels  # RFC 4950 quote from the TE LSE

    def test_one_hop_php_tunnel_needs_no_label(self):
        network, src, ingress, egress, dst = build_te_network()
        # Adjacent pair: in -- bot1 with PHP = implicit null, no push.
        control = ControlPlane(network)
        control.install_te_tunnel(
            TeTunnel(
                name="hop", path=("in", "bot1"),
                popping=PoppingMode.PHP,
            )
        )
        engine = ForwardingEngine(network, control)
        # Traffic whose egress is bot1 — none here, so just assert the
        # registry holds it and ordinary traffic is unaffected.
        outcome = engine.send_probe(src, dst.loopback, ttl=255)
        assert outcome.reply_kind == "echo-reply"
