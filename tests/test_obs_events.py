"""Unit tests for the event log, sinks, spans, and level plumbing."""

import io
import json
import logging

import pytest

from repro.obs import (
    DEBUG,
    INFO,
    WARNING,
    EventLog,
    JsonlSink,
    NULL_SPAN,
    RingBufferSink,
    Tracer,
    configure,
    get_event_log,
)


class TestEventLog:
    def test_emit_without_sink_is_dropped(self):
        log = EventLog()
        assert log.emit("anything", note="x") is None
        assert not log.debug and not log.info

    def test_ring_buffer_captures_records(self):
        log = EventLog()
        sink = RingBufferSink()
        log.attach(sink)
        log.emit("phase.start", phase="trace")
        log.emit("phase.end", phase="trace", seconds=0.1)
        assert sink.kinds() == {"phase.start": 1, "phase.end": 1}
        assert sink.of_kind("phase.start")[0]["phase"] == "trace"
        sink.clear()
        assert sink.records == []

    def test_level_filtering(self):
        log = EventLog(level=INFO)
        sink = RingBufferSink()
        log.attach(sink)
        assert log.emit("quiet", DEBUG) is None
        log.set_level(DEBUG)
        assert log.emit("loud", DEBUG) is not None
        log.set_level(WARNING)
        assert not log.info
        assert log.emit("filtered", INFO) is None

    def test_flags_track_sinks_and_level(self):
        log = EventLog(level=DEBUG)
        assert not log.debug  # no sink yet
        sink = RingBufferSink()
        log.attach(sink)
        assert log.debug and log.info
        log.detach(sink)
        assert not log.debug
        log.attach(sink)
        log.detach_all()
        assert not log.enabled_for(WARNING)

    def test_schema_enforced_for_known_kinds(self):
        log = EventLog()
        log.attach(RingBufferSink())
        with pytest.raises(ValueError, match="missing required"):
            log.emit("probe.gap", vp="A", dst=1)  # ttl missing
        # Extra fields beyond the schema are fine.
        record = log.emit(
            "probe.gap", vp="A", dst=1, ttl=5, extra="ok"
        )
        assert record["extra"] == "ok"

    def test_unknown_kinds_pass_unvalidated(self):
        log = EventLog()
        log.attach(RingBufferSink())
        assert log.emit("custom.kind") is not None

    def test_records_carry_time_and_level_name(self):
        log = EventLog(level=DEBUG)
        sink = RingBufferSink()
        log.attach(sink)
        log.emit("tick", DEBUG)
        record = sink.records[0]
        assert record["lvl"] == "debug"
        assert record["t"] >= 0.0


class TestJsonlSink:
    def test_writes_compact_json_lines(self):
        buffer = io.StringIO()
        log = EventLog()
        log.attach(JsonlSink(buffer))
        log.emit("phase.start", phase="trace")
        log.emit("phase.end", phase="trace", seconds=0.5)
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["kind"] == "phase.end"

    def test_path_mode_owns_and_closes_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path))
        sink.write({"kind": "x"})
        sink.close()
        assert json.loads(path.read_text())["kind"] == "x"


class TestTracer:
    def _traced(self):
        log = EventLog()
        sink = RingBufferSink()
        log.attach(sink)
        return Tracer(log), sink

    def test_disabled_tracer_returns_shared_null_span(self):
        tracer = Tracer(EventLog())  # no sink
        span = tracer.span("anything")
        assert span is NULL_SPAN
        with span:
            span.annotate(ignored=True)

    def test_span_emits_record_with_duration(self):
        tracer, sink = self._traced()
        with tracer.span("probe.traceroute", vp="A"):
            pass
        (record,) = sink.of_kind("span")
        assert record["name"] == "probe.traceroute"
        assert record["vp"] == "A"
        assert record["parent"] is None
        assert record["ms"] >= 0.0

    def test_nesting_links_parent_ids(self):
        tracer, sink = self._traced()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = sink.of_kind("span")  # inner closes first
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["span"]
        assert outer["parent"] is None

    def test_exception_marks_span_failed(self):
        tracer, sink = self._traced()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (record,) = sink.of_kind("span")
        assert record["failed"] is True

    def test_annotate_adds_fields(self):
        tracer, sink = self._traced()
        with tracer.span("walk") as span:
            span.annotate(hops=7)
        assert sink.of_kind("span")[0]["hops"] == 7


class TestConfigure:
    def teardown_method(self):
        # Restore defaults so other tests see a quiet global log.
        configure(0)
        get_event_log().set_level(INFO)

    def test_one_verbosity_drives_both_systems(self):
        assert configure(0) == (logging.WARNING, INFO)
        assert configure(1) == (logging.INFO, INFO)
        assert configure(2) == (logging.DEBUG, DEBUG)
        assert configure(5) == (logging.DEBUG, DEBUG)
        assert get_event_log().level == DEBUG

    def test_repeated_calls_keep_one_handler(self):
        configure(1)
        configure(2)
        root = logging.getLogger("repro")
        handlers = [
            h for h in root.handlers
            if isinstance(h, logging.StreamHandler)
        ]
        assert len(handlers) == 1
