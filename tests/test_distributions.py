"""Unit and property tests for the statistics toolkit."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.stats.distributions import (
    Distribution,
    looks_centered,
    normal_pdf,
)

floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestBasics:
    def test_empty_raises(self):
        empty = Distribution()
        with pytest.raises(ValueError):
            _ = empty.mean
        with pytest.raises(ValueError):
            _ = empty.median
        with pytest.raises(ValueError):
            empty.percentile(50)
        with pytest.raises(ValueError):
            empty.mode()

    def test_mean_median(self):
        dist = Distribution([1, 2, 3, 4])
        assert dist.mean == 2.5
        assert dist.median == 2.5
        dist.add(5)
        assert dist.median == 3

    def test_min_max(self):
        dist = Distribution([3, -1, 7])
        assert dist.min == -1
        assert dist.max == 7

    def test_stddev(self):
        assert Distribution([5]).stddev == 0.0
        dist = Distribution([2, 4, 4, 4, 5, 5, 7, 9])
        assert dist.stddev == pytest.approx(2.0)

    def test_percentiles(self):
        dist = Distribution(range(101))
        assert dist.percentile(0) == 0
        assert dist.percentile(50) == 50
        assert dist.percentile(100) == 100
        assert dist.percentile(25) == 25

    def test_percentile_range_check(self):
        with pytest.raises(ValueError):
            Distribution([1]).percentile(101)

    def test_mode_tie_breaks_smallest(self):
        assert Distribution([3, 1, 3, 1, 2]).mode() == 1

    def test_fraction(self):
        dist = Distribution([-2, -1, 0, 1, 2])
        assert dist.fraction(lambda v: v > 0) == pytest.approx(0.4)
        assert Distribution().fraction(lambda v: True) == 0.0


class TestHistogramPdf:
    def test_pdf_sums_to_one(self):
        dist = Distribution([1, 1, 2, 3])
        assert sum(dist.pdf().values()) == pytest.approx(1.0)
        assert dist.pdf()[1] == pytest.approx(0.5)

    def test_pdf_points_sorted(self):
        points = Distribution([3, 1, 2, 1]).pdf_points()
        assert [value for value, _ in points] == [1, 2, 3]

    def test_histogram_bins(self):
        dist = Distribution([0, 1, 2, 3, 4, 5])
        bins = dist.histogram([0, 2, 4, 5])
        assert [count for _, _, count in bins] == [2, 2, 2]

    def test_histogram_needs_two_edges(self):
        with pytest.raises(ValueError):
            Distribution([1]).histogram([0])

    def test_counts(self):
        assert Distribution([1, 1, 2]).counts() == {1: 2, 2: 1}


class TestAddAfterRead:
    def test_cache_invalidation(self):
        dist = Distribution([5])
        assert dist.median == 5
        dist.add(1)
        dist.extend([2, 3])
        assert dist.median == 2.5


class TestHelpers:
    def test_normal_pdf_peak_at_mu(self):
        assert normal_pdf(0, 0, 1) > normal_pdf(1, 0, 1)
        assert normal_pdf(0, 0, 1) == pytest.approx(
            1 / math.sqrt(2 * math.pi)
        )

    def test_normal_pdf_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            normal_pdf(0, 0, 0)

    def test_looks_centered(self):
        assert looks_centered(Distribution([-1, 0, 1]))
        assert not looks_centered(Distribution([4, 5, 6]))
        assert not looks_centered(Distribution())


class TestProperties:
    @given(st.lists(floats, min_size=1, max_size=200))
    def test_median_between_min_and_max(self, values):
        dist = Distribution(values)
        assert dist.min <= dist.median <= dist.max

    @given(st.lists(floats, min_size=1, max_size=200))
    def test_percentile_monotone(self, values):
        dist = Distribution(values)
        previous = dist.percentile(0)
        for q in (10, 25, 50, 75, 90, 100):
            current = dist.percentile(q)
            assert current >= previous - 1e-9
            previous = current

    @given(st.lists(floats, min_size=1, max_size=200))
    def test_mean_bounded(self, values):
        dist = Distribution(values)
        assert dist.min - 1e-6 <= dist.mean <= dist.max + 1e-6

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=100))
    def test_pdf_total_probability(self, values):
        assert sum(Distribution(values).pdf().values()) == pytest.approx(1.0)

    @given(
        st.lists(st.integers(-50, 50), min_size=1, max_size=100),
        st.integers(-50, 50),
    )
    def test_adding_extreme_shifts_max(self, values, extra):
        dist = Distribution(values)
        old_max = dist.max
        dist.add(extra)
        assert dist.max == max(old_max, extra)


class TestCdf:
    def test_cdf_reaches_one(self):
        dist = Distribution([1, 2, 2, 3])
        points = dist.cdf_points()
        assert points[-1][1] == pytest.approx(1.0)
        assert points[0] == (1, pytest.approx(0.25))

    def test_cdf_monotone(self):
        dist = Distribution([5, 1, 3, 3, 2])
        values = [p for _, p in dist.cdf_points()]
        assert values == sorted(values)

    def test_cdf_empty(self):
        assert Distribution().cdf_points() == []
